"""E1 — Throughput vs. client count, read-heavy workload (YCSB-B, 95/5).

Paper shape: ChainReaction's prefix reads spread load over all R chain
positions, so its read-heavy throughput clearly exceeds classic chain
replication (tail-only reads) and approaches the eventually-consistent
upper bound; the quorum store pays multiple replica contacts per read
and lands lowest. The ablation row (ChainReaction without prefix reads)
collapses back to chain-replication behaviour, isolating where the win
comes from (DESIGN.md §6.3).
"""

from __future__ import annotations

from bench_utils import run_once

from repro.bench import throughput_sweep, run_ycsb
from repro.metrics import render_table

PROTOCOLS = ("chainreaction", "chain", "eventual", "quorum")


def test_e1_read_heavy_throughput(benchmark, scale):
    def experiment():
        rows = throughput_sweep(PROTOCOLS, "B", scale)
        ablation = run_ycsb(
            "chainreaction",
            "B",
            max(scale.client_counts),
            scale,
            overrides={"allow_prefix_reads": False},
        )
        ab_row = ablation.summary_row()
        ab_row["protocol"] = "cr-no-prefix"
        rows.append(ab_row)
        return rows

    rows = run_once(benchmark, experiment)
    print()
    print(
        render_table(
            ["protocol", "clients", "ops/s", "get p50 ms", "put p50 ms", "errors"],
            [
                (
                    r["protocol"],
                    r["clients"],
                    r["throughput_ops_s"],
                    r["get_p50_ms"],
                    r["put_p50_ms"],
                    r["errors"],
                )
                for r in rows
            ],
            title="E1: read-heavy (95/5) throughput vs clients",
        )
    )

    peak = {}
    for r in rows:
        peak[r["protocol"]] = max(peak.get(r["protocol"], 0.0), r["throughput_ops_s"])
    # Shape assertions from the paper: CR beats chain clearly on reads...
    assert peak["chainreaction"] > 1.3 * peak["chain"], peak
    # ...and the no-prefix ablation explains the gap (within noise of chain).
    assert peak["cr-no-prefix"] < 0.8 * peak["chainreaction"], peak
    for r in rows:
        assert r["errors"] == 0, f"unexpected op failures: {r}"
