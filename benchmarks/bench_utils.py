"""Shared helpers for the E1-E11 benchmark suite."""

from __future__ import annotations


def run_once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
