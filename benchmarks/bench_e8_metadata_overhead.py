"""E8 — Client metadata overhead (DESIGN.md §6.2).

Paper shape: ChainReaction's dependency table stays *small and bounded*
in steady state: entries exist only for versions not yet DC-stable, and
every put collapses the table to a single entry. The ablation that
disables collapse-on-put accumulates one entry per key ever touched —
metadata grows with the session's working set instead of its unstable
frontier, exactly the overhead the paper's design avoids.
"""

from __future__ import annotations

from bench_utils import run_once

from repro.bench import run_ycsb
from repro.metrics import render_table


def test_e8_metadata_overhead(benchmark, scale):
    def experiment():
        collapsing = run_ycsb(
            "chainreaction", "A", scale.latency_clients, scale, record_history=False
        )
        accumulating = run_ycsb(
            "chainreaction",
            "A",
            scale.latency_clients,
            scale,
            record_history=False,
            overrides={"collapse_deps_on_put": False},
        )
        return collapsing, accumulating

    collapsing, accumulating = run_once(benchmark, experiment)
    rows = [
        (
            "collapse-on-put (paper)",
            collapsing.metadata_bytes.mean(),
            collapsing.metadata_bytes.percentile(95),
            collapsing.metadata_bytes.max,
        ),
        (
            "accumulate (ablation)",
            accumulating.metadata_bytes.mean(),
            accumulating.metadata_bytes.percentile(95),
            accumulating.metadata_bytes.max,
        ),
    ]
    print()
    print(
        render_table(
            ["mode", "mean B", "p95 B", "max B"],
            rows,
            title="E8: per-client dependency metadata (bytes)",
        )
    )
    # The collapse rule keeps metadata an order of magnitude smaller.
    assert collapsing.metadata_bytes.mean() * 5 < accumulating.metadata_bytes.mean(), rows
    # Steady-state metadata is a handful of entries, not the keyspace.
    assert collapsing.metadata_bytes.percentile(95) < 200, rows
