"""E12 (extension) — availability under WAN partition.

The motivation ChainReaction shares with all causal+ systems: because
geo-replication is asynchronous, a WAN partition costs **nothing** for
local operations — both datacenters keep serving reads and writes at
full speed — and once the partition heals, the update streams drain and
every replica converges. A strongly consistent geo-store would have to
block (or lose) one side for the duration.

Shape: per-DC throughput during the partition stays within noise of the
pre-partition rate; remote visibility for partition-era writes ≈ heal
time + WAN; convergence holds afterwards.
"""

from __future__ import annotations

from bench_utils import run_once

from repro.baselines import build_store
from repro.checker import await_convergence
from repro.metrics import render_table
from repro.workload import WorkloadRunner, workload

PARTITION_AT = 0.8
HEAL_AT = 2.0
RUN_FOR = 3.0


def test_e12_wan_partition(benchmark, scale):
    def experiment():
        store = build_store(
            "chainreaction",
            sites=("dc0", "dc1"),
            servers_per_site=scale.servers_per_site,
            chain_length=scale.chain_length,
            ack_k=scale.ack_k,
            seed=scale.seed,
        )
        store.sim.schedule_at(PARTITION_AT, store.network.block, "dc0", "dc1")
        store.sim.schedule_at(HEAL_AT, store.network.heal)
        spec = workload("A", record_count=scale.record_count, value_size=scale.value_size)
        runner = WorkloadRunner(
            store, spec, n_clients=scale.latency_clients, duration=RUN_FOR, warmup=0.2
        )
        result = runner.run()
        keys = [spec.key(i) for i in range(scale.record_count)]
        report = await_convergence(store, keys, max_extra_time=20.0)
        return store, result, report

    store, result, report = run_once(benchmark, experiment)
    before = result.timeline.rate_between(0.3, PARTITION_AT)
    during = result.timeline.rate_between(PARTITION_AT + 0.1, HEAL_AT)
    after = result.timeline.rate_between(HEAL_AT + 0.2, 0.2 + RUN_FOR)

    print()
    print(
        render_table(
            ["phase", "ops/s"],
            [
                ("before partition", before),
                ("during partition (1.2s)", during),
                ("after heal", after),
            ],
            title="E12: client throughput through a WAN partition",
        )
    )
    print(f"errors: {result.errors}; converged after heal: {report.converged}")

    # Availability: the partition is invisible to local operations.
    assert during > 0.9 * before, (before, during)
    assert result.errors == 0
    # Convergence: both DCs reconcile once the WAN returns.
    assert report.converged, str(report)
