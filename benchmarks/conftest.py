"""Fixtures for the E1-E11 benchmark suite.

Every benchmark runs at ``QUICK`` scale by default so the whole suite
finishes in minutes; set ``REPRO_BENCH_SCALE=full`` for operating
points closer to the paper's. Tables are printed to stdout -- run with
``pytest benchmarks/ --benchmark-only -s`` to see them.
"""

from __future__ import annotations

import os

import pytest

from repro.bench import FULL, QUICK


@pytest.fixture(scope="session")
def scale():
    return FULL if os.environ.get("REPRO_BENCH_SCALE") == "full" else QUICK
