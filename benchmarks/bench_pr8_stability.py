"""PR8 — Stabilization-plane A/B: notices (± batching) vs clock.

The clock plane replaces every per-write stability notification with an
HLC stamp plus one periodic stability vector per DC. Three claims back
this PR, measured on one write-heavy geo workload (2 sites, R=3, k=2):

1. **Stability bytes** — the clock plane must cut the bytes spent on
   stabilization control traffic (per-write notices + global notices +
   acks on the notices plane; floor reports + ticks + vectors on the
   clock plane) by at least 5x against the seed notices plane.
2. **Wall rate** — simulated ops per wall second on the clock plane
   must reach at least 90% of the notices plane (fewer wire messages
   means fewer simulator events per op, so it normally *wins*).
3. **Bounded stamp map** — the clock plane's live per-key stamp map
   must not scale with the op count: stamps are pruned as the global
   cut passes them, so the end-of-run footprint stays a small multiple
   of (keyspace x replicas), unlike the notices plane's stable maps.

Visibility latency is reported for both planes (the clock plane trades
a vector interval of extra remote-visibility latency for its byte
savings) but is informational, not gated.

Run as a script to (re)generate ``BENCH_PR8.json`` at the repo root::

    PYTHONPATH=src python benchmarks/bench_pr8_stability.py

or as part of the benchmark suite::

    pytest benchmarks/bench_pr8_stability.py --benchmark-only -s
"""

from __future__ import annotations

import json
import platform
import sys
from pathlib import Path
from typing import Any, Dict

from repro.perf.stability import bench_stability_plane

REPORT_PATH = Path(__file__).resolve().parent.parent / "BENCH_PR8.json"

#: acceptance floors for the clock arm
MIN_STABILITY_BYTES_REDUCTION = 5.0
MIN_OPS_WALL_RATIO = 0.90


def collect(repeats: int = 3) -> Dict[str, Any]:
    report = bench_stability_plane(repeats=repeats)
    report["python"] = platform.python_version()
    report["platform"] = platform.platform()
    return report


def check(report: Dict[str, Any]) -> list:
    failures = []
    if report["stability_bytes_reduction"] < MIN_STABILITY_BYTES_REDUCTION:
        failures.append(
            f"stability-byte reduction {report['stability_bytes_reduction']:.2f}x "
            f"< {MIN_STABILITY_BYTES_REDUCTION}x"
        )
    if report["ops_per_wall_sec_ratio"] < MIN_OPS_WALL_RATIO:
        failures.append(
            f"clock wall rate {report['ops_per_wall_sec_ratio']:.2f}x of notices "
            f"< {MIN_OPS_WALL_RATIO}x"
        )
    if not report["clock_stable_map_bounded"]:
        failures.append(
            f"clock stamp map not bounded: {report['clock_stable_map_entries']} "
            "live entries at end of run"
        )
    return failures


def test_stability_plane_ab() -> None:
    report = collect(repeats=1)
    failures = check(report)
    assert not failures, "; ".join(failures)


def main() -> int:
    report = collect()
    REPORT_PATH.write_text(json.dumps(report, indent=2, sort_keys=True, default=str) + "\n")
    for arm in report["arms"]:
        print(
            f"{arm['plane']:>14}: {arm['ops_per_wall_sec']:>8,.0f} ops/wall-s  "
            f"{arm['stability_bytes']:>10,} stability B  "
            f"vis p50 {arm['visibility_p50_ms']:6.1f} ms  "
            f"map {arm['stable_map_entries'] + arm['hlc_entries']}"
        )
    print(
        f"clock vs notices: {report['stability_bytes_reduction']:.1f}x fewer "
        f"stability bytes, {report['ops_per_wall_sec_ratio']:.2f}x wall rate"
    )
    print(f"report written to {REPORT_PATH}")
    failures = check(report)
    for failure in failures:
        print(f"FAIL: {failure}")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
