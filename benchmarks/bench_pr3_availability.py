"""PR3 — Availability under faults: the crash-head campaign as a report.

The E9 story re-run through the fault-campaign engine: a seeded crash
of the chain head for a hot key, a recovery, and the workload's
throughput/latency measured before, during, and after the fault window
— with every operation accounted for (ok / degraded / timeout) and the
chain invariants plus the causal history audited.

Run as a script to (re)generate ``BENCH_PR3.json`` at the repo root::

    PYTHONPATH=src python benchmarks/bench_pr3_availability.py

or as part of the benchmark suite::

    pytest benchmarks/bench_pr3_availability.py --benchmark-only -s
"""

from __future__ import annotations

import json
import platform
import sys
from pathlib import Path

from repro.faults import campaign, run_campaign

REPORT_PATH = Path(__file__).resolve().parent.parent / "BENCH_PR3.json"
SEED = 42


def collect_report(clients: int = 16, seed: int = SEED) -> dict:
    spec = campaign("crash-head").with_updates(clients=clients)
    result = run_campaign(spec, seed=seed)
    report = result.to_report()
    report["python"] = platform.python_version()
    phases = {p.phase: p for p in result.phases}
    recovered = (
        phases["after"].ops_per_sec > phases["during"].ops_per_sec
        and phases["during"].ops_per_sec < 0.9 * phases["before"].ops_per_sec
    )
    report["recovery"] = {
        "before_ops_s": phases["before"].ops_per_sec,
        "during_ops_s": phases["during"].ops_per_sec,
        "after_ops_s": phases["after"].ops_per_sec,
        "before_get_p99_ms": phases["before"].get_p99_ms,
        "during_get_p99_ms": phases["during"].get_p99_ms,
        "after_get_p99_ms": phases["after"].get_p99_ms,
        "recovered": recovered,
    }
    return report


def test_pr3_availability(benchmark, scale):
    from bench_utils import run_once

    report = run_once(benchmark, lambda: collect_report(clients=scale.latency_clients))
    print()
    for phase in ("before", "during", "after"):
        rec = report["recovery"]
        print(
            f"  {phase:7s}: {rec[f'{phase}_ops_s']:8.0f} ops/s   "
            f"get p99 {rec[f'{phase}_get_p99_ms']:6.2f} ms"
        )
    assert report["clean"], report
    assert report["recovery"]["recovered"], report["recovery"]
    assert report["outcomes"]["unresolved"] == 0


def main() -> int:
    print("running the crash-head availability campaign ...")
    report = collect_report()
    REPORT_PATH.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    rec = report["recovery"]
    for phase in ("before", "during", "after"):
        print(
            f"  {phase:7s}: {rec[f'{phase}_ops_s']:8.0f} ops/s   "
            f"get p99 {rec[f'{phase}_get_p99_ms']:6.2f} ms"
        )
    print(f"clean: {report['clean']}   recovered: {rec['recovered']}")
    print(f"report written to {REPORT_PATH}")
    return 0 if report["clean"] and rec["recovered"] else 1


if __name__ == "__main__":
    sys.exit(main())
