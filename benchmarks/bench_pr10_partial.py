"""PR10 — Partial geo-replication A/B: replication degree vs full.

Sharding the keyspace over DCs (degree ``r`` owners per shard) bounds
what full replication lets grow with ``sites x keys``: geo-shipping
traffic, causal metadata, and per-DC memory. Three claims back this PR,
measured on one hot-shard geo workload (3 sites, R=3, k=2, identical
fixed op sequence per arm):

1. **Shipping bytes per key** — at ``r=2`` of 3 sites the geo-shipping
   bytes per key must drop at least 30% against full replication:
   every DC-stable write fans out to 1 owner peer instead of 2, and
   per-destination dependency pruning trims the entries it carries.
2. **Per-DC memory** — the total record census must shrink by the
   non-owned fraction (1/3 at ``r=2``); the preload installs nothing
   on non-owner sites and remote updates never reach them.
3. **Honest remote-get price** — operations on non-owned shards pay a
   WAN round-trip to the primary owner. Their p50/p99 are reported as
   their own distribution next to the sub-millisecond local reads, not
   blended into an average that would hide the tail.

``r=1`` (no geo redundancy, zero shipping) is included as the floor.

Run as a script to (re)generate ``BENCH_PR10.json`` at the repo root::

    PYTHONPATH=src python benchmarks/bench_pr10_partial.py

or as part of the benchmark suite::

    pytest benchmarks/bench_pr10_partial.py --benchmark-only -s
"""

from __future__ import annotations

import json
import platform
import sys
from pathlib import Path
from typing import Any, Dict

from repro.perf.partial import bench_partial_replication

REPORT_PATH = Path(__file__).resolve().parent.parent / "BENCH_PR10.json"

#: acceptance ceilings/floors for the r=2 arm
MAX_SHIPPING_BYTES_PER_KEY_RATIO = 0.70
MIN_CENSUS_REDUCTION = 0.30


def collect(repeats: int = 3) -> Dict[str, Any]:
    report = bench_partial_replication(repeats=repeats)
    report["python"] = platform.python_version()
    report["platform"] = platform.platform()
    return report


def check(report: Dict[str, Any]) -> list:
    failures = []
    ratio = report["shipping_bytes_per_key_ratio_r2"]
    if ratio > MAX_SHIPPING_BYTES_PER_KEY_RATIO:
        failures.append(
            f"r=2 shipping bytes/key is {ratio:.2f}x of full replication "
            f"> {MAX_SHIPPING_BYTES_PER_KEY_RATIO}x ceiling"
        )
    if report["census_reduction_r2"] < MIN_CENSUS_REDUCTION:
        failures.append(
            f"r=2 record census shrank only {report['census_reduction_r2']:.0%} "
            f"< {MIN_CENSUS_REDUCTION:.0%}"
        )
    by_arm = {arm["arm"]: arm for arm in report["arms"]}
    for arm in report["arms"]:
        if arm["errors"]:
            failures.append(f"{arm['arm']} arm finished with {arm['errors']} errors")
    r2 = by_arm["r=2"]
    if r2["remote_get_samples"] == 0:
        failures.append("r=2 arm forwarded no gets — the A/B measured nothing remote")
    if r2["remote_get_p50_ms"] <= r2["local_get_p50_ms"]:
        failures.append(
            "r=2 remote-get p50 not above local p50 — forwarding latency "
            "is not being measured honestly"
        )
    return failures


def test_partial_replication_ab() -> None:
    report = collect(repeats=1)
    failures = check(report)
    assert not failures, "; ".join(failures)


def main() -> int:
    report = collect()
    REPORT_PATH.write_text(json.dumps(report, indent=2, sort_keys=True, default=str) + "\n")
    for arm in report["arms"]:
        census = arm["records_per_site"]
        print(
            f"{arm['arm']:>5}: {arm['ops_per_wall_sec']:>8,.0f} ops/wall-s  "
            f"{arm['shipping_bytes_per_key']:>8,.0f} ship B/key  "
            f"census {sum(census.values()):>4} ({max(census.values())} max/DC)  "
            f"remote-get p50 {arm['remote_get_p50_ms']:6.1f} ms "
            f"({arm['remote_get_samples']} samples)"
        )
    print(
        f"r=2 vs full: {1 - report['shipping_bytes_per_key_ratio_r2']:.0%} fewer "
        f"shipping bytes/key, {report['census_reduction_r2']:.0%} smaller census, "
        f"remote-get p50 {report['remote_get_p50_ms_r2']:.1f} ms "
        f"(local {report['local_get_p50_ms_full']:.2f} ms)"
    )
    print(f"report written to {REPORT_PATH}")
    failures = check(report)
    for failure in failures:
        print(f"FAIL: {failure}")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
