"""PR4 — Chain-plane batching + metadata lifecycle GC.

Two measurements back the PR's claims:

1. **Protocol plane, batched vs unbatched** — the same write-heavy
   geo workload (2 sites, R=3, k=2) with and without
   ``protocol_batching`` + ``metadata_gc``. Batching must deliver at
   least a 1.3x wall-clock speedup (simulated ops per wall second) and
   at least a 5x reduction in stability-notification message count.
2. **Metadata plateau** — a 10x-length insert-growing run (YCSB D).
   Without GC the servers' live stability metadata grows linearly with
   the keyspace; with GC it must plateau (final size within 2x of the
   early steady level) while only the O(1)-per-record seal floors keep
   growing.

Run as a script to (re)generate ``BENCH_PR4.json`` at the repo root::

    PYTHONPATH=src python benchmarks/bench_pr4_batching.py

or as part of the benchmark suite::

    pytest benchmarks/bench_pr4_batching.py --benchmark-only -s
"""

from __future__ import annotations

import json
import platform
import sys
from pathlib import Path
from typing import Any, Dict, List

from repro.baselines.registry import build_store
from repro.perf.protocol import BATCHED_OVERRIDES, bench_protocol_plane
from repro.workload.driver import WorkloadRunner
from repro.workload.ycsb import workload

REPORT_PATH = Path(__file__).resolve().parent.parent / "BENCH_PR4.json"
SEED = 1234

#: acceptance floors for the batched arm
MIN_OPS_WALL_SPEEDUP = 1.3
MIN_STABILITY_REDUCTION = 5.0
MAX_PLATEAU_GROWTH = 2.0


def _plateau_arm(gc: bool, duration: float, n_clients: int, seed: int) -> Dict[str, Any]:
    """One 10x-length YCSB-D run, sampling live metadata each 0.5s."""
    overrides = dict(BATCHED_OVERRIDES) if gc else None
    store = build_store(
        "chainreaction",
        sites=("dc0", "dc1"),
        servers_per_site=4,
        chain_length=3,
        ack_k=2,
        seed=seed,
        overrides=overrides,
    )
    spec = workload("D", record_count=25, value_size=64)
    runner = WorkloadRunner(
        store, spec, n_clients=n_clients, duration=duration, warmup=0.1,
        record_history=False,
    )
    samples: List[Dict[str, Any]] = []

    def sample() -> None:
        nodes = store.servers()
        samples.append(
            {
                "t": store.sim.now,
                "stable_map_entries": sum(n.metadata_entries() for n in nodes),
                "global_floor_entries": sum(n.global_floor_entries() for n in nodes),
                "dep_table_entries": sum(
                    s.metadata_entries() for s in store._sessions
                ),
            }
        )
        if store.sim.now < duration:
            store.sim.post_at(store.sim.now + 0.5, sample)

    store.sim.post_at(0.5, sample)
    result = runner.run()
    return {
        "metadata_gc": gc,
        "ops_completed": result.ops_completed,
        "keys_sealed": sum(n.keys_sealed for n in store.servers()),
        "samples": samples,
    }


def collect_report(duration: float = 1.0, n_clients: int = 8, seed: int = SEED) -> dict:
    protocol = bench_protocol_plane(
        duration=duration, n_clients=n_clients, seed=seed
    )
    plateau_unbatched = _plateau_arm(False, duration * 5, n_clients, seed)
    plateau_gc = _plateau_arm(True, duration * 5, n_clients, seed)

    def growth(arm: Dict[str, Any]) -> float:
        series = [s["stable_map_entries"] for s in arm["samples"]]
        return series[-1] / series[0] if series and series[0] else 0.0

    report = {
        "python": platform.python_version(),
        "seed": seed,
        "protocol_plane": protocol,
        "plateau": {
            "workload": "D (5% inserts, growing keyspace), 10x base duration",
            "unbatched": plateau_unbatched,
            "gc": plateau_gc,
            "stable_map_growth_unbatched": growth(plateau_unbatched),
            "stable_map_growth_gc": growth(plateau_gc),
        },
        "acceptance": {
            "ops_wall_speedup": protocol["ops_per_wall_sec_speedup"],
            "ops_wall_speedup_floor": MIN_OPS_WALL_SPEEDUP,
            "stability_message_reduction": protocol["stability_message_reduction"],
            "stability_message_reduction_floor": MIN_STABILITY_REDUCTION,
            "stable_map_growth_gc": growth(plateau_gc),
            "stable_map_growth_ceiling": MAX_PLATEAU_GROWTH,
        },
    }
    acc = report["acceptance"]
    acc["passed"] = bool(
        acc["ops_wall_speedup"] >= MIN_OPS_WALL_SPEEDUP
        and acc["stability_message_reduction"] >= MIN_STABILITY_REDUCTION
        and 0.0 < acc["stable_map_growth_gc"] <= MAX_PLATEAU_GROWTH
    )
    return report


def _print_summary(report: dict) -> None:
    proto = report["protocol_plane"]
    acc = report["acceptance"]
    print(
        f"  ops/wall-s: {proto['unbatched']['sim_ops_per_wall_sec']:8.0f} -> "
        f"{proto['batched']['sim_ops_per_wall_sec']:8.0f}  "
        f"({acc['ops_wall_speedup']:.2f}x, floor {MIN_OPS_WALL_SPEEDUP}x)"
    )
    print(
        f"  stability msgs: {proto['unbatched']['stability_messages']:6d} -> "
        f"{proto['batched']['stability_messages']:6d}  "
        f"({acc['stability_message_reduction']:.1f}x reduction, floor {MIN_STABILITY_REDUCTION}x)"
    )
    print(
        f"  global-stability msgs: {proto['unbatched']['global_stability_messages']:6d} -> "
        f"{proto['batched']['global_stability_messages']:6d}  "
        f"({proto['global_stability_message_reduction']:.1f}x reduction)"
    )
    plateau = report["plateau"]
    print(
        f"  stable-map growth over 10x run: "
        f"{plateau['stable_map_growth_unbatched']:.1f}x without GC, "
        f"{plateau['stable_map_growth_gc']:.1f}x with GC "
        f"(ceiling {MAX_PLATEAU_GROWTH}x)"
    )


def test_pr4_batching(benchmark, scale):
    from bench_utils import run_once

    report = run_once(benchmark, collect_report)
    print()
    _print_summary(report)
    acc = report["acceptance"]
    assert acc["ops_wall_speedup"] >= MIN_OPS_WALL_SPEEDUP, acc
    assert acc["stability_message_reduction"] >= MIN_STABILITY_REDUCTION, acc
    assert 0.0 < acc["stable_map_growth_gc"] <= MAX_PLATEAU_GROWTH, acc
    # Batching trades notification latency for message count; the
    # simulated throughput cost must stay moderate.
    assert report["protocol_plane"]["sim_throughput_ratio"] >= 0.9, report[
        "protocol_plane"
    ]


def main() -> int:
    print("running the PR4 protocol-plane benchmark (batched vs unbatched) ...")
    report = collect_report()
    REPORT_PATH.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    _print_summary(report)
    print(f"acceptance passed: {report['acceptance']['passed']}")
    print(f"report written to {REPORT_PATH}")
    return 0 if report["acceptance"]["passed"] else 1


if __name__ == "__main__":
    sys.exit(main())
