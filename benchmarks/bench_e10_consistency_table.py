"""E10 — Consistency anomaly table across protocols.

Paper shape (the motivation table): under a geo-replicated causality
probe, the eventually-consistent store and a non-overlapping-quorum
store serve causal anomalies, while ChainReaction, classic chain
replication, and the COPS-like store serve none. The ablation row shows
ChainReaction with causal delivery of remote updates disabled — the
anomalies come right back, isolating where the guarantee comes from
(DESIGN.md §6.4).
"""

from __future__ import annotations

from bench_utils import run_once

from repro.baselines import build_store
from repro.bench import GEO_SITES, consistency_table
from repro.checker import check_causal
from repro.metrics import render_table
from repro.net import wan_latency
from repro.workload import ProbeConfig, run_relay_probe

PROTOCOLS = ("chainreaction", "chain", "cops", "eventual", "quorum")

#: Asymmetric triangle for the ablation: the direct dc0→dc2 link is much
#: slower than the dc0→dc1→dc2 path, so a transitively-dependent write
#: can overtake its dependency unless delivery is causally gated.
RELAY_SITES = ("dc0", "dc1", "dc2")


def _relay_history(geo_causal_delivery: bool, scale):
    store = build_store(
        "chainreaction",
        sites=RELAY_SITES,
        servers_per_site=scale.servers_per_site,
        chain_length=scale.chain_length,
        ack_k=scale.ack_k,
        seed=scale.seed,
        overrides={"geo_causal_delivery": geo_causal_delivery},
    )
    store.network.set_link("dc0", "dc2", wan_latency(0.150))
    store.network.set_link("dc0", "dc1", wan_latency(0.010))
    store.network.set_link("dc1", "dc2", wan_latency(0.010))
    return run_relay_probe(
        store, ProbeConfig(n_pairs=scale.probe_pairs // 2 + 1, rounds=scale.probe_rounds // 2 + 1)
    )


def test_e10_anomaly_table(benchmark, scale):
    def experiment():
        rows = consistency_table(PROTOCOLS, scale, sites=GEO_SITES)
        # Ablation: apply remote updates on arrival vs. causally gated,
        # under the transitive 3-DC relay that FIFO shipping can't save.
        for label, flag in (("cr-causal-geo", True), ("cr-no-causal-geo", False)):
            history = _relay_history(flag, scale)
            rows.append(
                {
                    "protocol": label,
                    "operations": len(history),
                    "causal": len(check_causal(history)),
                    "read_your_writes": "-",
                    "monotonic_reads": "-",
                    "monotonic_writes": "-",
                    "writes_follow_reads": "-",
                }
            )
        return rows

    rows = run_once(benchmark, experiment)
    print()
    print(
        render_table(
            ["protocol", "ops", "causal", "RYW", "MR", "MW", "WFR"],
            [
                (
                    r["protocol"],
                    r["operations"],
                    r["causal"],
                    r["read_your_writes"],
                    r["monotonic_reads"],
                    r["monotonic_writes"],
                    r["writes_follow_reads"],
                )
                for r in rows
            ],
            title="E10: consistency anomalies under the geo causality probe",
        )
    )
    by_protocol = {r["protocol"]: r for r in rows}
    # Causal+ systems serve zero anomalies.
    for protocol in ("chainreaction", "chain", "cops", "cr-causal-geo"):
        assert by_protocol[protocol]["causal"] == 0, by_protocol[protocol]
    # The weak baselines do not.
    weak_total = by_protocol["eventual"]["causal"] + by_protocol["quorum"]["causal"]
    assert weak_total > 0, by_protocol
    # And the guarantee demonstrably comes from causal geo-delivery.
    assert by_protocol["cr-no-causal-geo"]["causal"] > 0, by_protocol
