"""E7 — Geo-replication: two datacenters over a WAN.

Paper shape: client-visible latency stays at LAN scale in both DCs —
geo-replication is asynchronous — while remote-update visibility tracks
the WAN one-way delay (plus local stabilisation), and global stability
tracks roughly a WAN round trip. Causal delivery adds no steady-state
visibility penalty because dependencies are almost always already
stable when updates arrive.
"""

from __future__ import annotations

from bench_utils import run_once

from repro.bench import GEO_SITES, run_ycsb
from repro.metrics import render_table

WAN_MEDIAN = 0.040  # seconds, one-way


def test_e7_geo_two_datacenters(benchmark, scale):
    def experiment():
        return run_ycsb(
            "chainreaction",
            "A",
            scale.latency_clients,
            scale,
            sites=GEO_SITES,
        )

    result = run_once(benchmark, experiment)
    stats = result.store.protocol_stats()
    visibility = stats["visibility_samples"]
    global_stability = stats["global_stability_samples"]
    assert visibility, "no remote updates were applied"
    assert global_stability, "no global stability acks arrived"
    visibility.sort()
    global_stability.sort()

    def pct(samples, p):
        return samples[min(int(len(samples) * p / 100), len(samples) - 1)] * 1000

    print()
    print(
        render_table(
            ["metric", "p50 ms", "p95 ms", "n"],
            [
                ("client get latency", result.get_latency.percentile(50) * 1000,
                 result.get_latency.percentile(95) * 1000, result.get_latency.count),
                ("client put latency", result.put_latency.percentile(50) * 1000,
                 result.put_latency.percentile(95) * 1000, result.put_latency.count),
                ("remote visibility", pct(visibility, 50), pct(visibility, 95), len(visibility)),
                ("global stability", pct(global_stability, 50), pct(global_stability, 95),
                 len(global_stability)),
            ],
            title="E7: ChainReaction across 2 DCs (WAN ~40ms one-way)",
        )
    )

    # Local operations never pay the WAN.
    assert result.get_latency.percentile(95) < WAN_MEDIAN / 2
    # Remote visibility is dominated by the WAN one-way delay...
    assert pct(visibility, 50) / 1000 > WAN_MEDIAN * 0.8
    assert pct(visibility, 50) / 1000 < WAN_MEDIAN * 4
    # ...and global stability needs at least a full WAN round trip.
    assert pct(global_stability, 50) / 1000 > 1.5 * WAN_MEDIAN
    assert result.errors == 0
