"""E6 — Scalability with the number of servers.

Paper shape: with offered load scaled proportionally to the cluster
(fixed clients per server), throughput grows close to linearly for
ChainReaction — consistent hashing spreads chains, and prefix reads
spread each chain — while classic chain replication scales too but from
a lower per-server ceiling (its hot keys still bottleneck one tail).
"""

from __future__ import annotations

from bench_utils import run_once

from repro.bench import run_ycsb
from repro.metrics import render_table

CLIENTS_PER_SERVER = 8


def test_e6_server_scalability(benchmark, scale):
    def experiment():
        rows = []
        for protocol in ("chainreaction", "chain"):
            for n_servers in scale.scalability_servers:
                result = run_ycsb(
                    protocol,
                    "B",
                    CLIENTS_PER_SERVER * n_servers,
                    scale,
                    servers_per_site=n_servers,
                    # Uniform keys isolate cluster-size scaling; zipfian
                    # skew pins the hot key to R servers at any size
                    # (that effect is E1's subject, not E6's).
                    distribution="uniform",
                )
                rows.append((protocol, n_servers, result.throughput, result.errors))
        return rows

    rows = run_once(benchmark, experiment)
    print()
    print(
        render_table(
            ["protocol", "servers", "ops/s", "errors"],
            rows,
            title=f"E6: scalability, {CLIENTS_PER_SERVER} clients/server, read-heavy",
        )
    )
    by_protocol = {}
    for protocol, n_servers, tput, errors in rows:
        by_protocol.setdefault(protocol, {})[n_servers] = tput
        assert errors == 0
    smallest = min(scale.scalability_servers)
    largest = max(scale.scalability_servers)
    growth = largest / smallest
    for protocol, points in by_protocol.items():
        speedup = points[largest] / points[smallest]
        # Within 40% of linear scaling on the simulated substrate.
        assert speedup > 0.6 * growth, (protocol, points)
    # ChainReaction's per-server ceiling stays above chain's at every size.
    for n_servers in scale.scalability_servers:
        assert by_protocol["chainreaction"][n_servers] > by_protocol["chain"][n_servers]
