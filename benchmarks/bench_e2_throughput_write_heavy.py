"""E2 — Throughput vs. client count, write-heavy workload (YCSB-A, 50/50).

Paper shape: with half the operations writing, every chain protocol
pays R-fold propagation, so the gap to the eventually-consistent upper
bound widens for everyone; ChainReaction still beats classic chain
replication because (a) its reads spread over the chain and (b) its
puts acknowledge at position k-1 < R-1.
"""

from __future__ import annotations

from bench_utils import run_once

from repro.bench import throughput_sweep
from repro.metrics import render_table

PROTOCOLS = ("chainreaction", "chain", "eventual", "quorum")


def test_e2_write_heavy_throughput(benchmark, scale):
    rows = run_once(benchmark, lambda: throughput_sweep(PROTOCOLS, "A", scale))
    print()
    print(
        render_table(
            ["protocol", "clients", "ops/s", "get p50 ms", "put p50 ms", "errors"],
            [
                (
                    r["protocol"],
                    r["clients"],
                    r["throughput_ops_s"],
                    r["get_p50_ms"],
                    r["put_p50_ms"],
                    r["errors"],
                )
                for r in rows
            ],
            title="E2: write-heavy (50/50) throughput vs clients",
        )
    )
    peak = {}
    for r in rows:
        peak[r["protocol"]] = max(peak.get(r["protocol"], 0.0), r["throughput_ops_s"])
    assert peak["chainreaction"] > peak["chain"], peak
    assert peak["eventual"] >= peak["chainreaction"], peak
    for r in rows:
        assert r["errors"] == 0, f"unexpected op failures: {r}"
