"""PR9 — Opt-in mypyc-compiled simulation kernel, pure-python parity.

The compiled backend is the *same source* (:mod:`repro.kernelcore`)
ahead-of-time compiled by mypyc, so two claims are measured:

1. **Parity** — every end-to-end arm (both backends x workers ∈ {1, 2}
   through the sharded engine) must produce the *same* ``Network.send``
   trace digest. This is the hard acceptance gate: the compiled kernel
   is only admissible because it is bit-identical, and a digest split
   fails the report regardless of speed.
2. **Speedup** — events/sec through the raw event kernel, tick+observe
   rate through the HLC arithmetic, and ops per wall second end-to-end,
   each reported as a compiled/pure ratio.

When the mypyc build is absent (``pip install -e .[compiled]`` +
``python scripts/build_kernel.py`` not run — e.g. a container without
mypy), the report measures the pure arms only and records an explicit
``build_skipped`` marker with the reason: the committed benchmark says
what this machine could and could not measure rather than inventing a
ratio. The CI ``compiled-smoke`` job runs the full A/B.

Run as a script to (re)generate ``BENCH_PR9.json`` at the repo root::

    PYTHONPATH=src python benchmarks/bench_pr9_compiled.py

or as part of the benchmark suite (shrunk tier)::

    pytest benchmarks/bench_pr9_compiled.py --benchmark-only -s
"""

from __future__ import annotations

import json
import platform
import sys
from pathlib import Path
from typing import Any, Dict, Optional

from repro.perf.compiled import bench_compiled_kernel

REPORT_PATH = Path(__file__).resolve().parent.parent / "BENCH_PR9.json"

#: kernel-rate floor the CI gate enforces when a build is present
MIN_KERNEL_SPEEDUP = 1.2

#: shrunk tier for the pytest/QUICK path — same shape, CI seconds
QUICK_OVERRIDES: Dict[str, Any] = {
    "record_count": 2_000,
    "n_clients": 32,
    "duration": 0.2,
    "warmup": 0.05,
    "drain": 0.2,
}


def collect_report(
    n_events: int = 200_000,
    repeats: int = 3,
    overrides: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    report = bench_compiled_kernel(
        n_events=n_events, repeats=repeats, overrides=overrides
    )
    report["python"] = platform.python_version()
    kernel_ratio = report["kernel_ops"]["compiled_vs_pure"]
    report["acceptance"] = {
        "digests_match": report["digests_match"],
        "kernel_speedup": kernel_ratio,
        "kernel_speedup_floor": MIN_KERNEL_SPEEDUP,
        # The floor only applies when there is a build to measure; a
        # build-skipped run passes on parity of the pure arms alone and
        # says so via ``build_skipped``.
        "enforced": not report["build_skipped"],
        "passed": bool(
            report["digests_match"]
            and (
                report["build_skipped"]
                or (kernel_ratio is not None and kernel_ratio >= MIN_KERNEL_SPEEDUP)
            )
        ),
    }
    return report


def _print_summary(report: Dict[str, Any]) -> None:
    if report["build_skipped"]:
        print(f"  build skipped: {report['build_skipped_reason']}")
    kops, hops = report["kernel_ops"], report["hlc_ops"]
    print(f"  kernel pure: {kops['pure_events_per_sec']:,.0f} events/s")
    if kops["compiled_vs_pure"] is not None:
        print(
            f"  kernel compiled: {kops['compiled_events_per_sec']:,.0f} events/s "
            f"({kops['compiled_vs_pure']:.2f}x)"
        )
    print(f"  hlc pure: {hops['pure_ops_per_sec']:,.0f} ops/s")
    if hops["compiled_vs_pure"] is not None:
        print(
            f"  hlc compiled: {hops['compiled_ops_per_sec']:,.0f} ops/s "
            f"({hops['compiled_vs_pure']:.2f}x)"
        )
    for run in report["end_to_end"]:
        print(
            f"  e2e {run['kernel']:>8} workers={run['workers_requested']}: "
            f"{run['ops_per_wall_sec']:8.1f} ops/wall-s "
            f"({run['wall_seconds']:.1f}s wall, {run['rounds']} rounds)"
        )
    for label, ratio in report["end_to_end_speedup"].items():
        if ratio is not None:
            print(f"  e2e speedup {label}: {ratio:.2f}x")
    print(f"  trace digests match (all arms): {report['digests_match']}")


def test_pr9_compiled(benchmark, scale):
    from bench_utils import run_once

    report = run_once(
        benchmark,
        lambda: collect_report(n_events=50_000, repeats=1, overrides=QUICK_OVERRIDES),
    )
    print()
    _print_summary(report)
    # Parity is unconditional; the speedup floor applies only when a
    # compiled build exists to measure.
    assert report["digests_match"], report["end_to_end"]
    assert report["acceptance"]["passed"], report["acceptance"]


def main() -> int:
    print("running the PR9 compiled-kernel A/B tier (pure vs mypyc) ...")
    report = collect_report()
    REPORT_PATH.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    _print_summary(report)
    print(f"acceptance passed: {report['acceptance']['passed']}")
    print(f"report written to {REPORT_PATH}")
    return 0 if report["acceptance"]["passed"] else 1


if __name__ == "__main__":
    sys.exit(main())
