"""E5 — The k parameter: eager-ack prefix length (DESIGN.md §6.1).

Paper shape: k trades write latency against durability and immediate
read fan-out. Put latency grows with k (more chain positions before the
ack); k = R makes every write immediately DC-stable (reads may go
anywhere at once, and the dependency table stays empty), while small k
acks sooner and lets stability catch up in the background.
"""

from __future__ import annotations

from bench_utils import run_once

from repro.bench import run_ycsb
from repro.metrics import render_table


def test_e5_k_parameter_sweep(benchmark, scale):
    def experiment():
        # Read-heavy mix: with writes rare, a put's latency is its own
        # k-hop acknowledgement path, not dependency-wait coupling with
        # the client's previous write — the effect the figure isolates.
        results = {}
        for k in range(1, scale.chain_length + 1):
            results[k] = run_ycsb(
                "chainreaction", "B", scale.latency_clients, scale, ack_k=k
            )
        return results

    results = run_once(benchmark, experiment)
    rows = []
    for k, result in sorted(results.items()):
        rows.append(
            (
                k,
                result.throughput,
                result.put_latency.percentile(50) * 1000,
                result.put_latency.percentile(99) * 1000,
                result.get_latency.percentile(50) * 1000,
                result.metadata_bytes.mean(),
            )
        )
    print()
    print(
        render_table(
            ["k", "ops/s", "put p50 ms", "put p99 ms", "get p50 ms", "meta B"],
            rows,
            title=f"E5: effect of k (R={scale.chain_length}), read-heavy",
        )
    )
    p50 = {k: r.put_latency.percentile(50) for k, r in results.items()}
    # Monotone latency in k: each extra eager hop costs propagation time.
    ks = sorted(p50)
    for a, b in zip(ks, ks[1:]):
        assert p50[a] <= p50[b] * 1.10, p50  # allow 10% noise
    assert p50[ks[-1]] > 1.3 * p50[ks[0]], p50
    # k=R writes are born stable: the client dependency table stays empty.
    assert results[scale.chain_length].metadata_bytes.mean() < results[1].metadata_bytes.mean() + 1e-9
