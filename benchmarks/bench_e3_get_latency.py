"""E3 — GET latency distribution under a read-heavy steady state.

Paper shape: at moderate load all systems serve reads in one LAN round
trip, but under the same client count classic chain replication shows a
heavier tail than ChainReaction because the per-key tail replica
queues; the quorum store's reads are strictly slower (coordinator plus
replica round trip).
"""

from __future__ import annotations

from bench_utils import run_once

from repro.bench import latency_run
from repro.metrics import render_table

PROTOCOLS = ("chainreaction", "chain", "eventual", "quorum")


def test_e3_get_latency_distribution(benchmark, scale):
    results = run_once(benchmark, lambda: latency_run(PROTOCOLS, "B", scale))
    rows = []
    for protocol, result in results.items():
        s = result.get_latency.summary()
        rows.append(
            (protocol, s["count"], s["mean_ms"], s["p50_ms"], s["p95_ms"], s["p99_ms"])
        )
    print()
    print(
        render_table(
            ["protocol", "reads", "mean ms", "p50 ms", "p95 ms", "p99 ms"],
            rows,
            title=f"E3: GET latency, {scale.latency_clients} clients, read-heavy",
        )
    )
    p99 = {protocol: r.get_latency.percentile(99) for protocol, r in results.items()}
    p50 = {protocol: r.get_latency.percentile(50) for protocol, r in results.items()}
    # Quorum reads pay at least one extra replica round trip.
    assert p50["quorum"] > 1.4 * p50["chainreaction"], p50
    # Chain's tail-read hot spot shows up in the tail of the distribution.
    assert p99["chain"] >= p99["chainreaction"], p99
