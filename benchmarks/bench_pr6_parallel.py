"""PR6 — Conservative-lookahead sharded simulation engine.

One logical experiment (the ``perf --scale --workers`` tier: 4 DCs,
R=3, k=2, 10⁶ preloaded keys, 10³ closed-loop clients) runs once per
worker count through :class:`repro.sim.shard.ShardedSimulator`. Two
claims are measured:

1. **Determinism** — every worker count must produce the *same*
   ``Network.send`` trace digest. This is the hard acceptance gate: a
   mismatch means the conservative windows leaked an ordering
   difference, and the report fails regardless of speed.
2. **Throughput vs workers** — ops per wall second per worker count,
   with speedup measured against the ``workers=1`` arm of the same
   engine. The speedup floor is **core-aware**: 4 workers are expected
   to deliver ≥ 1.5x only when the host actually schedules ≥ 4 CPUs
   (and 2 workers ≥ 1.25x on ≥ 2 CPUs). On fewer cores the extra
   processes cannot buy wall time — the report records the honest
   ratio alongside ``host_cpus`` instead of failing the run, because a
   digest-identical 1.0x on one core is the engine working as designed,
   not a regression.

Run as a script to (re)generate ``BENCH_PR6.json`` at the repo root::

    PYTHONPATH=src python benchmarks/bench_pr6_parallel.py

or as part of the benchmark suite (shrunk tier)::

    pytest benchmarks/bench_pr6_parallel.py --benchmark-only -s
"""

from __future__ import annotations

import json
import os
import platform
import sys
from pathlib import Path
from typing import Any, Dict, Optional, Sequence

from repro.perf.parallel import bench_parallel_scale

REPORT_PATH = Path(__file__).resolve().parent.parent / "BENCH_PR6.json"

#: speedup floors, applied only when the host schedules enough CPUs
MIN_SPEEDUP_2_WORKERS = 1.25
MIN_SPEEDUP_4_WORKERS = 1.5

#: shrunk tier for the pytest/QUICK path — same shape, CI seconds
QUICK_OVERRIDES: Dict[str, Any] = {
    "record_count": 2_000,
    "n_clients": 32,
    "duration": 0.2,
    "warmup": 0.05,
    "drain": 0.2,
}


def _effective_cpus() -> int:
    if hasattr(os, "sched_getaffinity"):
        return len(os.sched_getaffinity(0))
    return os.cpu_count() or 1


def collect_report(
    workers_list: Sequence[int] = (1, 2, 4),
    overrides: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    report = bench_parallel_scale(workers_list=workers_list, overrides=overrides)
    report["python"] = platform.python_version()

    cpus = _effective_cpus()
    speedups = {
        run["workers_requested"]: run["speedup_vs_first"] for run in report["runs"]
    }
    gates = []
    for workers, floor in (
        (2, MIN_SPEEDUP_2_WORKERS),
        (4, MIN_SPEEDUP_4_WORKERS),
    ):
        if workers not in speedups:
            continue
        gates.append(
            {
                "workers": workers,
                "speedup": speedups[workers],
                "floor": floor,
                # On a host with fewer cores than workers the floor is
                # physically unattainable; the gate records rather than
                # enforces, and ``host_cpus`` explains why.
                "enforced": cpus >= workers,
                "passed": (cpus < workers) or speedups[workers] >= floor,
            }
        )
    report["acceptance"] = {
        "digests_match": report["digests_match"],
        "effective_cpus": cpus,
        "speedup_gates": gates,
        "passed": bool(
            report["digests_match"] and all(g["passed"] for g in gates)
        ),
    }
    return report


def _print_summary(report: Dict[str, Any]) -> None:
    acc = report["acceptance"]
    print(
        f"  tier: {report['shards']} shards, "
        f"{report['profile']['record_count']:,} keys, "
        f"{report['profile']['n_clients']:,} clients; "
        f"lookahead {report['lookahead_s'] * 1000:.1f} ms; "
        f"{acc['effective_cpus']} cpu(s)"
    )
    for run in report["runs"]:
        print(
            f"  workers={run['workers_requested']}: "
            f"{run['wall_seconds']:7.1f}s wall, "
            f"{run['ops_per_wall_sec']:8.1f} ops/wall-s "
            f"({run['speedup_vs_first']:.2f}x), "
            f"{run['rounds']} rounds, "
            f"{run['envelopes_exchanged']:,} envelopes"
        )
    print(f"  trace digests match: {report['digests_match']}")
    for gate in acc["speedup_gates"]:
        state = "enforced" if gate["enforced"] else "recorded only (too few cpus)"
        print(
            f"  speedup gate {gate['workers']}w >= {gate['floor']}x: "
            f"{gate['speedup']:.2f}x — {state}"
        )


def test_pr6_parallel(benchmark, scale):
    from bench_utils import run_once

    report = run_once(
        benchmark, lambda: collect_report(workers_list=(1, 2), overrides=QUICK_OVERRIDES)
    )
    print()
    _print_summary(report)
    # Determinism is unconditional; speed floors apply per core count.
    assert report["digests_match"], report["runs"]
    assert report["acceptance"]["passed"], report["acceptance"]


def main() -> int:
    print("running the PR6 parallel scale tier (workers 1, 2, 4) ...")
    report = collect_report()
    REPORT_PATH.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    _print_summary(report)
    print(f"acceptance passed: {report['acceptance']['passed']}")
    print(f"report written to {REPORT_PATH}")
    return 0 if report["acceptance"]["passed"] else 1


if __name__ == "__main__":
    sys.exit(main())
