"""E11 (extension) — causally consistent snapshot reads.

The paper's transactional-read extension, reconstructed on DC-stability:
``multi_get`` returns a mutually consistent multi-key snapshot in one
round in the common case (dependency-floor validation triggers extra
rounds only when stabilisation races the reads).

Shape: snapshot reads cost about one parallel stable-read round — their
latency tracks a single GET, not the sum over keys — and under a
concurrent causally-linked writer the snapshots never show an effect
without its cause while staying only a stability-lag behind the freshest
data.
"""

from __future__ import annotations

from bench_utils import run_once

from repro.baselines import build_store
from repro.metrics import LatencyReservoir, render_table
from repro.sim import spawn
from repro.workload import workload


def test_e11_snapshot_reads(benchmark, scale):
    def experiment():
        store = build_store(
            "chainreaction",
            servers_per_site=scale.servers_per_site,
            chain_length=scale.chain_length,
            ack_k=scale.ack_k,
            seed=scale.seed,
        )
        sim = store.sim
        spec = workload("A", record_count=scale.record_count, value_size=scale.value_size)
        store.preload({spec.key(i): "init#-1" for i in range(scale.record_count)})

        snap_latency = LatencyReservoir(seed=5)
        get_latency = LatencyReservoir(seed=6)
        anomalies = [0]
        snapshots = [0]
        rounds = [0]
        stop_at = scale.warmup + scale.duration

        def writer(session, pair):
            key_a, key_b = spec.key(2 * pair), spec.key(2 * pair + 1)
            i = 0
            while sim.now < stop_at:
                i += 1
                yield session.put(key_a, f"r#{i}")
                yield session.put(key_b, f"r#{i}")
                yield 0.002

        def snap_reader(session, pair):
            key_a, key_b = spec.key(2 * pair), spec.key(2 * pair + 1)
            while sim.now < stop_at:
                t0 = sim.now
                snap = yield session.multi_get([key_b, key_a])
                snap_latency.add(sim.now - t0)
                snapshots[0] += 1
                rounds[0] += snap.rounds
                b_round = int(snap[key_b].split("#")[1])
                a_round = int(snap[key_a].split("#")[1])
                if a_round < b_round:
                    anomalies[0] += 1
                yield 0.001

        def get_reader(session, pair):
            key_a = spec.key(2 * pair)
            while sim.now < stop_at:
                t0 = sim.now
                yield session.get(key_a)
                get_latency.add(sim.now - t0)
                yield 0.001

        n_pairs = 8
        for pair in range(n_pairs):
            spawn(sim, writer(store.session(), pair))
            spawn(sim, snap_reader(store.session(), pair))
            spawn(sim, get_reader(store.session(), pair))
        sim.run(until=stop_at + 2.0)
        return snap_latency, get_latency, anomalies[0], snapshots[0], rounds[0]

    snap_latency, get_latency, anomalies, snapshots, rounds = run_once(benchmark, experiment)
    print()
    print(
        render_table(
            ["metric", "value"],
            [
                ("snapshots taken", snapshots),
                ("mean rounds per snapshot", rounds / max(snapshots, 1)),
                ("snapshot p50 ms", snap_latency.percentile(50) * 1000),
                ("snapshot p99 ms", snap_latency.percentile(99) * 1000),
                ("single-get p50 ms", get_latency.percentile(50) * 1000),
                ("causal anomalies", anomalies),
            ],
            title="E11: multi_get snapshot reads vs single gets",
        )
    )
    assert snapshots > 100
    assert anomalies == 0
    # One parallel round: snapshot latency ≈ one get, not a per-key sum.
    assert snap_latency.percentile(50) < 3.0 * get_latency.percentile(50)
    assert rounds / snapshots < 1.5
