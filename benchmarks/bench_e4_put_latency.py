"""E4 — PUT latency distribution under a read-heavy steady state.

Paper shape: put latency orders the systems by how much work sits
between the client and the acknowledgement — eventual (local write)
fastest, then ChainReaction (k = 2 chain positions), then quorum
(W replica round trips), then classic chain replication (full chain of
R before the tail acks). The mix is read-heavy so each put's latency is
its own acknowledgement path; under write-heavy streams every causal
store (by design) also waits for the previous write's dependencies,
which E2 captures instead.
"""

from __future__ import annotations

from bench_utils import run_once

from repro.bench import latency_run
from repro.metrics import render_table

PROTOCOLS = ("chainreaction", "chain", "eventual", "quorum")


def test_e4_put_latency_distribution(benchmark, scale):
    results = run_once(benchmark, lambda: latency_run(PROTOCOLS, "B", scale))
    rows = []
    for protocol, result in results.items():
        s = result.put_latency.summary()
        rows.append(
            (protocol, s["count"], s["mean_ms"], s["p50_ms"], s["p95_ms"], s["p99_ms"])
        )
    print()
    print(
        render_table(
            ["protocol", "writes", "mean ms", "p50 ms", "p95 ms", "p99 ms"],
            rows,
            title=f"E4: PUT latency, {scale.latency_clients} clients, read-heavy",
        )
    )
    p50 = {protocol: r.put_latency.percentile(50) for protocol, r in results.items()}
    # eventual acks locally; everything else must be slower.
    assert p50["eventual"] < p50["chainreaction"], p50
    # k=2 ack beats waiting for the full chain of R=3.
    assert p50["chainreaction"] < p50["chain"], p50
