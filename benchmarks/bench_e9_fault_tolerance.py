"""E9 — Fault tolerance: throughput through a server failure and repair.

Paper shape: killing one storage server mid-run produces a visible
throughput dip — requests routed to the dead server time out, the
failure detector fires, chains reconfigure and stream state — after
which throughput recovers to (nearly) the pre-failure level on the
smaller cluster. Consistency is preserved throughout: the recorded
history stays causally clean up to the handful of unstable versions
that can die with the crashed server.
"""

from __future__ import annotations

from bench_utils import run_once

from repro.baselines import build_store
from repro.bench import QUICK
from repro.checker import check_causal
from repro.metrics import render_series, render_table
from repro.workload import WorkloadRunner, workload

CRASH_AT = 1.0
RUN_FOR = 3.0


def test_e9_throughput_through_failure(benchmark, scale):
    def experiment():
        store = build_store(
            "chainreaction",
            servers_per_site=scale.servers_per_site,
            chain_length=scale.chain_length,
            ack_k=scale.ack_k,
            seed=scale.seed,
        )
        victim = store.servers()[0]
        store.sim.schedule_at(CRASH_AT, victim.crash)
        spec = workload("A", record_count=scale.record_count, value_size=scale.value_size)
        runner = WorkloadRunner(
            store, spec, n_clients=scale.latency_clients, duration=RUN_FOR, warmup=0.2
        )
        return runner.run(), store

    result, store = run_once(benchmark, experiment)
    series = result.timeline.series()
    before = result.timeline.rate_between(0.4, CRASH_AT)
    dip = result.timeline.rate_between(CRASH_AT, CRASH_AT + 0.6)
    after = result.timeline.rate_between(CRASH_AT + 1.2, 0.2 + RUN_FOR)
    violations = check_causal(result.history)

    print()
    print(
        render_table(
            ["phase", "ops/s"],
            [("before failure", before), ("failure window", dip), ("after repair", after)],
            title="E9: throughput around a server crash (t=1.0s)",
        )
    )
    print()
    print(render_series(series[:40], "t (s)", "ops/s", title="E9 timeline (first 4s)"))
    print(f"causal violations: {len(violations)}; op errors: {result.errors}")

    # The failure must actually hurt...
    assert dip < 0.9 * before, (before, dip)
    # ...and repair must bring throughput back on the smaller cluster.
    assert after > 0.7 * before, (before, after)
    # Consistency survives reconfiguration (tiny allowance for versions
    # that existed only on the crashed server when it died).
    assert len(violations) <= 5, [str(v) for v in violations[:5]]


def test_e9_view_change_happened(scale):
    """The failure detector must have removed the victim from the view."""
    store = build_store(
        "chainreaction",
        servers_per_site=scale.servers_per_site,
        chain_length=scale.chain_length,
        seed=scale.seed,
    )
    victim = store.servers()[0]
    manager = store.managers[store.sites[0]]
    epoch_before = manager.view.epoch
    store.sim.schedule_at(0.5, victim.crash)
    store.sim.run(until=2.0)
    assert manager.view.epoch > epoch_before
    assert victim.name not in manager.view.servers
