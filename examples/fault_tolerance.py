#!/usr/bin/env python
"""Fault tolerance: kill a server under load and watch the repair.

Runs a steady workload against a 6-server ChainReaction deployment,
crashes one server mid-run, and prints the throughput timeline: the dip
while clients time out and the failure detector fires, the chain
reconfiguration with state transfer, and the recovery on 5 servers.
Finishes by verifying that no data was lost.

Run:  python examples/fault_tolerance.py
"""

from repro.baselines import build_store
from repro.metrics import render_series
from repro.workload import WorkloadRunner, workload

CRASH_AT = 1.0


def main() -> None:
    store = build_store("chainreaction", servers_per_site=6, chain_length=3, ack_k=2, seed=3)
    victim = store.servers()[0]
    store.sim.schedule_at(CRASH_AT, victim.crash)

    spec = workload("A", record_count=100, value_size=64)
    runner = WorkloadRunner(store, spec, n_clients=16, duration=3.0, warmup=0.2)
    print(f"running 16 clients, crashing {victim.address} at t={CRASH_AT}s ...\n")
    result = runner.run()

    print(render_series(result.timeline.series(), "t (s)", "ops/s",
                        title="throughput timeline"))

    before = result.timeline.rate_between(0.4, CRASH_AT)
    dip = result.timeline.rate_between(CRASH_AT, CRASH_AT + 0.6)
    after = result.timeline.rate_between(CRASH_AT + 1.2, 3.2)
    print(f"\nbefore crash : {before:8.0f} ops/s")
    print(f"during outage: {dip:8.0f} ops/s")
    print(f"after repair : {after:8.0f} ops/s  (on 5 of 6 servers)")

    manager = store.managers["dc0"]
    print(f"\nview epoch {manager.view.epoch}, members {manager.view.servers}")

    # Verify no acknowledged write was lost: read back every key.
    session = store.session()
    missing = 0
    for i in range(spec.record_count):
        fut = session.get(spec.key(i))
        store.sim.run(until=store.sim.now + 0.2)
        if fut.failed() or fut.result().value is None:
            missing += 1
    print(f"post-repair audit: {spec.record_count - missing}/{spec.record_count} keys readable")
    print(f"client-visible operation errors during the run: {result.errors}")


if __name__ == "__main__":
    main()
