#!/usr/bin/env python
"""Fault tolerance: run a declarative fault campaign and read the report.

Uses the fault-campaign engine (``repro.faults``) to crash the chain
head of a hot key under load, recover it, and account for every client
operation: throughput before/during/after the fault window, explicit
ok / degraded / timeout outcomes, the injector's action log, and the
chain-invariant + causal-history audit. Same campaign + same seed
replays bit-identical message traces.

Finishes with a manual session (as a context manager) verifying that no
acknowledged write was lost.

Run:  python examples/fault_tolerance.py
      python -m repro faults --campaign crash-head      # same, via the CLI
"""

from repro.faults import campaign, run_campaign

SEED = 3


def main() -> None:
    spec = campaign("crash-head").with_updates(clients=16)
    print(f"campaign {spec.name!r}: {spec.description}")
    print(f"running {spec.clients} clients under seed {SEED} ...\n")

    result = run_campaign(spec, seed=SEED)
    print(result.format())

    # The engine keeps the live deployment around for post-mortems.
    store = result.store
    manager = store.managers["dc0"]
    print(f"\nview epoch {manager.view.epoch}, members {manager.view.servers}")

    # Verify no acknowledged write was lost: read back every key with a
    # fresh session. Sessions are context managers — closing detaches
    # them from the network.
    missing = 0
    with store.session() as session:
        for i in range(spec.records):
            fut = session.get(f"user{i:08d}")
            store.sim.run(until=store.sim.now + 0.2)
            if fut.failed() or fut.result().value is None:
                missing += 1
    print(f"post-repair audit: {spec.records - missing}/{spec.records} keys readable")


if __name__ == "__main__":
    main()
