#!/usr/bin/env python
"""The photo-album scenario: why causal+ matters for a social application.

Alice removes her boss from an ACL and *then* posts a photo. Under causal
consistency nobody can ever observe the photo together with the old ACL.
This example runs the exact same interaction against geo-replicated
ChainReaction and against the eventually-consistent baseline, and counts
how often the anomaly appears in each.

Run:  python examples/social_network.py
"""

from repro.baselines import build_store
from repro.sim import spawn

ROUNDS = 40
SITES = ("dc-europe", "dc-america")


def run_scenario(protocol: str) -> int:
    """Return how many times the boss saw the photo with the stale ACL."""
    store = build_store(
        protocol,
        sites=SITES,
        servers_per_site=4,
        chain_length=3,
        seed=101,
        write_quorum=1,
        read_quorum=1,
    )
    sim = store.sim
    alice = store.session(site=SITES[0], session_id="alice")
    boss = store.session(site=SITES[1], session_id="boss")
    anomalies = [0]

    def alice_loop():
        for round_no in range(ROUNDS):
            # Step 1: lock the boss out. Step 2: post the party photo.
            yield alice.put("acl:alice", f"friends-only#{round_no}")
            yield alice.put("photo:party", f"embarrassing#{round_no}")
            yield 0.01

    def boss_loop():
        # The boss polls from the other side of the planet, reading the
        # photo first and the ACL second (the dangerous order).
        for _ in range(ROUNDS * 40):
            photo = yield boss.get("photo:party")
            acl = yield boss.get("acl:alice")
            if photo.value is not None:
                photo_round = int(photo.value.split("#")[1])
                acl_round = -1 if acl.value is None else int(acl.value.split("#")[1])
                if acl_round < photo_round:
                    # Saw the photo of round N with an ACL older than N.
                    anomalies[0] += 1
            yield 0.002

    spawn(sim, alice_loop(), name="alice")
    spawn(sim, boss_loop(), name="boss")
    sim.run(until=ROUNDS * 0.02 + 5.0)
    store.shutdown()  # closes alice's and the boss's sessions
    return anomalies[0]


def main() -> None:
    print("Scenario: Alice updates her ACL, then posts a photo.")
    print("Anomaly: the boss observes the new photo under the OLD acl.\n")
    for protocol in ("eventual", "chainreaction"):
        anomalies = run_scenario(protocol)
        verdict = "UNSAFE" if anomalies else "safe"
        print(f"{protocol:14s}: {anomalies:3d} anomalous observations  [{verdict}]")
    print("\nChainReaction ships the photo write with Alice's ACL dependency")
    print("and applies it remotely only once the ACL update is stable there.")


if __name__ == "__main__":
    main()
