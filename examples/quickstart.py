#!/usr/bin/env python
"""Quickstart: a ChainReaction cluster in sixty lines.

Builds a single-datacenter deployment, writes and reads a few keys, and
prints what the protocol did under the hood — chain placement, the k-ack
position, DC-stability, and the client's causality metadata.

Run:  python examples/quickstart.py
"""

from repro import ChainReactionConfig, ChainReactionStore


def main() -> None:
    # 6 servers, every key on a chain of R=3 of them, writes acknowledged
    # once k=2 chain positions hold them.
    config = ChainReactionConfig(servers_per_site=6, chain_length=3, ack_k=2)
    store = ChainReactionStore(config)
    sim = store.sim

    # Sessions are context managers: closing one detaches it from the
    # network so late replies are dropped instead of mis-delivered.
    alice = store.session(session_id="alice")
    bob = store.session(session_id="bob")

    # --- a write --------------------------------------------------------
    fut = alice.put("photo:1234", "beach.jpg")
    sim.run(until=1.0)
    put = fut.result()
    chain = store.managers["dc0"].view.chain_for("photo:1234")
    print(f"photo:1234 lives on chain {chain}")
    print(f"alice's put got version {put.version}, acked by chain position {put.acked_by}")
    print(f"alice's causality metadata: {alice.dependency_table()}")

    # --- a causally dependent write --------------------------------------
    fut = alice.put("album:vacation", ["photo:1234"])
    sim.run(until=2.0)
    print(f"\nalbum write completed: {fut.result().version}")
    print("the album put carried alice's photo dependency; the chain head")
    print("held it until the photo write was DC-stable, so nobody can see")
    print("the album without being able to see the photo.")

    # --- reads spread over the whole chain -------------------------------
    sim.run(until=3.0)  # let everything stabilise
    served_by = set()
    for _ in range(30):
        fut = bob.get("photo:1234")
        sim.run(until=sim.now + 0.1)
        served_by.add(fut.result().served_by)
    print(f"\nbob's 30 reads were served by {sorted(served_by)}")
    print("(stable versions are readable from any chain position — the")
    print(" throughput win over tail-only chain replication)")

    # --- convergence ------------------------------------------------------
    print(f"\nall replicas converged: {store.converged('photo:1234')}")
    stats = store.protocol_stats()
    print(f"protocol totals: {stats['puts_served']} puts, {stats['gets_served']} gets, "
          f"{stats['messages_sent']} messages")

    # --- shutdown ---------------------------------------------------------
    store.shutdown()  # closes every open session
    print(f"open sessions after shutdown: {len(store.sessions())}")


if __name__ == "__main__":
    main()
