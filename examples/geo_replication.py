#!/usr/bin/env python
"""Geo-replication tour: three datacenters, conflicts, and stability.

Shows the full multi-DC lifecycle of a write: local k-ack, DC-stability,
asynchronous shipping, remote visibility, global stability — plus what
happens when two datacenters write the same key concurrently (convergent
last-writer-wins) and how a mergeable type avoids losing either update.

Run:  python examples/geo_replication.py
"""

from repro.core import ChainReactionConfig, ChainReactionStore
from repro.storage import MergingResolver

SITES = ("frankfurt", "virginia", "tokyo")


def build(resolver=None) -> ChainReactionStore:
    config = ChainReactionConfig(
        sites=SITES, servers_per_site=4, chain_length=3, ack_k=2, seed=7
    )
    return ChainReactionStore(config, resolver=resolver)


def lifecycle_demo() -> None:
    print("=== write lifecycle across 3 DCs ===")
    store = build()
    sim = store.sim
    writer = store.session(site="frankfurt", session_id="writer")

    fut = writer.put("user:42:profile", "v1")
    sim.run(until=0.01)
    print(f"t={sim.now*1000:6.1f}ms  acked locally: {fut.result().version} (k=2 of R=3)")

    reader_va = store.session(site="virginia", session_id="va-reader")
    for _ in range(400):
        got = reader_va.get("user:42:profile")
        sim.run(until=sim.now + 0.002)
        if got.done() and got.result().value == "v1":
            break
    print(f"t={sim.now*1000:6.1f}ms  visible in virginia (≈ one WAN hop)")

    sim.run(until=1.0)
    stats = store.protocol_stats()
    visibility = stats["visibility_samples"]
    globally = stats["global_stability_samples"]
    print(f"remote visibility samples (ms): {[round(v*1000,1) for v in visibility]}")
    print(f"global stability (ms): {[round(v*1000,1) for v in globally]}")
    store.shutdown()


def conflict_demo() -> None:
    print("\n=== concurrent cross-DC writes: last-writer-wins ===")
    store = build()
    sim = store.sim
    frankfurt = store.session(site="frankfurt", session_id="fra")
    tokyo = store.session(site="tokyo", session_id="tyo")
    frankfurt.put("setting:theme", "dark")
    tokyo.put("setting:theme", "light")
    sim.run(until=2.0)
    results = []
    for site in SITES:
        fut = store.session(site=site).get("setting:theme")
        sim.run(until=sim.now + 0.1)
        results.append((site, fut.result().value, fut.result().version))
    for site, value, version in results:
        print(f"  {site:10s} reads {value!r} @ {version}")
    assert len({value for _, value, _ in results}) == 1, "replicas diverged!"
    print("  -> every DC converged to the same winner (the + in causal+)")
    store.shutdown()


def merge_demo() -> None:
    print("\n=== concurrent writes with an application merge ===")
    store = build(resolver=MergingResolver(lambda a, b: sorted(set(a) | set(b))))
    sim = store.sim
    frankfurt = store.session(site="frankfurt", session_id="fra")
    tokyo = store.session(site="tokyo", session_id="tyo")
    frankfurt.put("cart:77", ["pretzel"])
    tokyo.put("cart:77", ["ramen"])
    sim.run(until=2.0)
    fut = store.session(site="virginia").get("cart:77")
    sim.run(until=sim.now + 0.1)
    print(f"  virginia reads the merged cart: {fut.result().value}")
    print("  -> neither concurrent update was lost")
    store.shutdown()


def main() -> None:
    lifecycle_demo()
    conflict_demo()
    merge_demo()


if __name__ == "__main__":
    main()
