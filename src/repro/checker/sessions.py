"""Session-guarantee checkers.

The four classic session guarantees (Terry et al., PDIS'94) are each
checkable per session from recorded versions:

- **read your writes** — a read of ``k`` must dominate the session's own
  latest earlier write to ``k``,
- **monotonic reads** — successive reads of ``k`` never go causally
  backwards,
- **monotonic writes** — a session's writes to ``k`` are ordered,
- **writes follow reads** — a write after reading version ``v`` must be
  ordered after ``v`` (checked on the version the system assigned).

Causal consistency implies all four; the E10 table counts how many each
protocol violates under the probe workload.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional

from repro.checker.history import GET, PUT, History, Operation
from repro.storage.version import VersionVector

__all__ = [
    "Violation",
    "check_read_your_writes",
    "check_monotonic_reads",
    "check_monotonic_writes",
    "check_writes_follow_reads",
    "check_session_guarantees",
]


@dataclasses.dataclass(frozen=True)
class Violation:
    """One detected anomaly."""

    guarantee: str
    session: str
    key: str
    detail: str
    operation: Optional[Operation] = None

    def __str__(self) -> str:
        return f"[{self.guarantee}] session={self.session} key={self.key}: {self.detail}"


def check_read_your_writes(history: History) -> List[Violation]:
    violations = []
    for session, ops in history.by_session().items():
        last_write: Dict[str, VersionVector] = {}
        for op in ops:
            if op.op == PUT:
                last_write[op.key] = op.version
            else:
                wanted = last_write.get(op.key)
                if wanted is not None and not op.version.dominates(wanted):
                    violations.append(
                        Violation(
                            "read-your-writes",
                            session,
                            op.key,
                            f"read {op.version} after writing {wanted}",
                            op,
                        )
                    )
    return violations


def check_monotonic_reads(history: History) -> List[Violation]:
    violations = []
    for session, ops in history.by_session().items():
        high_water: Dict[str, VersionVector] = {}
        for op in ops:
            if op.op != GET:
                continue
            seen = high_water.get(op.key)
            if seen is not None and not op.version.dominates(seen):
                violations.append(
                    Violation(
                        "monotonic-reads",
                        session,
                        op.key,
                        f"read {op.version} after having read {seen}",
                        op,
                    )
                )
            high_water[op.key] = (
                op.version if seen is None else seen.merge(op.version)
            )
    return violations


def check_monotonic_writes(history: History) -> List[Violation]:
    violations = []
    for session, ops in history.by_session().items():
        last_write: Dict[str, VersionVector] = {}
        for op in ops:
            if op.op != PUT:
                continue
            prev = last_write.get(op.key)
            if prev is not None and not op.version.dominates(prev):
                violations.append(
                    Violation(
                        "monotonic-writes",
                        session,
                        op.key,
                        f"write ordered {op.version}, earlier write {prev}",
                        op,
                    )
                )
            last_write[op.key] = op.version
    return violations


def check_writes_follow_reads(history: History) -> List[Violation]:
    """A session's write to ``k`` must be ordered after the versions of
    ``k`` the session had read before it."""
    violations = []
    for session, ops in history.by_session().items():
        high_read: Dict[str, VersionVector] = {}
        for op in ops:
            if op.op == GET:
                seen = high_read.get(op.key)
                high_read[op.key] = (
                    op.version if seen is None else seen.merge(op.version)
                )
            else:
                wanted = high_read.get(op.key)
                if wanted is not None and not op.version.dominates(wanted):
                    violations.append(
                        Violation(
                            "writes-follow-reads",
                            session,
                            op.key,
                            f"write {op.version} not after read {wanted}",
                            op,
                        )
                    )
    return violations


def check_session_guarantees(history: History) -> Dict[str, List[Violation]]:
    """All four guarantees at once, keyed by guarantee name."""
    return {
        "read-your-writes": check_read_your_writes(history),
        "monotonic-reads": check_monotonic_reads(history),
        "monotonic-writes": check_monotonic_writes(history),
        "writes-follow-reads": check_writes_follow_reads(history),
    }
