"""Full causal-consistency checking over recorded histories.

The checker computes, for every write, its **causal closure** — the set
of (key, version) floors implied by everything the writing session had
observed before issuing it — and then verifies that every read respects
the closure of everything its session has observed: once a session has
seen a write, it must also see (at least) that write's causal past.

Closures propagate across sessions through reads: a read of version
``v`` of key ``k`` imports the closure of every write covered by ``v``
(more than one when ``v`` is a convergent merge of concurrent writes).
Real histories make this recursion well-founded — a value cannot be
observed before it was written — so a cross-session depth-first
computation terminates; a cycle indicates a corrupt history and raises
:class:`~repro.errors.CheckerError`.

This subsumes the session guarantees (any causal violation the session
checkers find appears here too) and additionally catches the cross-key,
cross-session anomalies that only full causality forbids — the ones the
E10 probe workload is designed to provoke in the weaker baselines.
"""

from __future__ import annotations

import bisect
from collections import defaultdict
from typing import Dict, List, Tuple

from repro.checker.history import GET, PUT, History, Operation
from repro.checker.sessions import Violation
from repro.errors import CheckerError
from repro.storage.version import VersionVector

__all__ = ["CausalChecker", "check_causal"]

Floor = Dict[str, VersionVector]


def _merge_entry(floor: Floor, key: str, version: VersionVector) -> None:
    if version.is_zero():
        return
    existing = floor.get(key)
    floor[key] = version if existing is None else existing.merge(version)


def _merge_floor(floor: Floor, other: Floor) -> None:
    for key, version in other.items():
        _merge_entry(floor, key, version)


class _SessionState:
    __slots__ = ("ops", "next_index", "floor", "in_progress")

    def __init__(self, ops: List[Operation]):
        self.ops = ops
        self.next_index = 0
        #: causal floor: versions this session is obliged to observe
        self.floor: Floor = {}
        self.in_progress = False


class _KeyIndex:
    """Per-key write index enabling fast coverage queries.

    Writes are kept in the deterministic total order extending causality.
    When they form a *dominance chain* (each write covers its
    predecessor — always true when one serialisation point per key
    assigns versions, as in ChainReaction within a DC), the writes
    covered by an observed version are exactly a prefix, and the merged
    closure of that prefix can be maintained cumulatively. That turns
    the dominant checker cost from O(writes²) per hot key into
    O(writes·keys). Keys with genuinely concurrent writes fall back to
    an exact scan.
    """

    __slots__ = ("puts", "order_keys", "is_chain", "cum_floors")

    def __init__(self, puts: List[Operation]):
        self.puts = sorted(puts, key=lambda p: p.version.total_order_key())
        self.order_keys = [p.version.total_order_key() for p in self.puts]
        self.is_chain = all(
            later.version.dominates(earlier.version)
            for earlier, later in zip(self.puts, self.puts[1:])
        )
        #: lazily extended: cum_floors[i] = merged closure of puts[0..i]
        self.cum_floors: List[Floor] = []


class CausalChecker:
    """Checks one history for causal-consistency violations."""

    def __init__(self, history: History, validate: bool = True):
        if validate:
            history.validate()
        self._by_session = history.by_session()
        self._states = {s: _SessionState(ops) for s, ops in self._by_session.items()}
        puts_by_key: Dict[str, List[Operation]] = defaultdict(list)
        for ops in self._by_session.values():
            for op in ops:
                if op.op == PUT:
                    puts_by_key[op.key].append(op)
        self._key_index = {key: _KeyIndex(puts) for key, puts in puts_by_key.items()}
        #: closure of each put, keyed by (session, index-within-session)
        self._closures: Dict[Tuple[str, int], Floor] = {}
        self._put_pos: Dict[int, Tuple[str, int]] = {}
        for session, ops in self._by_session.items():
            for i, op in enumerate(ops):
                if op.op == PUT:
                    self._put_pos[id(op)] = (session, i)
        #: memo: floor implied by observing (key, version) — reads repeat
        #: versions constantly, so this takes the checker from quadratic
        #: to near-linear on benchmark-sized histories
        self._observed_floor_cache: Dict[Tuple[str, VersionVector], Floor] = {}
        self._violations: List[Violation] = []

    # ------------------------------------------------------------------
    def check(self) -> List[Violation]:
        """Process every session to completion; returns violations found."""
        for session, state in self._states.items():
            self._advance(session, len(state.ops))
        return list(self._violations)

    # ------------------------------------------------------------------
    def _observed_floor(self, key: str, version: VersionVector) -> Floor:
        """Merged closure of every write covered by observing ``version``."""
        if version.is_zero():
            return {}
        index = self._key_index.get(key)
        if index is None:
            return {}
        token = (key, version)
        floor = self._observed_floor_cache.get(token)
        if floor is not None:
            return floor

        prefix_end = bisect.bisect_right(index.order_keys, version.total_order_key())
        if index.is_chain and prefix_end > 0:
            last = index.puts[prefix_end - 1]
            if version.dominates(last.version):
                floor = self._cumulative_floor(index, prefix_end - 1)
                self._observed_floor_cache[token] = floor
                return floor
        # Concurrent writes on this key (or the observed version is
        # concurrent with the chain): exact scan over the candidates.
        floor = {}
        for put in index.puts[:prefix_end]:
            if version.dominates(put.version):
                _merge_floor(floor, self._closure_of(put))
                _merge_entry(floor, put.key, put.version)
        self._observed_floor_cache[token] = floor
        return floor

    def _cumulative_floor(self, index: _KeyIndex, upto: int) -> Floor:
        """Merged closure of ``index.puts[0..upto]`` (chain keys only)."""
        while len(index.cum_floors) <= upto:
            i = len(index.cum_floors)
            floor = dict(index.cum_floors[i - 1]) if i > 0 else {}
            put = index.puts[i]
            _merge_floor(floor, self._closure_of(put))
            _merge_entry(floor, put.key, put.version)
            index.cum_floors.append(floor)
        return index.cum_floors[upto]

    def _closure_of(self, put: Operation) -> Floor:
        session, index = self._put_pos[id(put)]
        token = (session, index)
        closure = self._closures.get(token)
        if closure is None:
            self._advance(session, index + 1)
            closure = self._closures[token]
        return closure

    def _advance(self, session: str, upto: int) -> None:
        state = self._states[session]
        if state.next_index >= upto:
            return
        if state.in_progress:
            raise CheckerError(
                f"cyclic observation involving session {session!r}: "
                "a value was observed before it was written"
            )
        state.in_progress = True
        try:
            while state.next_index < upto:
                op = state.ops[state.next_index]
                if op.op == PUT:
                    self._closures[(session, state.next_index)] = dict(state.floor)
                    _merge_entry(state.floor, op.key, op.version)
                else:
                    self._check_read(session, op, state.floor)
                    _merge_floor(state.floor, self._observed_floor(op.key, op.version))
                    _merge_entry(state.floor, op.key, op.version)
                state.next_index += 1
        finally:
            state.in_progress = False

    def _check_read(self, session: str, op: Operation, floor: Floor) -> None:
        required = floor.get(op.key)
        if required is not None and not op.version.dominates(required):
            self._violations.append(
                Violation(
                    "causal",
                    session,
                    op.key,
                    f"read {op.version} but causal floor is {required}",
                    op,
                )
            )


def check_causal(history: History, validate: bool = True) -> List[Violation]:
    """Convenience wrapper: all causal violations in ``history``."""
    return CausalChecker(history, validate=validate).check()
