"""Convergence checking — the "+" half of causal+ as an observable property.

After the writers stop and replication drains, every replica of every
key (in every datacenter) must hold the same record. These helpers
verify that against live deployments, advancing virtual time in steps
to let anti-entropy / geo-replication finish.
"""

from __future__ import annotations

import dataclasses
from typing import Iterable, List

from repro.api import Datastore

__all__ = ["ConvergenceReport", "convergence_report", "await_convergence"]


@dataclasses.dataclass(frozen=True)
class ConvergenceReport:
    """Outcome of a convergence scan over a set of keys."""

    checked: int
    divergent: List[str]

    @property
    def converged(self) -> bool:
        return not self.divergent

    def __str__(self) -> str:
        if self.converged:
            return f"all {self.checked} keys converged"
        sample = ", ".join(self.divergent[:5])
        return f"{len(self.divergent)}/{self.checked} keys divergent (e.g. {sample})"


def convergence_report(store: Datastore, keys: Iterable[str]) -> ConvergenceReport:
    """Scan ``keys`` on ``store`` right now (no extra time is granted)."""
    divergent = []
    checked = 0
    for key in keys:
        checked += 1
        if not store.converged(key):
            divergent.append(key)
    return ConvergenceReport(checked=checked, divergent=divergent)


def await_convergence(
    store: Datastore,
    keys: Iterable[str],
    max_extra_time: float = 10.0,
    step: float = 0.5,
) -> ConvergenceReport:
    """Advance virtual time in ``step`` increments until every key
    converges or the budget runs out; returns the final report."""
    keys = list(keys)
    deadline = store.sim.now + max_extra_time
    report = convergence_report(store, keys)
    while not report.converged and store.sim.now < deadline:
        store.sim.run(until=min(store.sim.now + step, deadline))
        report = convergence_report(store, report.divergent)
    if report.converged:
        return ConvergenceReport(checked=len(keys), divergent=[])
    return ConvergenceReport(checked=len(keys), divergent=report.divergent)
