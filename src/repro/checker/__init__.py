"""Consistency checking over recorded histories and live deployments."""

from repro.checker.causal import CausalChecker, check_causal
from repro.checker.convergence import (
    ConvergenceReport,
    await_convergence,
    convergence_report,
)
from repro.checker.history import GET, PUT, History, Operation
from repro.checker.linearizability import check_linearizability, check_linearizable_key
from repro.checker.staleness import StalenessReport, analyze_staleness
from repro.checker.sessions import (
    Violation,
    check_monotonic_reads,
    check_monotonic_writes,
    check_read_your_writes,
    check_session_guarantees,
    check_writes_follow_reads,
)

__all__ = [
    "History",
    "Operation",
    "GET",
    "PUT",
    "Violation",
    "check_read_your_writes",
    "check_monotonic_reads",
    "check_monotonic_writes",
    "check_writes_follow_reads",
    "check_session_guarantees",
    "CausalChecker",
    "check_causal",
    "ConvergenceReport",
    "convergence_report",
    "await_convergence",
    "check_linearizability",
    "StalenessReport",
    "analyze_staleness",
    "check_linearizable_key",
]
