"""Staleness analysis: how far behind the freshest write do reads trail?

Causal+ deliberately allows stale reads — the guarantee is ordering, not
freshness. This analyzer quantifies the freshness that was given up, per
read, from a recorded history:

- **version lag** — how many writes to the key had *completed* (been
  acknowledged) before the read was invoked but are not reflected in the
  version the read returned;
- **time lag** — how long before the read's invocation the newest
  completed-but-unseen write had finished (0 for fully fresh reads).

Comparing the distributions across protocols shows, e.g., that
ChainReaction's prefix reads trade no more staleness than the eventual
baseline while adding causal ordering, and that snapshot reads trail by
roughly the stability lag.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List

from repro.checker.history import GET, PUT, History, Operation
from repro.metrics.reservoir import LatencyReservoir

__all__ = ["StalenessReport", "analyze_staleness"]


@dataclasses.dataclass
class StalenessReport:
    """Aggregated staleness of every read in a history."""

    reads: int
    fresh_reads: int
    version_lag: LatencyReservoir
    time_lag: LatencyReservoir

    @property
    def fresh_fraction(self) -> float:
        return self.fresh_reads / self.reads if self.reads else 1.0

    def summary(self) -> Dict[str, float]:
        return {
            "reads": self.reads,
            "fresh_fraction": self.fresh_fraction,
            "version_lag_p50": self.version_lag.percentile(50),
            "version_lag_p99": self.version_lag.percentile(99),
            "time_lag_p50_ms": self.time_lag.percentile(50) * 1000,
            "time_lag_p99_ms": self.time_lag.percentile(99) * 1000,
        }


def analyze_staleness(history: History) -> StalenessReport:
    """Measure each read's lag behind the completed writes to its key.

    A write counts as *completed before* a read if its ``t_return``
    precedes the read's ``t_invoke`` — by then the writer had the ack in
    hand, so a linearizable system would be obliged to serve it.
    """
    puts_by_key: Dict[str, List[Operation]] = {}
    for op in history:
        if op.op == PUT:
            puts_by_key.setdefault(op.key, []).append(op)
    for puts in puts_by_key.values():
        puts.sort(key=lambda p: p.t_return)

    report = StalenessReport(
        reads=0,
        fresh_reads=0,
        version_lag=LatencyReservoir(seed=11),
        time_lag=LatencyReservoir(seed=12),
    )
    for op in history:
        if op.op != GET:
            continue
        report.reads += 1
        missed = 0
        newest_missed_at = None
        for put in puts_by_key.get(op.key, ()):
            if put.t_return >= op.t_invoke:
                break
            if not op.version.dominates(put.version):
                missed += 1
                newest_missed_at = put.t_return
        report.version_lag.add(float(missed))
        if missed:
            report.time_lag.add(op.t_invoke - newest_missed_at)
        else:
            report.fresh_reads += 1
            report.time_lag.add(0.0)
    return report
