"""Per-key linearizability checking (Wing & Gong / Lowe search).

Classic chain replication is linearizable per key; ChainReaction
deliberately is not (it trades that for read throughput under causal+
semantics). This checker makes the distinction testable: given the
history of one key — reads and writes with real-time intervals — it
searches for a legal sequential ordering of a read/write register that
respects real time.

The search is the standard one: repeatedly linearize a *minimal*
operation (one whose invocation precedes every unlinearized operation's
response), writes unconditionally, reads only when they observe the
current register value; memoisation on (linearized-set, register value)
keeps it tractable. Write values must be distinct for the memoisation
to be sound — the workload driver guarantees that.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.checker.history import GET, PUT, History, Operation
from repro.errors import CheckerError

__all__ = ["check_linearizable_key", "check_linearizability"]


def check_linearizable_key(
    ops: List[Operation], initial_value: object = None, max_states: int = 2_000_000
) -> bool:
    """True iff the single-key history ``ops`` is linearizable."""
    keys = {op.key for op in ops}
    if len(keys) > 1:
        raise CheckerError(f"history spans several keys: {sorted(keys)}")
    values = [op.value for op in ops if op.op == PUT]
    if len(values) != len(set(values)):
        raise CheckerError("write values must be distinct for linearizability checking")
    n = len(ops)
    if n == 0:
        return True

    returns = [op.t_return for op in ops]
    invokes = [op.t_invoke for op in ops]

    seen: Set[Tuple[FrozenSet[int], object]] = set()
    # Each stack frame is (linearized frozenset, register value).
    stack: List[Tuple[FrozenSet[int], object]] = [(frozenset(), initial_value)]
    explored = 0
    while stack:
        linearized, value = stack.pop()
        if len(linearized) == n:
            return True
        explored += 1
        if explored > max_states:
            raise CheckerError(
                f"linearizability search exceeded {max_states} states; "
                "split the history into smaller windows"
            )
        pending = [i for i in range(n) if i not in linearized]
        horizon = min(returns[i] for i in pending)
        for i in pending:
            if invokes[i] > horizon:
                continue  # not minimal: someone returned before it started
            op = ops[i]
            if op.op == PUT:
                next_state = (linearized | {i}, op.value)
            elif op.value == value:
                next_state = (linearized | {i}, value)
            else:
                continue
            if next_state not in seen:
                seen.add(next_state)
                stack.append(next_state)
    return False


def check_linearizability(
    history: History, initial_values: Optional[Dict[str, object]] = None
) -> List[str]:
    """Check every key independently; returns the non-linearizable keys.

    Per-key checking is sound for register semantics because keys are
    independent objects (linearizability is local/composable).
    """
    initial_values = initial_values or {}
    failures = []
    by_key: Dict[str, List[Operation]] = {}
    for op in history:
        by_key.setdefault(op.key, []).append(op)
    for key, ops in sorted(by_key.items()):
        ops.sort(key=lambda o: o.t_invoke)
        if not check_linearizable_key(ops, initial_values.get(key)):
            failures.append(key)
    return failures
