"""Operation histories — the input to every consistency checker.

The workload driver records one :class:`Operation` per completed client
request, carrying the *version* the protocol reported. Versions are the
bridge between history and semantics: a read observing version ``v`` of
a key has observed every write whose version is ≤ ``v`` under the
causality order, which is what lets the checkers work uniformly across
all five protocols.

Within a session operations are sequential (one outstanding request), so
program order is invocation order.
"""

from __future__ import annotations

import dataclasses
from collections import defaultdict
from typing import Dict, Iterator, List, Optional

from repro.errors import CheckerError
from repro.storage.version import VersionVector

__all__ = ["Operation", "History", "GET", "PUT"]

GET = "get"
PUT = "put"


@dataclasses.dataclass(frozen=True)
class Operation:
    """One completed client operation."""

    session: str
    op: str  # GET or PUT
    key: str
    value: object
    version: VersionVector
    t_invoke: float
    t_return: float
    site: str = ""

    def __post_init__(self) -> None:
        if self.op not in (GET, PUT):
            raise CheckerError(f"unknown op type {self.op!r}")
        if self.t_return < self.t_invoke:
            raise CheckerError(
                f"operation returns before it is invoked: {self.t_invoke} > {self.t_return}"
            )


class History:
    """An append-only record of completed operations."""

    def __init__(self) -> None:
        self._ops: List[Operation] = []

    def record(self, op: Operation) -> None:
        self._ops.append(op)

    def add(
        self,
        session: str,
        op: str,
        key: str,
        value: object,
        version: VersionVector,
        t_invoke: float,
        t_return: float,
        site: str = "",
    ) -> Operation:
        operation = Operation(session, op, key, value, version, t_invoke, t_return, site)
        self.record(operation)
        return operation

    # ------------------------------------------------------------------
    # views
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._ops)

    def __iter__(self) -> Iterator[Operation]:
        return iter(self._ops)

    def operations(self) -> List[Operation]:
        return list(self._ops)

    def sessions(self) -> List[str]:
        return sorted({op.session for op in self._ops})

    def by_session(self) -> Dict[str, List[Operation]]:
        """Program order per session (sessions are sequential, so
        invocation order is program order)."""
        grouped: Dict[str, List[Operation]] = defaultdict(list)
        for op in self._ops:
            grouped[op.session].append(op)
        return {
            session: sorted(grouped[session], key=lambda o: o.t_invoke)
            for session in sorted(grouped)
        }

    def puts(self, key: Optional[str] = None) -> List[Operation]:
        return [
            op for op in self._ops if op.op == PUT and (key is None or op.key == key)
        ]

    def gets(self, key: Optional[str] = None) -> List[Operation]:
        return [
            op for op in self._ops if op.op == GET and (key is None or op.key == key)
        ]

    def keys(self) -> List[str]:
        return sorted({op.key for op in self._ops})

    def validate(self) -> None:
        """Sanity-check invariants the checkers rely on; raises CheckerError.

        - each session's operations must not overlap in time (sequential
          sessions), and
        - no two puts may share (key, version) (version uniqueness).
        """
        for session, ops in self.by_session().items():
            for earlier, later in zip(ops, ops[1:]):
                if later.t_invoke < earlier.t_return:
                    raise CheckerError(
                        f"session {session!r} has overlapping operations at "
                        f"t={earlier.t_return} / t={later.t_invoke}"
                    )
        seen: Dict[tuple, Operation] = {}
        for op in self._ops:
            if op.op != PUT:
                continue
            token = (op.key, op.version)
            if token in seen:
                raise CheckerError(
                    f"two puts share key/version {token}: {seen[token]} and {op}"
                )
            seen[token] = op
