"""The per-server versioned key-value store.

Every replica in every protocol keeps its data here. The store enforces
the convergence discipline locally: an incoming write is applied only if
it causally dominates the stored version; concurrent writes go through
the convergent :class:`~repro.storage.merge.ConflictResolver`; stale or
duplicate writes are ignored. Given the same set of writes in any
order, two stores therefore end up identical — which is what makes the
convergence property checkable in tests.

Deletions are tombstones: a delete is a write of :data:`TOMBSTONE`
carrying a version, so it wins/loses against concurrent puts exactly
like any other write instead of resurrecting old data.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.storage.merge import ConflictResolver, LWWResolver, Stamp, stamp_of
from repro.storage.version import VersionVector

__all__ = ["Record", "ApplyResult", "VersionedStore", "TOMBSTONE", "Tombstone"]


class Tombstone:
    """Singleton marker for deleted values."""

    _instance: Optional["Tombstone"] = None

    def __new__(cls) -> "Tombstone":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "<TOMBSTONE>"

    def size_bytes(self) -> int:
        return 1


TOMBSTONE = Tombstone()


class Record:
    """One stored key: its current value and the version that produced it.

    ``version`` is the causal high-water mark (merged across conflicts);
    ``stamp`` is the immutable arbitration stamp of the write whose
    value survived — the pair that keeps conflict resolution
    order-independent.

    Hand-rolled slotted class (not ``dataclass(slots=True)`` — py3.9):
    stores hold one instance per key per replica, so the per-instance
    ``__dict__`` a dataclass carries dominated large-keyspace memory.
    Treat instances as immutable; nothing in the tree mutates them.
    """

    __slots__ = ("key", "value", "version", "stamp", "updated_at")

    def __init__(
        self,
        key: str,
        value: Any,
        version: VersionVector,
        stamp: Tuple = (),
        updated_at: float = 0.0,
    ) -> None:
        self.key = key
        self.value = value
        self.version = version
        self.stamp = stamp
        self.updated_at = updated_at

    @property
    def is_deleted(self) -> bool:
        return self.value is TOMBSTONE

    def size_bytes(self) -> int:
        from repro.net.message import estimate_size

        return estimate_size(self.key) + estimate_size(self.value) + self.version.size_bytes()

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Record):
            return NotImplemented
        return (
            self.key == other.key
            and self.value == other.value
            and self.version == other.version
            and self.stamp == other.stamp
            and self.updated_at == other.updated_at
        )

    def __hash__(self) -> int:
        return hash((self.key, self.version, self.stamp, self.updated_at))

    def __repr__(self) -> str:
        return (
            f"Record(key={self.key!r}, value={self.value!r}, "
            f"version={self.version!r}, stamp={self.stamp!r}, "
            f"updated_at={self.updated_at!r})"
        )


class ApplyResult:
    """Outcome of offering a write to the store (slotted; py3.9-safe)."""

    __slots__ = ("applied", "record", "was_conflict")

    def __init__(self, applied: bool, record: Record, was_conflict: bool = False) -> None:
        self.applied = applied
        self.record = record
        self.was_conflict = was_conflict

    def __repr__(self) -> str:
        return (
            f"ApplyResult(applied={self.applied!r}, record={self.record!r}, "
            f"was_conflict={self.was_conflict!r})"
        )


class VersionedStore:  # repro: lint-ok(slots) — invariant monitor rebinds .apply per instance
    """Convergent versioned KV store used by every replica.

    ``record_factory`` is the class used for stored entries; the scale
    benchmark's baseline arm swaps in an unslotted legacy record to
    measure the memory delta under identical protocol behaviour.
    """

    record_factory: "type" = Record

    def __init__(self, resolver: Optional[ConflictResolver] = None):
        self._data: Dict[str, Record] = {}
        self._resolver = resolver or LWWResolver()
        self.writes_applied = 0
        self.writes_ignored = 0
        self.conflicts_resolved = 0

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    def get(self, key: str) -> Optional[Record]:
        """The live record for ``key``; None if absent or deleted."""
        rec = self._data.get(key)
        if rec is None or rec.is_deleted:
            return None
        return rec

    def get_record(self, key: str) -> Optional[Record]:
        """The raw record including tombstones; None only if never written."""
        return self._data.get(key)

    def version_of(self, key: str) -> VersionVector:
        rec = self._data.get(key)
        return rec.version if rec is not None else VersionVector()

    def __contains__(self, key: str) -> bool:
        return self.get(key) is not None

    def __len__(self) -> int:
        return sum(1 for rec in self._data.values() if not rec.is_deleted)

    def keys(self) -> Iterator[str]:
        return (k for k, rec in self._data.items() if not rec.is_deleted)

    def all_records(self) -> List[Record]:
        """Every record including tombstones — for anti-entropy / repair."""
        return list(self._data.values())

    # ------------------------------------------------------------------
    # writes
    # ------------------------------------------------------------------
    def apply(
        self,
        key: str,
        value: Any,
        version: VersionVector,
        now: float = 0.0,
        stamp: Optional[Tuple] = None,
    ) -> ApplyResult:
        """Offer a write; returns whether it took effect and the live record.

        - stored version dominates (or equals) the incoming one → ignored,
        - incoming strictly dominates → replaces,
        - concurrent → convergent resolution by stamp.

        ``stamp`` defaults to the arbitration stamp derived from
        ``version`` — correct whenever ``version`` is the write's
        *original* vector (every protocol propagation path). Pass the
        record's stored stamp explicitly when re-transmitting merged
        records (state transfer, anti-entropy, read repair).
        """
        if stamp is None:
            stamp = stamp_of(version)
        make_record = self.record_factory
        existing = self._data.get(key)
        if existing is None:
            rec = make_record(key, value, version, stamp, now)
            self._data[key] = rec
            self.writes_applied += 1
            return ApplyResult(True, rec)

        if existing.version.dominates(version):
            self.writes_ignored += 1
            return ApplyResult(False, existing)

        if version.dominates(existing.version):
            rec = make_record(key, value, version, stamp, now)
            self._data[key] = rec
            self.writes_applied += 1
            return ApplyResult(True, rec)

        winner_value, winner_stamp = self._resolver.resolve(
            existing.value, existing.stamp, value, stamp
        )
        rec = make_record(key, winner_value, existing.version.merge(version), winner_stamp, now)
        self._data[key] = rec
        self.writes_applied += 1
        self.conflicts_resolved += 1
        return ApplyResult(True, rec, was_conflict=True)

    def delete(
        self,
        key: str,
        version: VersionVector,
        now: float = 0.0,
        stamp: Optional[Tuple] = None,
    ) -> ApplyResult:
        """Apply a tombstone write."""
        return self.apply(key, TOMBSTONE, version, now, stamp)

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------
    def digest(self) -> Dict[str, VersionVector]:
        """key → version map, the unit of anti-entropy comparison."""
        return {k: rec.version for k, rec in self._data.items()}

    def records_newer_than(self, digest: Dict[str, VersionVector]) -> List[Record]:
        """Records the peer summarised by ``digest`` is missing or behind on."""
        out = []
        for key, rec in self._data.items():
            peer_version = digest.get(key)
            if peer_version is None or not peer_version.dominates(rec.version):
                out.append(rec)
        return out

    def clear(self) -> None:
        """Drop all data — models losing volatile state in a crash."""
        self._data.clear()

    def checksum_state(self) -> Tuple[Tuple[str, Any, VersionVector], ...]:
        """Canonical tuple of live state, for convergence assertions in tests."""
        return tuple(
            (rec.key, rec.value, rec.version)
            for rec in sorted(self._data.values(), key=lambda r: r.key)
        )
