"""Convergent conflict handling — the "+" in causal+.

Causal consistency alone lets replicas diverge forever on concurrent
writes. Causal+ adds the requirement that all replicas resolve every
conflict *identically*, so they converge once they have seen the same
writes.

Arbitration uses a per-write **stamp**: the total-order key of the
write's *original* version vector, fixed at write time. Resolving on
the record's current (possibly merged) vector instead would be
order-dependent — the merged vector keeps growing as conflicts
accumulate, so different arrival orders would compare different keys.
Original vectors are unique per key (each DC's counter is assigned at
one serialisation point), so the stamp totally orders a key's writes,
and because a causally later write always carries a strictly larger
total, the stamp order extends causality.

The resolver is pluggable: the default is last-writer-wins by stamp,
and applications can install a commutative/associative merge function
instead (the paper's mergeable-objects example).
"""

from __future__ import annotations

from typing import Any, Callable, Tuple

from repro.storage.version import VersionVector

__all__ = ["Stamp", "stamp_of", "ConflictResolver", "LWWResolver", "MergingResolver"]

#: Immutable arbitration stamp: the total-order key of the write's
#: original version vector.
Stamp = Tuple[int, Tuple[Tuple[str, int], ...]]


def stamp_of(original_version: VersionVector) -> Stamp:
    """The arbitration stamp of a write, from its original version."""
    return original_version.total_order_key()


class ConflictResolver:
    """Decides the surviving value for two concurrent writes.

    ``resolve`` receives each candidate's value and stamp and returns
    the winning ``(value, stamp)``; the caller merges the version
    vectors. Implementations MUST be deterministic and symmetric:
    ``resolve(a, b)`` and ``resolve(b, a)`` must pick the same winner,
    or replicas applying writes in different orders will diverge.
    """

    __slots__ = ()

    def resolve(
        self,
        value_a: Any,
        stamp_a: Stamp,
        value_b: Any,
        stamp_b: Stamp,
    ) -> Tuple[Any, Stamp]:
        raise NotImplementedError


class LWWResolver(ConflictResolver):
    """Last-writer-wins over the stamp order (extends causality)."""

    __slots__ = ()

    def resolve(
        self,
        value_a: Any,
        stamp_a: Stamp,
        value_b: Any,
        stamp_b: Stamp,
    ) -> Tuple[Any, Stamp]:
        if stamp_a >= stamp_b:
            return value_a, stamp_a
        return value_b, stamp_b


class MergingResolver(ConflictResolver):
    """Application-supplied commutative merge of the two values.

    ``merge_fn(a, b)`` must be commutative and associative; order of
    arrival then cannot affect the result. The surviving stamp is the
    larger input stamp, keeping arbitration deterministic when a merged
    value later meets a third concurrent write.
    """

    __slots__ = ("_merge_fn",)

    def __init__(self, merge_fn: Callable[[Any, Any], Any]):
        self._merge_fn = merge_fn

    def resolve(
        self,
        value_a: Any,
        stamp_a: Stamp,
        value_b: Any,
        stamp_b: Stamp,
    ) -> Tuple[Any, Stamp]:
        # Feed arguments in a canonical order so even a non-commutative
        # user function cannot silently diverge replicas.
        if stamp_a <= stamp_b:
            merged = self._merge_fn(value_a, value_b)
        else:
            merged = self._merge_fn(value_b, value_a)
        return merged, max(stamp_a, stamp_b)
