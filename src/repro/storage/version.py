"""Version types for causal+ replication.

ChainReaction names versions with **version vectors carrying one entry
per datacenter** (not per server — chain order already serialises
updates inside a DC, so a single counter per DC suffices). In a single-
DC deployment the vector degenerates to one counter, which is exactly
the per-key sequence number the chain head assigns.

The partial order over vectors is causality: ``a < b`` iff every entry
of ``a`` is ≤ the matching entry of ``b`` and at least one is strictly
smaller. Incomparable vectors are *concurrent* — those are the writes
that the convergent conflict handler (the "+" in causal+) must resolve
identically at every replica.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Tuple

__all__ = ["VersionVector", "ZERO"]


class VersionVector:
    """An immutable mapping from datacenter id to update counter.

    Missing entries are implicitly zero, so vectors from deployments
    with different DC sets compare correctly.
    """

    __slots__ = ("_entries",)

    def __init__(self, entries: Mapping[str, int] = ()):
        cleaned = {dc: n for dc, n in dict(entries).items() if n != 0}
        for dc, n in cleaned.items():
            if n < 0:
                raise ValueError(f"negative counter for {dc!r}: {n}")
        self._entries: Tuple[Tuple[str, int], ...] = tuple(sorted(cleaned.items()))

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    def get(self, dc: str) -> int:
        for name, n in self._entries:
            if name == dc:
                return n
        return 0

    def entries(self) -> Dict[str, int]:
        return dict(self._entries)

    def datacenters(self) -> Tuple[str, ...]:
        return tuple(dc for dc, _ in self._entries)

    def is_zero(self) -> bool:
        return not self._entries

    def total(self) -> int:
        """Sum of all counters — the number of writes this version reflects."""
        return sum(n for _, n in self._entries)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def increment(self, dc: str) -> "VersionVector":
        updated = dict(self._entries)
        updated[dc] = updated.get(dc, 0) + 1
        return VersionVector(updated)

    def merge(self, other: "VersionVector") -> "VersionVector":
        """Pointwise maximum — the least upper bound under causality.

        When one operand already dominates the other, the dominating
        vector *is* the least upper bound, so it is returned as-is —
        no dict build, no new object. Merges against ``ZERO`` and
        self-merges (both ubiquitous in stability bookkeeping) take
        this path. Safe for ``__eq__``/``__hash__`` users: the result
        compares equal to a freshly-built merge; only identity differs.
        """
        if not other._entries or other._entries == self._entries:
            return self
        if not self._entries:
            return other
        merged = dict(self._entries)
        changed = False
        for dc, n in other._entries:
            if n > merged.get(dc, 0):
                merged[dc] = n
                changed = True
        if not changed:
            return self
        if len(merged) == len(other._entries) and all(
            merged[dc] == n for dc, n in other._entries
        ):
            return other
        return VersionVector(merged)

    @staticmethod
    def join(vectors: Iterable["VersionVector"]) -> "VersionVector":
        out = ZERO
        for vv in vectors:
            out = out.merge(vv)
        return out

    # ------------------------------------------------------------------
    # causality order
    # ------------------------------------------------------------------
    def dominates(self, other: "VersionVector") -> bool:
        """True iff ``self`` ≥ ``other`` pointwise (reflexive)."""
        return all(self.get(dc) >= n for dc, n in other._entries)

    def happens_before(self, other: "VersionVector") -> bool:
        """Strict causal precedence: ``self`` < ``other``."""
        return other.dominates(self) and self._entries != other._entries

    def concurrent_with(self, other: "VersionVector") -> bool:
        return not self.dominates(other) and not other.dominates(self)

    def total_order_key(self) -> Tuple[int, Tuple[Tuple[str, int], ...]]:
        """Key for a deterministic total order extending causality.

        If ``a`` happens-before ``b`` then ``a.total() < b.total()``, so
        sorting by ``(total, entries)`` never inverts a causal pair; the
        lexicographic entry tuple breaks ties among concurrent vectors
        identically at every replica — this is the LWW arbitration rule.
        """
        return (self.total(), self._entries)

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        return isinstance(other, VersionVector) and self._entries == other._entries

    def __hash__(self) -> int:
        return hash(self._entries)

    def __lt__(self, other: "VersionVector") -> bool:
        """Total order used for LWW arbitration (extends causality)."""
        return self.total_order_key() < other.total_order_key()

    def __le__(self, other: "VersionVector") -> bool:
        return self == other or self < other

    def size_bytes(self) -> int:
        """Wire size: one (dc-id, counter) pair per non-zero entry."""
        return 4 + sum(4 + len(dc) + 8 for dc, _ in self._entries)

    def __repr__(self) -> str:
        inner = ",".join(f"{dc}:{n}" for dc, n in self._entries)
        return f"VV({inner})"


#: The empty vector — causally before everything.
ZERO = VersionVector()
