"""Version types for causal+ replication.

ChainReaction names versions with **version vectors carrying one entry
per datacenter** (not per server — chain order already serialises
updates inside a DC, so a single counter per DC suffices). In a single-
DC deployment the vector degenerates to one counter, which is exactly
the per-key sequence number the chain head assigns.

The partial order over vectors is causality: ``a < b`` iff every entry
of ``a`` is ≤ the matching entry of ``b`` and at least one is strictly
smaller. Incomparable vectors are *concurrent* — those are the writes
that the convergent conflict handler (the "+" in causal+) must resolve
identically at every replica.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Mapping, Tuple

from repro.kernelcore import vvcore as _vvcore

__all__ = [
    "VersionVector",
    "ZERO",
    "set_interning",
    "interning_enabled",
    "intern_stats",
    "intern_str",
    "clear_intern_pool",
]

_EntriesTuple = Tuple[Tuple[str, int], ...]

# Hot entries-tuple math delegates through these rebindable globals so
# repro.sim.backend can swap in the mypyc-compiled copy of the very same
# functions (repro._compiled.vvcore) at activation time. Module-global
# indirection rather than an import of one or the other: the call sites
# pay nothing extra, and this class — with its intern pools, which are
# module-level mutable state and therefore barred from the compiled
# package — stays the single interpreted shell both backends share.
_get_entry = _vvcore.get_entry
_total_entries = _vvcore.total_entries
_increment_entries = _vvcore.increment_entries
_merge_entries = _vvcore.merge_entries
_dominates_entries = _vvcore.dominates_entries
_entries_size_bytes = _vvcore.entries_size_bytes


def _bind_kernel(core: Any) -> None:
    """Point the hot-math globals at ``core`` (pure or compiled vvcore)."""
    global _get_entry, _total_entries, _increment_entries
    global _merge_entries, _dominates_entries, _entries_size_bytes
    _get_entry = core.get_entry
    _total_entries = core.total_entries
    _increment_entries = core.increment_entries
    _merge_entries = core.merge_entries
    _dominates_entries = core.dominates_entries
    _entries_size_bytes = core.entries_size_bytes

# Intern pool: canonical entries tuple -> the one shared instance.  The
# pool is bounded (no eviction — overflow vectors are simply not pooled)
# so a pathological run cannot grow it without limit, and it can be
# switched off wholesale for A/B memory measurements (the legacy arm of
# ``perf --scale``).  Safe because vectors are immutable and compare by
# value: pooling only collapses identity, never equality or hashing.
_INTERN_MAX = 8192
_INTERN_ENABLED = True
_POOL: Dict[_EntriesTuple, "VersionVector"] = {}  # repro: lint-ok(module-mutable-state) — per-process intern pool; collapses identity only, rebuilt from pickled values on each worker
_STR_POOL: Dict[str, str] = {}  # repro: lint-ok(module-mutable-state) — per-process string intern pool, identity-only
_HITS = 0
_MISSES = 0


def set_interning(enabled: bool) -> bool:
    """Toggle vector interning; returns the previous setting."""
    global _INTERN_ENABLED
    previous = _INTERN_ENABLED
    _INTERN_ENABLED = bool(enabled)
    return previous


def interning_enabled() -> bool:
    return _INTERN_ENABLED


def intern_str(s: str) -> str:
    """``sys.intern`` under the memory-model switch.

    Key and site-name strings are interned at their creation boundaries
    (workload generator, client API, preload, addresses) so every
    record, dependency column, and stability entry across all replicas
    pins one shared object per name. The legacy arm of ``perf --scale``
    turns this off together with vector interning — per-arm, the switch
    selects the whole memory model, not just the vector pool.

    An own pool rather than ``sys.intern``: interpreter-interned strings
    are immortal and their table resizes get charged to whichever caller
    triggers them, while this pool is bounded (same cap as the vector
    pool, overflow passes through) and dropped by ``clear_intern_pool``.
    """
    if not _INTERN_ENABLED:
        return s
    pooled = _STR_POOL.get(s)
    if pooled is not None:
        return pooled
    if len(_STR_POOL) < _INTERN_MAX:
        _STR_POOL[s] = s
    return s


def intern_stats() -> Dict[str, int]:
    """Pool gauges: entries live, capacity, lookup hits/misses."""
    return {
        "enabled": int(_INTERN_ENABLED),
        "entries": len(_POOL),
        "str_entries": len(_STR_POOL),
        "capacity": _INTERN_MAX,
        "hits": _HITS,
        "misses": _MISSES,
    }


def clear_intern_pool() -> None:
    """Drop every pooled vector and string except the canonical ZERO
    (test/bench hook)."""
    global _HITS, _MISSES
    _POOL.clear()
    _STR_POOL.clear()
    _HITS = 0
    _MISSES = 0
    if "ZERO" in globals():
        _POOL[()] = ZERO


def _from_entries(entries: _EntriesTuple) -> "VersionVector":
    """Build (or fetch) a vector from an already-canonical entries tuple."""
    global _HITS, _MISSES
    if _INTERN_ENABLED:
        pooled = _POOL.get(entries)
        if pooled is not None:
            _HITS += 1
            return pooled
        _MISSES += 1
    inst = object.__new__(VersionVector)
    inst._entries = entries
    inst._stamp = None
    if _INTERN_ENABLED and len(_POOL) < _INTERN_MAX:
        _POOL[entries] = inst
    return inst


def _rebuild_vv(entries: _EntriesTuple) -> "VersionVector":
    """Pickle/copy reconstructor — routes through the intern pool."""
    return _from_entries(tuple(entries))


class VersionVector:
    """An immutable mapping from datacenter id to update counter.

    Missing entries are implicitly zero, so vectors from deployments
    with different DC sets compare correctly.
    """

    __slots__ = ("_entries", "_stamp")

    _entries: _EntriesTuple

    def __new__(cls, entries: Mapping[str, int] = ()):
        cleaned = {dc: n for dc, n in dict(entries).items() if n != 0}
        for dc, n in cleaned.items():
            if n < 0:
                raise ValueError(f"negative counter for {dc!r}: {n}")
        canonical = tuple(sorted(cleaned.items()))
        if cls is VersionVector:
            return _from_entries(canonical)
        inst = object.__new__(cls)
        inst._entries = canonical
        inst._stamp = None
        return inst

    def __reduce__(self):
        # Without this, unpickling a slotted interned class would call
        # ``cls.__new__(cls)`` — returning the shared ZERO — and then
        # write ``_entries`` onto it, corrupting the pooled instance
        # for every other holder.  Rebuild through the pool instead.
        return (_rebuild_vv, (self._entries,))

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    def get(self, dc: str) -> int:
        return _get_entry(self._entries, dc)

    def entries(self) -> Dict[str, int]:
        return dict(self._entries)

    def datacenters(self) -> Tuple[str, ...]:
        return tuple(dc for dc, _ in self._entries)

    def is_zero(self) -> bool:
        return not self._entries

    def total(self) -> int:
        """Sum of all counters — the number of writes this version reflects."""
        return _total_entries(self._entries)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def increment(self, dc: str) -> "VersionVector":
        return _from_entries(_increment_entries(self._entries, dc))

    def merge(self, other: "VersionVector") -> "VersionVector":
        """Pointwise maximum — the least upper bound under causality.

        When one operand already dominates the other, the dominating
        vector *is* the least upper bound, so it is returned as-is —
        no dict build, no new object. Merges against ``ZERO`` and
        self-merges (both ubiquitous in stability bookkeeping) take
        this path. Safe for ``__eq__``/``__hash__`` users: the result
        compares equal to a freshly-built merge; only identity differs.
        """
        # merge_entries returns an *operand tuple* when it already is the
        # least upper bound; map tuple identity back to vector identity.
        merged = _merge_entries(self._entries, other._entries)
        if merged is self._entries:
            return self
        if merged is other._entries:
            return other
        return _from_entries(merged)

    @staticmethod
    def join(vectors: Iterable["VersionVector"]) -> "VersionVector":
        """Least upper bound of many vectors.

        Sized 0- and 1-element inputs allocate nothing: the empty join
        is the canonical ``ZERO`` and a singleton join *is* its operand
        (``merge`` already returns operands verbatim, so this matches
        the loop result bit-for-bit — only the iteration is skipped).
        """
        if isinstance(vectors, (tuple, list)):
            if not vectors:
                return ZERO
            if len(vectors) == 1:
                return vectors[0]
        out = ZERO
        for vv in vectors:
            out = out.merge(vv)
        return out

    # ------------------------------------------------------------------
    # causality order
    # ------------------------------------------------------------------
    def dominates(self, other: "VersionVector") -> bool:
        """True iff ``self`` ≥ ``other`` pointwise (reflexive)."""
        return _dominates_entries(self._entries, other._entries)

    def happens_before(self, other: "VersionVector") -> bool:
        """Strict causal precedence: ``self`` < ``other``."""
        return other.dominates(self) and self._entries != other._entries

    def concurrent_with(self, other: "VersionVector") -> bool:
        return not self.dominates(other) and not other.dominates(self)

    def total_order_key(self) -> Tuple[int, Tuple[Tuple[str, int], ...]]:
        """Key for a deterministic total order extending causality.

        If ``a`` happens-before ``b`` then ``a.total() < b.total()``, so
        sorting by ``(total, entries)`` never inverts a causal pair; the
        lexicographic entry tuple breaks ties among concurrent vectors
        identically at every replica — this is the LWW arbitration rule.

        Interned vectors memoize the key: every replica storing a record
        of the same version then pins the *same* stamp tuple instead of
        one per record. Unpooled vectors (interning off, or pool
        overflow) recompute it, matching the pre-interning layout.
        """
        cached = self._stamp
        if cached is not None:
            return cached
        key = (self.total(), self._entries)
        if _INTERN_ENABLED:
            self._stamp = key
        return key

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        return isinstance(other, VersionVector) and self._entries == other._entries

    def __hash__(self) -> int:
        return hash(self._entries)

    def __lt__(self, other: "VersionVector") -> bool:
        """Total order used for LWW arbitration (extends causality)."""
        return self.total_order_key() < other.total_order_key()

    def __le__(self, other: "VersionVector") -> bool:
        return self == other or self < other

    def size_bytes(self) -> int:
        """Wire size: one (dc-id, counter) pair per non-zero entry."""
        return _entries_size_bytes(self._entries)

    def __repr__(self) -> str:
        inner = ",".join(f"{dc}:{n}" for dc, n in self._entries)
        return f"VV({inner})"


#: The empty vector — causally before everything.
ZERO = VersionVector()
