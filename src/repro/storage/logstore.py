"""Log-structured durable storage (FAWN-KV style).

The system the paper builds on, FAWN-KV, keeps its datastore as an
append-only log on flash with an in-memory index. This module
reproduces that shape: every applied write is appended to a
:class:`AppendLog` (the simulated durable medium), the
:class:`DurableStore` answers reads from memory, and after a crash that
wipes memory the store is rebuilt by replaying the log. A size-triggered
**compaction** rewrites the log down to the live records, bounding its
growth the way FAWN-KV's log cleaning does.

Durability here models *process* crashes (memory lost, disk kept) —
fail-stop with recovery. Chain repair still covers whatever the node
missed while it was down.
"""

from __future__ import annotations

from typing import Any, List, Optional, Tuple

from repro.storage.merge import ConflictResolver
from repro.storage.store import VersionedStore
from repro.storage.version import VersionVector

__all__ = ["LogEntry", "AppendLog", "DurableStore"]


class LogEntry:
    """One durable record of an applied write (tombstones included).

    Slotted hand-rolled class (py3.9-safe): durable runs append one per
    applied write, so the dataclass ``__dict__`` was the dominant cost
    of the simulated log.
    """

    __slots__ = ("key", "value", "version", "stamp")

    def __init__(self, key: str, value: Any, version: VersionVector, stamp: Tuple) -> None:
        self.key = key
        self.value = value
        self.version = version
        self.stamp = stamp

    def size_bytes(self) -> int:
        from repro.net.message import estimate_size

        return estimate_size(self.key) + estimate_size(self.value) + self.version.size_bytes()

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, LogEntry):
            return NotImplemented
        return (
            self.key == other.key
            and self.value == other.value
            and self.version == other.version
            and self.stamp == other.stamp
        )

    def __hash__(self) -> int:
        return hash((self.key, self.version, self.stamp))

    def __repr__(self) -> str:
        return (
            f"LogEntry(key={self.key!r}, value={self.value!r}, "
            f"version={self.version!r}, stamp={self.stamp!r})"
        )


class AppendLog:
    """The simulated durable medium: append-only, survives crashes."""

    __slots__ = ("_entries", "appends", "bytes_written")

    def __init__(self) -> None:
        self._entries: List[LogEntry] = []
        self.appends = 0
        self.bytes_written = 0

    def append(self, entry: LogEntry) -> None:
        self._entries.append(entry)
        self.appends += 1
        self.bytes_written += entry.size_bytes()

    def entries(self) -> List[LogEntry]:
        return list(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def rewrite(self, entries: List[LogEntry]) -> None:
        """Atomically replace the log contents (compaction output)."""
        self._entries = list(entries)

    def wipe(self) -> None:
        """Destroy the medium itself — models disk loss, not crash."""
        self._entries = []


class DurableStore(VersionedStore):  # repro: lint-ok(slots) — base keeps __dict__ for the invariant monitor
    """A versioned store whose applied writes are logged for recovery.

    - ``apply``/``delete`` append to the log *only when the write took
      effect* (dominated duplicates cost nothing, as in FAWN-KV where
      the index filters them before the log).
    - ``clear()`` models a crash: memory is lost, the log is not.
    - ``recover_from_log()`` rebuilds memory by replay; convergent apply
      makes replay order-insensitive and idempotent.
    - ``maybe_compact()`` rewrites the log to live records when it has
      grown past ``compact_ratio`` times the live set.
    """

    def __init__(
        self,
        resolver: Optional[ConflictResolver] = None,
        log: Optional[AppendLog] = None,
        compact_ratio: float = 4.0,
        min_compact_entries: int = 64,
    ):
        super().__init__(resolver)
        if compact_ratio < 1.0:
            raise ValueError(f"compact_ratio must be >= 1, got {compact_ratio}")
        self.log = log if log is not None else AppendLog()
        self.compact_ratio = compact_ratio
        self.min_compact_entries = min_compact_entries
        self.compactions = 0
        self.recoveries = 0

    # ------------------------------------------------------------------
    # logged writes
    # ------------------------------------------------------------------
    def apply(self, key, value, version, now=0.0, stamp=None):
        result = super().apply(key, value, version, now, stamp)
        if result.applied:
            record = result.record
            self.log.append(LogEntry(key, value, version, record.stamp))
        return result

    # ------------------------------------------------------------------
    # crash & recovery
    # ------------------------------------------------------------------
    def recover_from_log(self) -> int:
        """Rebuild in-memory state by replaying the log; returns the
        number of entries replayed."""
        entries = self.log.entries()
        replayed = 0
        for entry in entries:
            # Replay through the convergent apply (NOT the logged apply,
            # which would duplicate the log) — idempotent by design.
            VersionedStore.apply(self, entry.key, entry.value, entry.version, 0.0, entry.stamp)
            replayed += 1
        self.recoveries += 1
        return replayed

    # ------------------------------------------------------------------
    # compaction
    # ------------------------------------------------------------------
    def live_entries(self) -> List[LogEntry]:
        """One entry per current record — the compacted image."""
        return [
            LogEntry(rec.key, rec.value, rec.version, rec.stamp)
            for rec in sorted(self.all_records(), key=lambda r: r.key)
        ]

    def should_compact(self) -> bool:
        live = max(len(self.all_records()), 1)
        return (
            len(self.log) >= self.min_compact_entries
            and len(self.log) > self.compact_ratio * live
        )

    def compact(self) -> int:
        """Rewrite the log to the live image; returns entries reclaimed."""
        before = len(self.log)
        self.log.rewrite(self.live_entries())
        self.compactions += 1
        return before - len(self.log)

    def maybe_compact(self) -> int:
        """Compact if the growth policy says so; returns entries reclaimed."""
        if self.should_compact():
            return self.compact()
        return 0
