"""Versioned storage substrate: version vectors, convergent stores, resolvers."""

from repro.storage.logstore import AppendLog, DurableStore, LogEntry
from repro.storage.merge import ConflictResolver, LWWResolver, MergingResolver, Stamp, stamp_of
from repro.storage.store import TOMBSTONE, ApplyResult, Record, Tombstone, VersionedStore
from repro.storage.version import ZERO, VersionVector

__all__ = [
    "VersionVector",
    "ZERO",
    "VersionedStore",
    "DurableStore",
    "AppendLog",
    "LogEntry",
    "Record",
    "ApplyResult",
    "TOMBSTONE",
    "Tombstone",
    "ConflictResolver",
    "Stamp",
    "stamp_of",
    "LWWResolver",
    "MergingResolver",
]
