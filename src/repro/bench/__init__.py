"""Benchmark harness: canonical experiment configs and orchestration."""

from repro.bench.configs import FULL, GEO_SITES, QUICK, SINGLE_DC_SITES, BenchScale
from repro.bench.runner import (
    consistency_table,
    latency_run,
    run_ycsb,
    throughput_sweep,
)

__all__ = [
    "BenchScale",
    "QUICK",
    "FULL",
    "SINGLE_DC_SITES",
    "GEO_SITES",
    "run_ycsb",
    "throughput_sweep",
    "latency_run",
    "consistency_table",
]
