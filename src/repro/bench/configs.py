"""Canonical experiment configurations (E1–E10).

DESIGN.md §3 maps each experiment to a benchmark; this module is the
single source of the deployment sizes, workloads, and sweep parameters
those benchmarks use, at two scales:

- ``QUICK`` — minutes of wall time for the whole suite; the default for
  ``pytest benchmarks/``.
- ``FULL`` — closer to the paper's operating points; run selectively.

Both scales exercise identical code paths; only durations, client
counts, and keyspace sizes differ.
"""

from __future__ import annotations

import dataclasses
from typing import Tuple

__all__ = ["BenchScale", "QUICK", "FULL", "SINGLE_DC_SITES", "GEO_SITES"]

SINGLE_DC_SITES: Tuple[str, ...] = ("dc0",)
GEO_SITES: Tuple[str, ...] = ("dc0", "dc1")


@dataclasses.dataclass(frozen=True)
class BenchScale:
    """Scaling knobs shared by the E1–E10 benchmarks."""

    name: str
    servers_per_site: int
    chain_length: int
    ack_k: int
    record_count: int
    value_size: int
    duration: float
    warmup: float
    client_counts: Tuple[int, ...]
    latency_clients: int
    scalability_servers: Tuple[int, ...]
    probe_pairs: int
    probe_rounds: int
    seed: int = 42


QUICK = BenchScale(
    name="quick",
    servers_per_site=6,
    chain_length=3,
    ack_k=2,
    record_count=100,
    value_size=64,
    duration=1.0,
    warmup=0.2,
    client_counts=(4, 8, 16, 32),
    latency_clients=16,
    scalability_servers=(3, 6, 12),
    probe_pairs=10,
    probe_rounds=15,
)

FULL = BenchScale(
    name="full",
    servers_per_site=6,
    chain_length=3,
    ack_k=2,
    record_count=1000,
    value_size=128,
    duration=5.0,
    warmup=1.0,
    client_counts=(8, 16, 32, 64, 128),
    latency_clients=32,
    scalability_servers=(3, 6, 12, 24),
    probe_pairs=20,
    probe_rounds=25,
)
