"""Experiment orchestration for the E1–E10 benchmarks.

Thin composition layer: build a deployment from the protocol registry,
drive it with a YCSB workload (or the causality probe), and return the
rows the paper's corresponding figure/table plots. Each benchmark file
under ``benchmarks/`` calls one of these functions and asserts the
figure's *shape* (who wins, by roughly what factor).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.baselines.registry import build_store
from repro.bench.configs import BenchScale
from repro.checker.causal import check_causal
from repro.checker.sessions import check_session_guarantees
from repro.workload.driver import RunResult, WorkloadRunner
from repro.workload.probes import ProbeConfig, run_causality_probe
from repro.workload.ycsb import workload

__all__ = [
    "run_ycsb",
    "throughput_sweep",
    "latency_run",
    "consistency_table",
]


def run_ycsb(
    protocol: str,
    workload_name: str,
    n_clients: int,
    scale: BenchScale,
    sites: Tuple[str, ...] = ("dc0",),
    servers_per_site: Optional[int] = None,
    ack_k: Optional[int] = None,
    record_history: bool = False,
    overrides: Optional[Dict[str, object]] = None,
    distribution: Optional[str] = None,
) -> RunResult:
    """One (protocol, workload, client count) point."""
    store = build_store(
        protocol,
        sites=sites,
        servers_per_site=servers_per_site or scale.servers_per_site,
        chain_length=scale.chain_length,
        ack_k=ack_k if ack_k is not None else scale.ack_k,
        seed=scale.seed,
        overrides=overrides,
    )
    changes: Dict[str, object] = {
        "record_count": scale.record_count,
        "value_size": scale.value_size,
    }
    if distribution is not None:
        changes["distribution"] = distribution
    spec = workload(workload_name, **changes)
    runner = WorkloadRunner(
        store,
        spec,
        n_clients=n_clients,
        duration=scale.duration,
        warmup=scale.warmup,
        record_history=record_history,
    )
    return runner.run()


def throughput_sweep(
    protocols: Sequence[str],
    workload_name: str,
    scale: BenchScale,
    sites: Tuple[str, ...] = ("dc0",),
    client_counts: Optional[Sequence[int]] = None,
) -> List[Dict[str, object]]:
    """The paper's throughput-vs-clients figures: one row per point."""
    rows = []
    for protocol in protocols:
        for n_clients in client_counts or scale.client_counts:
            result = run_ycsb(protocol, workload_name, n_clients, scale, sites=sites)
            rows.append(result.summary_row())
    return rows


def latency_run(
    protocols: Sequence[str],
    workload_name: str,
    scale: BenchScale,
    sites: Tuple[str, ...] = ("dc0",),
) -> Dict[str, RunResult]:
    """Steady-state run per protocol for latency-distribution figures."""
    return {
        protocol: run_ycsb(protocol, workload_name, scale.latency_clients, scale, sites=sites)
        for protocol in protocols
    }


def consistency_table(
    protocols: Sequence[str],
    scale: BenchScale,
    sites: Tuple[str, ...] = ("dc0", "dc1"),
) -> List[Dict[str, object]]:
    """The E10 anomaly table: violations per protocol under the probe.

    The quorum deployment deliberately uses non-overlapping quorums
    (R=W=1) so that its session anomalies are visible, matching the
    eventual-flavoured configurations the paper argues against.
    """
    rows = []
    for protocol in protocols:
        store = build_store(
            protocol,
            sites=sites,
            servers_per_site=scale.servers_per_site,
            chain_length=scale.chain_length,
            ack_k=scale.ack_k,
            seed=scale.seed,
            write_quorum=1,
            read_quorum=1,
        )
        history = run_causality_probe(
            store,
            ProbeConfig(n_pairs=scale.probe_pairs, rounds=scale.probe_rounds),
        )
        causal = check_causal(history)
        sessions = check_session_guarantees(history)
        rows.append(
            {
                "protocol": protocol,
                "operations": len(history),
                "causal": len(causal),
                "read_your_writes": len(sessions["read-your-writes"]),
                "monotonic_reads": len(sessions["monotonic-reads"]),
                "monotonic_writes": len(sessions["monotonic-writes"]),
                "writes_follow_reads": len(sessions["writes-follow-reads"]),
            }
        )
    return rows
