"""Experiment orchestration for the E1–E10 benchmarks.

Thin composition layer: build a deployment from the protocol registry,
drive it with a YCSB workload (or the causality probe), and return the
rows the paper's corresponding figure/table plots. Each benchmark file
under ``benchmarks/`` calls one of these functions and asserts the
figure's *shape* (who wins, by roughly what factor).

Every ``(protocol, workload, n_clients)`` point is an independent,
fully-deterministic simulation, so the sweeps also offer a
``parallel=True`` mode that fans points out across cores with a
:class:`~concurrent.futures.ProcessPoolExecutor`. Results are
row-for-row identical to serial mode (same seeds ⇒ same rows); if
worker processes cannot be spawned (restricted sandboxes), the sweep
silently falls back to serial execution.
"""

from __future__ import annotations

import os
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.baselines.registry import build_store
from repro.bench.configs import BenchScale
from repro.checker.causal import check_causal
from repro.checker.sessions import check_session_guarantees
from repro.workload.driver import RunResult, WorkloadRunner
from repro.workload.probes import ProbeConfig, run_causality_probe
from repro.workload.ycsb import workload

__all__ = [
    "run_ycsb",
    "throughput_sweep",
    "latency_run",
    "consistency_table",
]


def _map_points(
    fn: Callable[[Tuple], Any], points: Sequence[Tuple], max_workers: Optional[int]
) -> Optional[List[Any]]:
    """Run ``fn`` over ``points`` in worker processes, preserving order.

    Returns None when a process pool cannot be created (e.g. sandboxed
    environments); callers then fall back to the serial path.
    """
    workers = max_workers or min(len(points), os.cpu_count() or 1)
    try:
        from concurrent.futures import ProcessPoolExecutor

        with ProcessPoolExecutor(max_workers=workers) as executor:
            return list(executor.map(fn, points))
    except (OSError, PermissionError, ImportError):
        return None


def _run_points(
    fn: Callable[[Tuple], Any],
    points: Sequence[Tuple],
    parallel: bool,
    max_workers: Optional[int],
) -> List[Any]:
    """Evaluate every point, in order — the one result-assembly path.

    ``parallel=True`` tries the process pool first (honouring the
    caller's ``max_workers``, plumbed down from the CLI); pool failure
    or a single point falls back to the serial loop. Rows are identical
    either way, so callers never branch on the mode again.
    """
    if parallel and len(points) > 1:
        rows = _map_points(fn, points, max_workers)
        if rows is not None:
            return rows
    return [fn(point) for point in points]


def run_ycsb(
    protocol: str,
    workload_name: str,
    n_clients: int,
    scale: BenchScale,
    sites: Tuple[str, ...] = ("dc0",),
    servers_per_site: Optional[int] = None,
    ack_k: Optional[int] = None,
    record_history: bool = False,
    overrides: Optional[Dict[str, object]] = None,
    distribution: Optional[str] = None,
) -> RunResult:
    """One (protocol, workload, client count) point."""
    store = build_store(
        protocol,
        sites=sites,
        servers_per_site=servers_per_site or scale.servers_per_site,
        chain_length=scale.chain_length,
        ack_k=ack_k if ack_k is not None else scale.ack_k,
        seed=scale.seed,
        overrides=overrides,
    )
    changes: Dict[str, object] = {
        "record_count": scale.record_count,
        "value_size": scale.value_size,
    }
    if distribution is not None:
        changes["distribution"] = distribution
    spec = workload(workload_name, **changes)
    runner = WorkloadRunner(
        store,
        spec,
        n_clients=n_clients,
        duration=scale.duration,
        warmup=scale.warmup,
        record_history=record_history,
    )
    return runner.run()


def _sweep_point(point: Tuple) -> Dict[str, object]:
    """One throughput-sweep point → its summary row (picklable)."""
    protocol, workload_name, n_clients, scale, sites = point
    return run_ycsb(protocol, workload_name, n_clients, scale, sites=sites).summary_row()


def throughput_sweep(
    protocols: Sequence[str],
    workload_name: str,
    scale: BenchScale,
    sites: Tuple[str, ...] = ("dc0",),
    client_counts: Optional[Sequence[int]] = None,
    parallel: bool = False,
    max_workers: Optional[int] = None,
) -> List[Dict[str, object]]:
    """The paper's throughput-vs-clients figures: one row per point.

    With ``parallel=True`` the points run in worker processes; each
    point is an independent deterministic sim, so the rows are identical
    to serial mode and arrive in the same order.
    """
    points = [
        (protocol, workload_name, n_clients, scale, tuple(sites))
        for protocol in protocols
        for n_clients in (client_counts or scale.client_counts)
    ]
    return _run_points(_sweep_point, points, parallel, max_workers)


def _latency_point(point: Tuple) -> Tuple[str, RunResult]:
    """One latency-run protocol → (protocol, RunResult) with the
    unpicklable live deployment stripped for the trip back."""
    protocol, workload_name, scale, sites = point
    result = run_ycsb(protocol, workload_name, scale.latency_clients, scale, sites=sites)
    result.store = None  # live actors hold lambdas; drop before pickling
    return protocol, result


def latency_run(
    protocols: Sequence[str],
    workload_name: str,
    scale: BenchScale,
    sites: Tuple[str, ...] = ("dc0",),
    parallel: bool = False,
    max_workers: Optional[int] = None,
) -> Dict[str, RunResult]:
    """Steady-state run per protocol for latency-distribution figures.

    In ``parallel=True`` mode the returned results carry
    ``result.store = None`` (the live deployment cannot cross the
    process boundary); latency/throughput/history fields are identical
    to a serial run.
    """
    points = [(protocol, workload_name, scale, tuple(sites)) for protocol in protocols]
    return dict(_run_points(_latency_point, points, parallel, max_workers))


def _consistency_point(point: Tuple) -> Dict[str, object]:
    """One consistency-table protocol → its anomaly row (picklable)."""
    protocol, scale, sites = point
    store = build_store(
        protocol,
        sites=sites,
        servers_per_site=scale.servers_per_site,
        chain_length=scale.chain_length,
        ack_k=scale.ack_k,
        seed=scale.seed,
        write_quorum=1,
        read_quorum=1,
    )
    history = run_causality_probe(
        store,
        ProbeConfig(n_pairs=scale.probe_pairs, rounds=scale.probe_rounds),
    )
    causal = check_causal(history)
    sessions = check_session_guarantees(history)
    return {
        "protocol": protocol,
        "operations": len(history),
        "causal": len(causal),
        "read_your_writes": len(sessions["read-your-writes"]),
        "monotonic_reads": len(sessions["monotonic-reads"]),
        "monotonic_writes": len(sessions["monotonic-writes"]),
        "writes_follow_reads": len(sessions["writes-follow-reads"]),
    }


def consistency_table(
    protocols: Sequence[str],
    scale: BenchScale,
    sites: Tuple[str, ...] = ("dc0", "dc1"),
    parallel: bool = False,
    max_workers: Optional[int] = None,
) -> List[Dict[str, object]]:
    """The E10 anomaly table: violations per protocol under the probe.

    The quorum deployment deliberately uses non-overlapping quorums
    (R=W=1) so that its session anomalies are visible, matching the
    eventual-flavoured configurations the paper argues against.
    """
    points = [(protocol, scale, tuple(sites)) for protocol in protocols]
    return _run_points(_consistency_point, points, parallel, max_workers)
