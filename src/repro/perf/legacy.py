"""Frozen copy of the pre-optimization event kernel (the PR-1 baseline).

This is the seed repository's ``repro.sim.kernel.Simulator`` verbatim
(modulo renames): a heap of :class:`LegacyScheduledEvent` objects whose
ordering dispatches to ``__lt__`` on every sift, an O(n)
``pending_events`` scan, and no cancelled-entry compaction.

It exists solely so the perf harness can measure the optimized kernel
against its true predecessor *on the same machine in the same process*,
which makes the speedup number in ``BENCH_*.json`` portable. It must
not be used by any protocol code.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional

from repro.errors import SimulationError

__all__ = ["LegacySimulator", "LegacyScheduledEvent"]


class LegacyScheduledEvent:
    """Pre-PR-1 event handle: heap entries compare via ``__lt__``."""

    __slots__ = ("time", "seq", "callback", "args", "cancelled")

    def __init__(self, time: float, seq: int, callback: Callable[..., Any], args: tuple):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        self.cancelled = True

    def __lt__(self, other: "LegacyScheduledEvent") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)


class LegacySimulator:
    """The seed discrete-event simulator, kept as a benchmark reference."""

    def __init__(self) -> None:
        self._now: float = 0.0
        self._seq: int = 0
        self._heap: List[LegacyScheduledEvent] = []
        self._running = False
        self._events_processed: int = 0

    @property
    def now(self) -> float:
        return self._now

    @property
    def events_processed(self) -> int:
        return self._events_processed

    def pending_events(self) -> int:
        return sum(1 for ev in self._heap if not ev.cancelled)

    def schedule(self, delay: float, callback: Callable[..., Any], *args: Any) -> LegacyScheduledEvent:
        if delay < 0:
            raise SimulationError(f"cannot schedule an event in the past (delay={delay})")
        return self.schedule_at(self._now + delay, callback, *args)

    def schedule_at(self, time: float, callback: Callable[..., Any], *args: Any) -> LegacyScheduledEvent:
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time} which is before now={self._now}"
            )
        ev = LegacyScheduledEvent(time, self._seq, callback, args)
        self._seq += 1
        heapq.heappush(self._heap, ev)
        return ev

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        if self._running:
            raise SimulationError("simulator is not reentrant: run() called from a callback")
        self._running = True
        executed = 0
        try:
            while self._heap:
                ev = self._heap[0]
                if ev.cancelled:
                    heapq.heappop(self._heap)
                    continue
                if until is not None and ev.time > until:
                    break
                heapq.heappop(self._heap)
                self._now = ev.time
                self._events_processed += 1
                ev.callback(*ev.args)
                executed += 1
                if max_events is not None and executed >= max_events:
                    raise SimulationError(
                        f"simulation exceeded max_events={max_events}; "
                        "likely a livelock (self-rescheduling event loop)"
                    )
            if until is not None and until > self._now:
                self._now = until
        finally:
            self._running = False
        return self._now
