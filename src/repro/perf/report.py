"""Benchmark report assembly: collect microbenchmarks into one JSON blob.

The report written to ``BENCH_*.json`` has a stable shape so successive
PRs can be compared file-to-file:

- ``meta`` — python version, platform, knobs used;
- ``event_kernel`` — baseline (seed kernel) vs optimized events/sec and
  the speedup between them, measured in-process on the same machine;
- ``network_send`` / ``message_sizing`` / ``end_to_end`` — the other
  hot-path rates;
- ``parallel_sweep`` (optional) — serial vs parallel wall time for an
  E1-style sweep plus a row-for-row equality verdict.
"""

from __future__ import annotations

import json
import platform
import sys
import time
from typing import Any, Dict, Optional

from repro.perf.micro import (
    bench_end_to_end,
    bench_event_kernel,
    bench_message_sizing,
    bench_network_send,
    bench_version_ops,
)

__all__ = ["collect_report", "write_report", "summary_lines"]


def collect_report(
    n_events: int = 200_000,
    repeats: int = 3,
    include_end_to_end: bool = True,
    include_sweep: bool = False,
    include_protocol: bool = False,
    sweep_max_workers: Optional[int] = None,
) -> Dict[str, Any]:
    """Run the microbenchmark suite and return the report dict."""
    import os

    from repro.sim.backend import active_kernel

    report: Dict[str, Any] = {
        "meta": {
            "benchmark": "PR1 hot-path overhaul",
            "python": sys.version.split()[0],
            "platform": platform.platform(),
            "cpu_count": os.cpu_count(),
            "kernel_backend": active_kernel(),
            "n_events": n_events,
            "repeats": repeats,
            "collected_unix_time": time.time(),
        },
        "event_kernel": bench_event_kernel(n_events=n_events, repeats=repeats),
        "network_send": bench_network_send(
            n_messages=max(1000, n_events // 4), repeats=repeats
        ),
        "message_sizing": bench_message_sizing(
            n_sizings=max(1000, n_events // 2), repeats=repeats
        ),
        "version_ops": bench_version_ops(
            n_ops=max(1000, n_events // 2), repeats=repeats
        ),
    }
    if include_end_to_end:
        report["end_to_end"] = bench_end_to_end()
    if include_sweep:
        report["parallel_sweep"] = _bench_parallel_sweep(max_workers=sweep_max_workers)
    if include_protocol:
        from repro.perf.protocol import bench_protocol_plane

        report["protocol_plane"] = bench_protocol_plane()
    return report


def _bench_parallel_sweep(max_workers: Optional[int] = None) -> Dict[str, Any]:
    """Serial vs parallel wall time for an E1-style sweep (tiny scale)."""
    import dataclasses

    from repro.bench import QUICK, throughput_sweep

    scale = dataclasses.replace(
        QUICK, record_count=40, duration=0.4, warmup=0.1, client_counts=(2, 4)
    )
    protocols = ("chainreaction", "chain", "eventual", "quorum")
    t0 = time.perf_counter()
    serial_rows = throughput_sweep(protocols, "B", scale)
    serial_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    parallel_rows = throughput_sweep(
        protocols, "B", scale, parallel=True, max_workers=max_workers
    )
    parallel_s = time.perf_counter() - t0
    import os

    return {
        "points": len(serial_rows),
        "cpu_count": os.cpu_count(),
        "max_workers": max_workers,
        "serial_wall_s": serial_s,
        "parallel_wall_s": parallel_s,
        "speedup": serial_s / parallel_s if parallel_s else 0.0,
        "rows_identical": serial_rows == parallel_rows,
    }


def write_report(report: Dict[str, Any], path: str) -> None:
    with open(path, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")


def summary_lines(report: Dict[str, Any]) -> list:
    """(metric, value) rows for the CLI table."""
    kernel = report["event_kernel"]
    rows = [
        ("kernel backend", report.get("meta", {}).get("kernel_backend", "pure")),
        ("kernel baseline (seed) events/s", f"{kernel['baseline_events_per_sec']:,.0f}"),
        ("kernel optimized events/s", f"{kernel['optimized_events_per_sec']:,.0f}"),
        ("kernel speedup", f"{kernel['speedup']:.2f}x"),
        ("network send msgs/s", f"{report['network_send']['messages_per_sec']:,.0f}"),
        ("sizing fresh/s", f"{report['message_sizing']['fresh_sizings_per_sec']:,.0f}"),
        ("sizing memoized/s", f"{report['message_sizing']['memoized_sizings_per_sec']:,.0f}"),
    ]
    vops = report.get("version_ops")
    if vops:
        rows.append(("vv join single-elem/s", f"{vops['join_single_per_sec']:,.0f}"))
        rows.append(("vv join 8-way/s", f"{vops['join_many_per_sec']:,.0f}"))
        rows.append(
            ("vv merge dominating/s", f"{vops['merge_dominating_per_sec']:,.0f}")
        )
    e2e: Optional[Dict[str, Any]] = report.get("end_to_end")
    if e2e:
        rows.append(("end-to-end events/s", f"{e2e['events_per_sec']:,.0f}"))
        rows.append(("end-to-end sim ops/wall-s", f"{e2e['sim_ops_per_wall_sec']:,.0f}"))
    sweep = report.get("parallel_sweep")
    if sweep:
        rows.append(
            (
                "sweep serial / parallel (s)",
                f"{sweep['serial_wall_s']:.2f} / {sweep['parallel_wall_s']:.2f}",
            )
        )
        rows.append(("sweep rows identical", str(sweep["rows_identical"])))
    proto = report.get("protocol_plane")
    if proto:
        rows.append(
            ("protocol ops/wall-s speedup", f"{proto['ops_per_wall_sec_speedup']:.2f}x")
        )
        rows.append(
            (
                "stability msgs unbatched / batched",
                f"{proto['unbatched']['stability_messages']:,} / "
                f"{proto['batched']['stability_messages']:,} "
                f"({proto['stability_message_reduction']:.1f}x)",
            )
        )
        rows.append(
            (
                "global-stability msg reduction",
                f"{proto['global_stability_message_reduction']:.1f}x",
            )
        )
        rows.append(
            (
                "stable-map entries unbatched / batched",
                f"{proto['unbatched']['metadata']['stable_map_entries']:,} / "
                f"{proto['batched']['metadata']['stable_map_entries']:,}",
            )
        )
    return rows
