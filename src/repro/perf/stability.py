"""Stabilization-plane benchmark: notices (± batching) vs clock.

The same deterministic write-heavy geo workload runs once per plane and
the report A/Bs the metadata cost of establishing stability:

- **stability traffic** — messages and bytes sent *only* to establish
  stability, under the shared definition in
  :func:`repro.metrics.protocol.stability_plane_stats` (per-write notice
  cascades + global notices + acks on the notices plane; periodic floor
  reports, ticks, and vectors on the clock plane);
- **visibility** — the remote-update visibility latency distribution and
  the global-stabilization latency, which the clock plane trades against
  its byte savings (updates wait for the next vector instead of a
  per-write notice);
- **footprint** — live stable-map/HLC-map entries at the end of the run;
  the clock plane's stamp map must stay bounded by in-flight writes, not
  grow with the keyspace or the op count.

Virtual behaviour of each arm is seed-deterministic; only wall rates
vary by machine (best-of-``repeats`` filters scheduler noise). The
workload is write-heavy for the same reason the PR 4 protocol benchmark
is: stability traffic scales with writes, and a read-heavy mix masks it.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional, Tuple

__all__ = ["PLANES", "bench_stability_plane"]

#: benchmark arms: plane name → config overrides
PLANES: Tuple[Tuple[str, Optional[Dict[str, object]]], ...] = (
    ("notices", None),
    (
        "notices+batch",
        {"protocol_batching": True, "metadata_gc": True, "batch_flush_interval": 0.025},
    ),
    ("clock", {"stability": "clock"}),
)


def _percentile(samples: List[float], pct: float) -> float:
    if not samples:
        return 0.0
    ordered = sorted(samples)
    idx = min(len(ordered) - 1, int(pct / 100.0 * len(ordered)))
    return ordered[idx]


def _run_arm(
    plane: str,
    overrides: Optional[Dict[str, object]],
    duration: float,
    n_clients: int,
    record_count: int,
    seed: int,
) -> Dict[str, Any]:
    from repro.baselines.registry import build_store
    from repro.workload.driver import WorkloadRunner
    from repro.workload.ycsb import WorkloadSpec

    store = build_store(
        "chainreaction",
        sites=("dc0", "dc1"),
        servers_per_site=4,
        chain_length=3,
        ack_k=2,
        seed=seed,
        overrides=overrides,
    )
    spec = WorkloadSpec(
        "pr8-write-heavy",
        read_proportion=0.1,
        update_proportion=0.9,
        record_count=record_count,
        value_size=64,
    )
    runner = WorkloadRunner(
        store, spec, n_clients=n_clients, duration=duration, warmup=0.1,
        record_history=False,
    )
    t0 = time.perf_counter()
    result = runner.run()
    wall = time.perf_counter() - t0
    # Let in-flight shipping and the periodic stabilization machinery
    # quiesce so end-of-run footprint gauges reflect steady state.
    store.run(until=store.sim.now + 0.5)
    stats = store.protocol_stats()
    sp = stats["stability_plane"]
    meta = stats["metadata"]
    visibility = stats.get("visibility_samples", [])
    global_lat = stats.get("global_stability_samples", [])
    return {
        "plane": plane,
        "overrides": dict(overrides or {}),
        "wall_seconds": wall,
        "events_processed": store.sim.events_processed,
        "ops_completed": result.ops_completed,
        "ops_per_wall_sec": result.ops_completed / wall if wall else 0.0,
        "messages_sent": store.network.stats.messages_sent,
        "bytes_sent": store.network.stats.bytes_sent,
        "stability_messages": sp["stability_messages"],
        "stability_bytes": sp["stability_bytes"],
        "vector_bytes_per_interval": sp["vector_bytes_per_interval"],
        "cut_lag_max_s": sp["cut_lag_max_s"],
        "stable_map_entries": meta["stable_map_entries"],
        "hlc_entries": meta["hlc_entries"],
        "hlc_skew_max_us": meta["hlc_skew_max_us"],
        "dep_table_bytes": meta["dep_table_bytes"],
        "visibility_samples": len(visibility),
        "visibility_p50_ms": _percentile(visibility, 50) * 1000,
        "visibility_p99_ms": _percentile(visibility, 99) * 1000,
        "global_stability_p50_ms": _percentile(global_lat, 50) * 1000,
        "global_stability_p99_ms": _percentile(global_lat, 99) * 1000,
    }


def bench_stability_plane(
    duration: float = 1.0,
    n_clients: int = 8,
    record_count: int = 25,
    seed: int = 1234,
    repeats: int = 3,
) -> Dict[str, Any]:
    """Three-arm plane comparison on one write-heavy geo workload.

    Each arm runs ``repeats`` times and the best wall rate is kept; all
    virtual counters are seed-deterministic across repeats. The headline
    ratios pit ``clock`` against the seed ``notices`` plane.
    """

    def best(plane: str, overrides: Optional[Dict[str, object]]) -> Dict[str, Any]:
        runs = [
            _run_arm(plane, overrides, duration, n_clients, record_count, seed)
            for _ in range(max(1, repeats))
        ]
        top = max(runs, key=lambda arm: arm["ops_per_wall_sec"])
        top["wall_runs"] = [arm["wall_seconds"] for arm in runs]
        return top

    arms = [best(plane, overrides) for plane, overrides in PLANES]
    by_plane = {arm["plane"]: arm for arm in arms}
    notices, clock = by_plane["notices"], by_plane["clock"]

    def ratio(a: float, b: float) -> float:
        return a / b if b else 0.0

    # "Bounded": the clock plane's live stamp map must not scale with
    # the op count — a small multiple of the (keyspace x replicas) the
    # deployment holds is the generous ceiling.
    stamp_ceiling = record_count * 3 * 2 * 2  # keys x chain x sites x slack
    return {
        "duration_virtual_s": duration,
        "n_clients": n_clients,
        "record_count": record_count,
        "seed": seed,
        "arms": arms,
        "ops_per_wall_sec_ratio": ratio(
            clock["ops_per_wall_sec"], notices["ops_per_wall_sec"]
        ),
        "stability_message_reduction": ratio(
            notices["stability_messages"], clock["stability_messages"]
        ),
        "stability_bytes_reduction": ratio(
            notices["stability_bytes"], clock["stability_bytes"]
        ),
        "clock_stable_map_entries": clock["stable_map_entries"] + clock["hlc_entries"],
        "clock_stable_map_bounded": (
            clock["stable_map_entries"] + clock["hlc_entries"] <= stamp_ceiling
        ),
        "visibility_p50_ms": {
            arm["plane"]: arm["visibility_p50_ms"] for arm in arms
        },
        "visibility_p99_ms": {
            arm["plane"]: arm["visibility_p99_ms"] for arm in arms
        },
    }
