"""Partial geo-replication benchmark: replication degree A/B.

The same deterministic hot-shard workload runs once per replication
degree over a three-DC topology, and the report A/Bs what partial
replication buys and what it costs:

- **replication traffic** — geo-shipping bytes per key
  (:data:`~repro.metrics.protocol.SHIPPING_MESSAGE_TYPES`); restricting
  ``RemoteUpdate`` fan-out to owner sites must cut this roughly in
  proportion to ``(degree - 1) / (sites - 1)``, plus whatever
  per-destination dependency pruning saves on top;
- **per-DC memory** — the record census of each site (replicas a DC
  holds); non-owners hold nothing, so the per-site census shrinks by
  the fraction of shards the site no longer owns;
- **remote-get latency** — the price: a client whose DC does not own a
  key pays a WAN round-trip to the primary owner's geo-proxy. The p50
  and p99 of those forwarded gets are reported honestly next to the
  local-read latencies, not blended into them.

The workload is hot-shard skewed (:class:`~repro.workload.distributions.
HotShardKeys`) with *placement-matching locality*: each site's clients
concentrate on a few shards whose primary owner is their own DC, and
the uniform 20% tail supplies the cross-shard (and hence remote)
traffic. Primary assignment is degree-independent — ``chain_for``
returns ring prefixes, so the ``r=1`` owner heads every longer owner
list — which keeps the key sequence byte-identical across arms. This
is the regime partial geo-replication targets (placement follows
access locality); a globally shared hot set would instead measure a
deployment whose placement fights its workload, where closed-loop
clients stall on WAN round-trips and every counter just reflects the
collapsed op count. Zipfian popularity would not do either: scrambling
hashes popular keys uniformly over shards, so every DC stays hot.

Virtual behaviour of each arm is seed-deterministic; only wall rates
vary by machine (best-of-``repeats`` filters scheduler noise).
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional, Tuple

__all__ = ["DEGREES", "bench_partial_replication", "hot_indexes_by_site"]

#: benchmark arms: label → replication degree (0 = full replication)
DEGREES: Tuple[Tuple[str, int], ...] = (
    ("full", 0),
    ("r=2", 2),
    ("r=1", 1),
)

_SITES = ("dc0", "dc1", "dc2")


def _percentile(samples: List[float], pct: float) -> float:
    if not samples:
        return 0.0
    ordered = sorted(samples)
    idx = min(len(ordered) - 1, int(pct / 100.0 * len(ordered)))
    return ordered[idx]


def hot_indexes_by_site(
    record_count: int,
    num_shards: int,
    hot_shards: int,
    key_prefix: str = "user",
) -> Dict[str, Tuple[int, ...]]:
    """Per-site hot sets: for each DC, the key indices of up to
    ``hot_shards`` shards whose *primary* owner is that DC.

    Both maps involved are degree-independent — ``shard_of`` is
    ``hash(key) % num_shards``, and the primary is the first ring site,
    which heads the owner list at every degree — so the same hot sets
    (and hence the same per-driver key sequences) serve every arm, and
    a site's hot shards are locally owned under any ``r >= 1``."""
    from repro.cluster.placement import shard_catalog
    from repro.storage.version import intern_str

    catalog = shard_catalog(_SITES, num_shards=num_shards, replication_degree=1)
    by_shard: Dict[int, List[int]] = {}
    for i in range(record_count):
        key = intern_str(f"{key_prefix}{i:08d}")
        by_shard.setdefault(catalog.shard_of(key), []).append(i)
    out: Dict[str, List[int]] = {site: [] for site in _SITES}
    taken: Dict[str, int] = {site: 0 for site in _SITES}
    for shard in range(num_shards):
        indices = by_shard.get(shard)
        if not indices:
            continue
        primary = catalog.owners[shard][0]
        if taken[primary] < hot_shards:
            out[primary].extend(indices)
            taken[primary] += 1
    return {site: tuple(indices) for site, indices in out.items()}


def _run_arm(
    label: str,
    degree: int,
    ops_per_client: int,
    n_clients: int,
    record_count: int,
    num_shards: int,
    hot_by_site: Dict[str, Tuple[int, ...]],
    seed: int,
) -> Dict[str, Any]:
    from repro.baselines.registry import build_store
    from repro.checker.history import GET
    from repro.errors import ReproError
    from repro.metrics.protocol import SHIPPING_MESSAGE_TYPES
    from repro.workload.driver import SessionDriver, WorkloadRunner
    from repro.workload.ycsb import WorkloadSpec

    class FixedOpsDriver(SessionDriver):
        """Closed-loop driver that stops after ``ops_per_client``
        operations instead of at a virtual deadline.  Remote operations
        are orders of magnitude slower than local ones, so fixed-time
        arms complete wildly different op counts and every per-key
        traffic ratio would mostly measure that collapse; a fixed op
        budget makes each arm execute the byte-identical request
        sequence (per-driver rng streams do not depend on the arm)."""

        def _loop(self, sim):
            budget = ops_per_client
            while budget > 0:
                budget -= 1
                op, key = self._next_request()
                t_invoke = sim.now
                try:
                    if op == GET:
                        outcome = yield self.session.get(key)
                    else:
                        outcome = yield self.session.put(key, self._payload())
                except ReproError as exc:
                    self._op_failed(op, key, exc, measured=True)
                    continue
                self._record(op, key, outcome, t_invoke, sim.now)
            return self._op_seq

    overrides: Dict[str, object] = {"num_shards": num_shards}
    if degree:
        overrides["replication_degree"] = degree
    store = build_store(
        "chainreaction",
        sites=_SITES,
        servers_per_site=3,
        chain_length=3,
        ack_k=2,
        seed=seed,
        overrides=overrides,
    )
    spec = WorkloadSpec(
        "pr10-hot-shard",
        read_proportion=0.5,
        update_proportion=0.5,
        record_count=record_count,
        value_size=64,
    )
    # Each driver skews toward its own site's primary shards; a site
    # with no primary shard that holds keys falls back to uniform.
    site_specs = {
        site: (
            spec.with_updates(
                distribution="hotshard", hot_indexes=hot, hot_fraction=0.8
            )
            if hot
            else spec.with_updates(distribution="uniform")
        )
        for site, hot in hot_by_site.items()
    }

    def localised_driver(session, spec, **kw):
        return FixedOpsDriver(session=session, spec=site_specs[session.site], **kw)

    runner = WorkloadRunner(
        store, spec, n_clients=n_clients, duration=1.0, warmup=0.0,
        record_history=False, driver_factory=localised_driver,
    )
    t0 = time.perf_counter()
    result = runner.setup()
    # Advance until every budgeted driver has finished (periodic
    # protocol processes never drain, so run in bounded windows).
    while any(not d.process.done() for d in runner.drivers):
        store.sim.run(until=store.sim.now + 0.25)
    elapsed = store.sim.now
    wall = time.perf_counter() - t0
    runner.finalize()
    result.throughput = result.ops_completed / elapsed if elapsed else 0.0
    # Quiesce in-flight shipping so traffic and census gauges are final.
    store.run(until=store.sim.now + 0.5)
    net = store.network.stats
    shipping_bytes = net.bytes_of(*SHIPPING_MESSAGE_TYPES)
    stats = store.protocol_stats()
    placement = stats["placement"]
    census = {
        site: sum(len(n.store) for n in store.nodes[site]) for site in store.sites
    }
    forward_lat = [
        s
        for sess in store._sessions
        for s in getattr(sess, "forward_latency_samples", [])
    ]
    meta = stats["metadata"]
    return {
        "arm": label,
        "replication_degree": degree or len(_SITES),
        "wall_seconds": wall,
        "virtual_seconds": elapsed,
        "events_processed": store.sim.events_processed,
        "ops_completed": result.ops_completed,
        "ops_per_wall_sec": result.ops_completed / wall if wall else 0.0,
        "ops_per_virtual_sec": result.throughput,
        "errors": result.errors,
        "messages_sent": net.messages_sent,
        "bytes_sent": net.bytes_sent,
        "cross_site_bytes": net.cross_site_bytes,
        "shipping_bytes": shipping_bytes,
        "shipping_bytes_per_key": shipping_bytes / record_count,
        "updates_shipped": stats.get("updates_shipped", 0),
        "records_per_site": census,
        "records_total": sum(census.values()),
        "forwarded_gets": meta["forwarded_gets"],
        "forwarded_puts": meta["forwarded_puts"],
        "remote_get_samples": len(forward_lat),
        "remote_get_p50_ms": _percentile(forward_lat, 50) * 1000,
        "remote_get_p99_ms": _percentile(forward_lat, 99) * 1000,
        "local_get_p50_ms": result.get_latency.percentile(50) * 1000,
        "local_get_p99_ms": result.get_latency.percentile(99) * 1000,
        "put_p50_ms": result.put_latency.percentile(50) * 1000,
        "placement": placement,
    }


def bench_partial_replication(
    ops_per_client: int = 400,
    n_clients: int = 9,
    record_count: int = 120,
    num_shards: int = 16,
    hot_shards: int = 3,
    seed: int = 1234,
    repeats: int = 3,
) -> Dict[str, Any]:
    """Replication-degree A/B on one hot-shard geo workload.

    Each arm runs ``repeats`` times and the best wall rate is kept; all
    virtual counters are seed-deterministic across repeats. The headline
    ratios pit ``r=2`` (each shard on two of three DCs) against full
    replication: shipping bytes per key must drop, the per-DC record
    census must drop, and the remote-get p50 states the latency price.
    """
    hot_by_site = hot_indexes_by_site(record_count, num_shards, hot_shards)

    def best(label: str, degree: int) -> Dict[str, Any]:
        runs = [
            _run_arm(
                label, degree, ops_per_client, n_clients, record_count,
                num_shards, hot_by_site, seed,
            )
            for _ in range(max(1, repeats))
        ]
        top = max(runs, key=lambda arm: arm["ops_per_wall_sec"])
        top["wall_runs"] = [arm["wall_seconds"] for arm in runs]
        return top

    arms = [best(label, degree) for label, degree in DEGREES]
    by_arm = {arm["arm"]: arm for arm in arms}
    full, r2 = by_arm["full"], by_arm["r=2"]

    def ratio(a: float, b: float) -> float:
        return a / b if b else 0.0

    max_census_full = max(full["records_per_site"].values())
    max_census_r2 = max(r2["records_per_site"].values())
    return {
        "ops_per_client": ops_per_client,
        "n_clients": n_clients,
        "record_count": record_count,
        "num_shards": num_shards,
        "hot_shards": hot_shards,
        "hot_keys_per_site": {
            site: len(hot) for site, hot in hot_by_site.items()
        },
        "seed": seed,
        "sites": list(_SITES),
        "arms": arms,
        # headline: bytes/key at r=2 as a fraction of full replication —
        # the perf_smoke gate pins this ≤ 0.70
        "shipping_bytes_per_key_ratio_r2": ratio(
            r2["shipping_bytes_per_key"], full["shipping_bytes_per_key"]
        ),
        "shipping_bytes_per_key_ratio_r1": ratio(
            by_arm["r=1"]["shipping_bytes_per_key"],
            full["shipping_bytes_per_key"],
        ),
        "census_reduction_r2": ratio(
            full["records_total"] - r2["records_total"], full["records_total"]
        ),
        "max_site_census_full": max_census_full,
        "max_site_census_r2": max_census_r2,
        "remote_get_p50_ms_r2": r2["remote_get_p50_ms"],
        "remote_get_p99_ms_r2": r2["remote_get_p99_ms"],
        "local_get_p50_ms_full": full["local_get_p50_ms"],
    }
