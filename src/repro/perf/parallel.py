"""Parallel scale tier: one sharded experiment vs worker count.

``perf --scale --workers N...`` runs the **same** million-key,
thousand-client experiment once per requested worker count through
:class:`repro.sim.shard.ShardedSimulator` and reports, per count:

- **wall seconds** and **ops/wall-s** — the host-side figures of merit;
- **trace digest** — sha256 over every shard's ``Network.send`` trace;
  all counts must produce the *same* digest (the engine's determinism
  contract), which the report records as ``digests_match``;
- **rounds / envelopes** — conservative-window bookkeeping, i.e. how
  often the shards synchronised and how much crossed the boundary.

Speedup is reported against the ``workers=1`` arm of the same sharded
engine (identical simulation, same pipes-free coordinator loop), so the
ratio isolates what the extra processes buy. ``host_cpus`` is recorded
alongside: on a single-core host the extra workers cannot buy anything
and the expected ratio is ~1.0x — the report states the machine it
measured rather than extrapolating.
"""

from __future__ import annotations

import os
import time
from typing import Any, Dict, Optional, Sequence

from repro.perf.scale import resolve_profile
from repro.sim.backend import active_kernel
from repro.sim.shard import ExperimentSpec, ShardedSimulator, experiment_lookahead
from repro.workload.ycsb import WorkloadSpec

__all__ = ["PARALLEL_SCALE_PROFILE", "bench_parallel_scale", "spec_from_profile"]

#: The north-star tier: 4 DCs × 4 servers (R=3, k=2), 10⁶ preloaded
#: keys, 10³ closed-loop clients. The update-lean mix keeps per-op
#: cost low enough that the tier finishes in CI minutes; the short
#: measured window is intentional — the tier exists to size *hosts*
#: (ops/wall-s), not to re-measure protocol behaviour.
PARALLEL_SCALE_PROFILE: Dict[str, Any] = {
    "protocol": "chainreaction",
    "sites": ("dc0", "dc1", "dc2", "dc3"),
    "servers_per_site": 4,
    "chain_length": 3,
    "ack_k": 2,
    "seed": 1234,
    "record_count": 1_000_000,
    "n_clients": 1000,
    "value_size": 64,
    "read_proportion": 0.70,
    "update_proportion": 0.30,
    "insert_proportion": 0.0,
    "distribution": "scrambled",
    "duration": 0.25,
    "warmup": 0.05,
    "drain": 0.25,
}


def spec_from_profile(profile: Dict[str, Any]) -> ExperimentSpec:
    """Translate a profile dict into the engine's picklable spec."""
    workload = WorkloadSpec(
        "parallel-scale",
        read_proportion=profile["read_proportion"],
        update_proportion=profile["update_proportion"],
        insert_proportion=profile["insert_proportion"],
        record_count=profile["record_count"],
        distribution=profile["distribution"],
        value_size=profile["value_size"],
    )
    return ExperimentSpec(
        workload=workload,
        protocol=profile["protocol"],
        sites=tuple(profile["sites"]),
        servers_per_site=profile["servers_per_site"],
        chain_length=profile["chain_length"],
        ack_k=profile["ack_k"],
        seed=profile["seed"],
        n_clients=profile["n_clients"],
        duration=profile["duration"],
        warmup=profile["warmup"],
        drain=profile["drain"],
        record_history=False,
        reservoir_capacity=2_000,
        # Pin whatever backend this process runs to the spec, so worker
        # processes measure the same kernel as the coordinator.
        kernel=active_kernel(),
    )


def bench_parallel_scale(
    workers_list: Sequence[int] = (1, 2, 4),
    overrides: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Run the sharded scale tier at each worker count; see module docstring.

    The first entry of ``workers_list`` is the speedup/digest baseline
    (conventionally 1). Returns the report dict written to
    ``BENCH_PR6.json``.
    """
    if not workers_list:
        raise ValueError("need at least one worker count")
    profile = resolve_profile(PARALLEL_SCALE_PROFILE, overrides)
    spec = spec_from_profile(profile)

    runs = []
    for workers in workers_list:
        engine = ShardedSimulator(spec, workers=workers)
        t0 = time.perf_counter()
        result = engine.run()
        wall = time.perf_counter() - t0
        runs.append(
            {
                "workers_requested": workers,
                "workers_used": engine.workers,
                "wall_seconds": wall,
                "ops_completed": result.ops_completed,
                "ops_per_wall_sec": result.ops_completed / wall if wall else 0.0,
                "sim_throughput_ops_s": result.throughput,
                "events_processed": result.events_processed,
                "rounds": result.rounds,
                "envelopes_exchanged": result.envelopes_exchanged,
                "messages_sent": result.stats.messages_sent,
                "errors": result.errors,
                "trace_digest": result.trace_digest,
            }
        )

    base = runs[0]
    digests = {run["trace_digest"] for run in runs}
    for run in runs:
        run["speedup_vs_first"] = (
            run["ops_per_wall_sec"] / base["ops_per_wall_sec"]
            if base["ops_per_wall_sec"]
            else 0.0
        )
    return {
        "profile": {
            k: (list(v) if isinstance(v, tuple) else v) for k, v in profile.items()
        },
        "host_cpus": os.cpu_count(),
        "sched_cpus": len(os.sched_getaffinity(0)) if hasattr(os, "sched_getaffinity") else None,
        "lookahead_s": experiment_lookahead(spec),
        "shards": len(spec.sites),
        "runs": runs,
        "digests_match": len(digests) == 1,
        "trace_digest": base["trace_digest"],
    }
