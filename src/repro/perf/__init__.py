"""Performance harness: microbenchmarks, profiling, benchmark reports.

``python -m repro perf`` is the front door; :mod:`repro.perf.micro`
holds the individual hot-path microbenchmarks, :mod:`repro.perf.legacy`
keeps the seed event kernel as the in-process baseline, and
:mod:`repro.perf.report` assembles everything into the ``BENCH_*.json``
trajectory files. See ``docs/PERFORMANCE.md``.
"""

from repro.perf.compiled import COMPILED_AB_PROFILE, bench_compiled_kernel
from repro.perf.legacy import LegacySimulator
from repro.perf.micro import (
    bench_end_to_end,
    bench_event_kernel,
    bench_hlc_ops,
    bench_kernel_ops,
    bench_message_sizing,
    bench_network_send,
)
from repro.perf.profile import format_profile_rows, profile_call
from repro.perf.protocol import BATCHED_OVERRIDES, bench_protocol_plane
from repro.perf.parallel import PARALLEL_SCALE_PROFILE, bench_parallel_scale
from repro.perf.partial import DEGREES, bench_partial_replication
from repro.perf.report import collect_report, summary_lines, write_report
from repro.perf.scale import SCALE_PROFILE, bench_scale, resolve_profile
from repro.perf.stability import PLANES, bench_stability_plane

__all__ = [
    "LegacySimulator",
    "bench_end_to_end",
    "bench_event_kernel",
    "bench_hlc_ops",
    "bench_kernel_ops",
    "bench_compiled_kernel",
    "COMPILED_AB_PROFILE",
    "bench_message_sizing",
    "bench_network_send",
    "bench_protocol_plane",
    "BATCHED_OVERRIDES",
    "profile_call",
    "format_profile_rows",
    "collect_report",
    "write_report",
    "summary_lines",
    "bench_scale",
    "SCALE_PROFILE",
    "resolve_profile",
    "bench_parallel_scale",
    "PARALLEL_SCALE_PROFILE",
    "bench_stability_plane",
    "PLANES",
    "bench_partial_replication",
    "DEGREES",
]
