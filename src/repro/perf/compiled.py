"""Compiled-kernel A/B tier: pure vs mypyc backend, micro + end-to-end.

``python -m repro perf --kernel`` runs this tier and writes
``BENCH_PR9.json``. It measures, per backend:

- **kernel ops** — events/sec through the event kernel's handle-free
  ``post`` path (:func:`repro.perf.micro.bench_kernel_ops`);
- **HLC ops** — tick+observe arithmetic rate
  (:func:`repro.perf.micro.bench_hlc_ops`);
- **end-to-end** — the sharded scale experiment at workers ∈ {1, 2},
  ops/wall-s plus the per-run trace digest.

Every end-to-end arm must produce the *same* trace digest: the two
backends compile the same source and the parity suite pins them
byte-identical, so a digest split here is a correctness bug, not a perf
artifact. The report records ``digests_match`` accordingly.

When the mypyc build is absent (``pip install -e .[compiled]`` +
``python scripts/build_kernel.py`` not run), the tier still measures
the pure arms and records an explicit ``build_skipped`` marker instead
of fabricating a comparison — the committed benchmark stays honest
about what this container could measure.
"""

from __future__ import annotations

import os
import time
from typing import Any, Dict, Optional, Sequence

from repro.perf.micro import bench_hlc_ops, bench_kernel_ops
from repro.perf.parallel import PARALLEL_SCALE_PROFILE, spec_from_profile
from repro.perf.scale import resolve_profile
from repro.sim.backend import activate_kernel, active_kernel, compiled_available

__all__ = ["COMPILED_AB_PROFILE", "bench_compiled_kernel"]

BUILD_SKIPPED_REASON = (
    "mypyc build not present; install with `pip install -e .[compiled]` "
    "and run `python scripts/build_kernel.py` to produce repro._compiled"
)

#: A scaled-down cut of the parallel tier: same topology, ~50x fewer
#: keys/clients so the four arms (2 backends x 2 worker counts) finish
#: in well under a CI minute while still exercising the full sharded
#: pipeline (spawned workers, conservative windows, envelope traffic).
COMPILED_AB_PROFILE: Dict[str, Any] = {
    **PARALLEL_SCALE_PROFILE,
    "record_count": 20_000,
    "n_clients": 200,
    "duration": 0.25,
    "warmup": 0.05,
}


def _run_end_to_end(kernel: str, workers: int, profile: Dict[str, Any]) -> Dict[str, Any]:
    """One sharded experiment pinned to ``kernel``; wall metrics + digest."""
    from repro.sim.shard import ShardedSimulator

    prior = active_kernel()
    # spec_from_profile pins the *currently active* backend into the
    # spec, which is exactly the pinning the A/B needs — activate the
    # arm's backend first, restore the caller's afterwards.
    activate_kernel(kernel)
    try:
        spec = spec_from_profile(profile)
        engine = ShardedSimulator(spec, workers=workers)
        t0 = time.perf_counter()
        result = engine.run()
        wall = time.perf_counter() - t0
    finally:
        activate_kernel(prior)
    return {
        "kernel": kernel,
        "workers_requested": workers,
        "workers_used": engine.workers,
        "wall_seconds": wall,
        "ops_completed": result.ops_completed,
        "ops_per_wall_sec": result.ops_completed / wall if wall else 0.0,
        "events_processed": result.events_processed,
        "rounds": result.rounds,
        "errors": result.errors,
        "trace_digest": result.trace_digest,
    }


def bench_compiled_kernel(
    n_events: int = 200_000,
    repeats: int = 3,
    workers_list: Sequence[int] = (1, 2),
    overrides: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Full pure-vs-compiled A/B; see module docstring.

    Returns the report dict written to ``BENCH_PR9.json``.
    """
    profile = resolve_profile(COMPILED_AB_PROFILE, overrides)
    backends = ["pure", "compiled"] if compiled_available() else ["pure"]

    kernel_ops = bench_kernel_ops(n_events=n_events, repeats=repeats)
    hlc_ops = bench_hlc_ops(n_ops=n_events, repeats=repeats)

    end_to_end = []
    for kernel in backends:
        for workers in workers_list:
            end_to_end.append(_run_end_to_end(kernel, workers, profile))

    digests = {run["trace_digest"] for run in end_to_end}
    speedups: Dict[str, Optional[float]] = {}
    for workers in workers_list:
        pure = next(
            r for r in end_to_end if r["kernel"] == "pure" and r["workers_requested"] == workers
        )
        comp = next(
            (r for r in end_to_end
             if r["kernel"] == "compiled" and r["workers_requested"] == workers),
            None,
        )
        speedups[f"workers={workers}"] = (
            comp["ops_per_wall_sec"] / pure["ops_per_wall_sec"]
            if comp and pure["ops_per_wall_sec"]
            else None
        )

    report: Dict[str, Any] = {
        "compiled_available": compiled_available(),
        "build_skipped": not compiled_available(),
        "host_cpus": os.cpu_count(),
        "profile": {
            k: (list(v) if isinstance(v, tuple) else v) for k, v in profile.items()
        },
        "kernel_ops": kernel_ops,
        "hlc_ops": hlc_ops,
        "end_to_end": end_to_end,
        "end_to_end_speedup": speedups,
        # All arms — both backends, both worker counts — must agree.
        "digests_match": len(digests) == 1,
        "trace_digest": end_to_end[0]["trace_digest"],
    }
    if report["build_skipped"]:
        report["build_skipped_reason"] = BUILD_SKIPPED_REASON
    return report
