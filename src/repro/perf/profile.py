"""cProfile wrapper for the hot paths.

``profile_call`` runs any zero-argument callable under cProfile and
returns the hottest functions as structured rows, so ``python -m repro
perf --profile`` can print where simulation time actually goes without
anyone having to remember the pstats incantations.
"""

from __future__ import annotations

import cProfile
import pstats
from typing import Any, Callable, Dict, List, Tuple

__all__ = ["profile_call", "format_profile_rows"]


def profile_call(
    fn: Callable[[], Any], top: int = 15, sort: str = "cumulative"
) -> Tuple[Any, List[Dict[str, Any]]]:
    """Run ``fn()`` under cProfile; return (fn's result, top-N rows).

    Each row: ``{"ncalls", "tottime", "cumtime", "function"}`` with
    times in seconds, sorted by ``sort`` (a pstats sort key).
    """
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        result = fn()
    finally:
        profiler.disable()
    stats = pstats.Stats(profiler)
    stats.sort_stats(sort)
    rows: List[Dict[str, Any]] = []
    for func in stats.fcn_list[:top]:  # type: ignore[attr-defined]
        cc, nc, tt, ct, _callers = stats.stats[func]  # type: ignore[attr-defined]
        filename, lineno, name = func
        location = f"{filename}:{lineno}({name})" if lineno else name
        rows.append(
            {
                "ncalls": nc,
                "tottime": tt,
                "cumtime": ct,
                "function": location,
            }
        )
    return result, rows


def format_profile_rows(rows: List[Dict[str, Any]]) -> str:
    """Plain-text rendering of :func:`profile_call` rows."""
    lines = [f"{'ncalls':>10}  {'tottime':>8}  {'cumtime':>8}  function"]
    for row in rows:
        lines.append(
            f"{row['ncalls']:>10}  {row['tottime']:>8.3f}  {row['cumtime']:>8.3f}  {row['function']}"
        )
    return "\n".join(lines)
