"""Large-keyspace scale benchmark: memory model A/B (``perf --scale``).

A growing-keyspace, YCSB-style geo workload runs twice — once on the
current memory model and once on the legacy one
(:mod:`repro.perf.legacy_mem`) — and the report compares, per arm:

- **ops/wall-s** — simulated ops per wall second, measured untraced
  (tracemalloc slows the interpreter; rate and memory come from
  separate runs of the same deterministic simulation);
- **peak traced bytes** — tracemalloc's peak across build + preload +
  run, the peak-RSS proxy;
- **bytes/key** — end-of-run *live* traced bytes divided by the number
  of distinct keys the deployment holds, i.e. the steady-state cost of
  keeping one more key resident;
- **census** — the per-subsystem live-object breakdown
  (:func:`repro.metrics.memory.memory_census`).

Both arms execute the identical event sequence (``events_match`` is the
canary — value-compatible layouts, same seed), so the memory delta is
attributable to layout alone. The default profile holds a keyspace an
order of magnitude past the PR‑4 protocol bench and keeps growing it
with inserts; ``metadata_gc`` stays off so per-item costs are measured
at their worst.
"""

from __future__ import annotations

import gc
import time
from typing import Any, Dict, Optional

from repro.metrics.memory import TracedPeak, census_totals, memory_census
from repro.perf.legacy_mem import legacy_memory_model
from repro.storage.version import clear_intern_pool

__all__ = ["SCALE_PROFILE", "bench_scale", "resolve_profile"]

#: Default ``perf --scale`` profile: 2 geo sites × 4 servers (R=3, k=2),
#: 16 closed-loop clients over an insert-heavy "latest" mix that keeps
#: growing the keyspace past its 2 000-record preload — ~10x the PR-4
#: protocol-bench scale on every axis that costs memory.
SCALE_PROFILE: Dict[str, Any] = {
    "sites": ("dc0", "dc1"),
    "servers_per_site": 4,
    "chain_length": 3,
    "ack_k": 2,
    "seed": 1234,
    "record_count": 2000,
    "duration": 2.0,
    "n_clients": 16,
    "value_size": 64,
    "read_proportion": 0.55,
    "update_proportion": 0.15,
    "insert_proportion": 0.30,
    "rate_repeats": 3,
}


def resolve_profile(
    base: Dict[str, Any], overrides: Optional[Dict[str, Any]] = None
) -> Dict[str, Any]:
    """A copy of ``base`` with ``overrides`` applied, unknown keys rejected.

    Shared by this bench and the parallel scale tier
    (:mod:`repro.perf.parallel`): CI smoke gates shrink the default
    profiles this way, and a typo'd key must fail loudly rather than
    silently benchmark the full-size tier.
    """
    profile = dict(base)
    for key, value in (overrides or {}).items():
        if key not in profile:
            raise KeyError(
                f"unknown profile key {key!r}; valid keys: {sorted(profile)}"
            )
        profile[key] = value
    return profile


def _build_and_run(profile: Dict[str, Any]) -> Dict[str, Any]:
    from repro.baselines.registry import build_store
    from repro.workload.driver import WorkloadRunner
    from repro.workload.ycsb import WorkloadSpec

    store = build_store(
        "chainreaction",
        sites=tuple(profile["sites"]),
        servers_per_site=profile["servers_per_site"],
        chain_length=profile["chain_length"],
        ack_k=profile["ack_k"],
        seed=profile["seed"],
    )
    spec = WorkloadSpec(
        "scale",
        read_proportion=profile["read_proportion"],
        update_proportion=profile["update_proportion"],
        insert_proportion=profile["insert_proportion"],
        record_count=profile["record_count"],
        distribution="latest",
        value_size=profile["value_size"],
    )
    runner = WorkloadRunner(
        store,
        spec,
        n_clients=profile["n_clients"],
        duration=profile["duration"],
        warmup=0.1,
        record_history=False,
        # Small reservoirs: the bench measures the datastore, and 50k
        # retained float samples per reservoir would drown bytes/key.
        reservoir_capacity=4096,
    )
    result = runner.run()
    return {"store": store, "result": result}


def _distinct_keys(store: Any) -> int:
    keys = set()
    for node in store.servers():
        keys.update(node.store.digest())
    return len(keys)


def _run_arm(profile: Dict[str, Any], legacy: bool) -> Dict[str, Any]:
    """One memory-model arm: an untraced run for rate, a traced for bytes."""

    def execute() -> Dict[str, Any]:
        if legacy:
            with legacy_memory_model():
                return _build_and_run(profile)
        return _build_and_run(profile)

    # Rate runs (untraced — tracemalloc would skew the wall clock).
    # Best-of-repeats: the sim is deterministic so ops/events repeat
    # exactly; only host noise varies, and the fastest wall is closest
    # to the true cost.
    wall = float("inf")
    ops = events = 0
    for _ in range(int(profile.get("rate_repeats", 2))):
        clear_intern_pool()
        t0 = time.perf_counter()
        run = execute()
        wall = min(wall, time.perf_counter() - t0)
        ops = run["result"].ops_completed
        events = run["store"].sim.events_processed
        del run

    # Memory run (same seed, identical virtual behaviour, traced).
    # The pool is cleared first so previously-pooled vectors count as
    # allocations of this arm, keeping both arms' accounting symmetric.
    # Memory runs are taken under a tight collector: cyclic garbage
    # (future/closure cycles from finished RPCs) otherwise floats until
    # an allocation-count threshold trips, so both the peak and the
    # live reading would measure collector latency — which differs
    # between arms exactly because their allocation rates differ — on
    # top of the data structures this benchmark is about.
    thresholds = gc.get_threshold()
    gc.set_threshold(thresholds[0], 2, 2)
    try:
        clear_intern_pool()
        with TracedPeak() as trace:
            traced_run = execute()
            gc.collect()
    finally:
        gc.set_threshold(*thresholds)
    store = traced_run["store"]
    if store.sim.events_processed != events:
        raise RuntimeError(
            "scale bench: traced and untraced runs diverged "
            f"({store.sim.events_processed} != {events} events)"
        )
    census = memory_census(store)
    distinct = _distinct_keys(store)
    arm = {
        "legacy_memory_model": legacy,
        "wall_seconds": wall,
        "ops_completed": ops,
        "events_processed": events,
        "sim_ops_per_wall_sec": ops / wall if wall else 0.0,
        "traced_peak_bytes": trace.peak_bytes,
        "traced_live_bytes": trace.current_bytes,
        "distinct_keys": distinct,
        "bytes_per_key": trace.current_bytes / distinct if distinct else 0.0,
        "census": census,
        "census_totals": census_totals(census),
    }
    # Drop the stores before the next arm allocates its own.
    del traced_run, store
    return arm


def bench_scale(overrides: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
    """Run both arms of the memory-model comparison; see module docstring.

    ``overrides`` updates :data:`SCALE_PROFILE` (the CI smoke gate runs
    a shrunk profile this way). The report's acceptance ratios:

    - ``peak_bytes_reduction``   — 1 − optimized/legacy peak traced bytes
    - ``bytes_per_key_reduction`` — 1 − optimized/legacy bytes-per-key
    - ``ops_per_wall_sec_ratio`` — optimized / legacy wall rate
    """
    profile = resolve_profile(SCALE_PROFILE, overrides)

    legacy = _run_arm(profile, legacy=True)
    optimized = _run_arm(profile, legacy=False)

    def reduction(opt: float, base: float) -> float:
        return 1.0 - (opt / base) if base else 0.0

    return {
        "profile": {k: (list(v) if isinstance(v, tuple) else v) for k, v in profile.items()},
        "optimized": optimized,
        "legacy": legacy,
        "events_match": optimized["events_processed"] == legacy["events_processed"],
        "ops_match": optimized["ops_completed"] == legacy["ops_completed"],
        "peak_bytes_reduction": reduction(
            optimized["traced_peak_bytes"], legacy["traced_peak_bytes"]
        ),
        "live_bytes_reduction": reduction(
            optimized["traced_live_bytes"], legacy["traced_live_bytes"]
        ),
        "bytes_per_key_reduction": reduction(
            optimized["bytes_per_key"], legacy["bytes_per_key"]
        ),
        "ops_per_wall_sec_ratio": (
            optimized["sim_ops_per_wall_sec"] / legacy["sim_ops_per_wall_sec"]
            if legacy["sim_ops_per_wall_sec"]
            else 0.0
        ),
    }
