"""Hot-path microbenchmarks.

Each benchmark isolates one of the three hot paths the PR-1 overhaul
targets — the event kernel, the network send path, and message sizing —
plus a small end-to-end simulation. All of them are deterministic in
*virtual* behaviour (same seeds ⇒ same event counts); only the measured
wall-clock rate varies by machine. Every function returns a plain dict
so results drop straight into the benchmark JSON.

The kernel benchmark runs twice: once on :class:`LegacySimulator` (the
seed kernel, kept verbatim in :mod:`repro.perf.legacy`) and once on the
optimized kernel, so the reported speedup compares both implementations
on the same machine in the same process.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Any, Callable, ClassVar, Dict, List

from repro.net.latency import FixedLatency
from repro.net.message import Message
from repro.net.network import Address, Network
from repro.perf.legacy import LegacySimulator
from repro.sim.kernel import Simulator
from repro.sim.rng import RngRegistry

__all__ = [
    "bench_event_kernel",
    "bench_network_send",
    "bench_message_sizing",
    "bench_version_ops",
    "bench_end_to_end",
    "bench_kernel_ops",
    "bench_hlc_ops",
]


def _best_rate(fn: Callable[[], float], repeats: int) -> Dict[str, Any]:
    """Run ``fn`` (returns events/sec) ``repeats`` times; keep all runs."""
    runs = [fn() for _ in range(max(1, repeats))]
    return {"best": max(runs), "runs": runs}


# ----------------------------------------------------------------------
# event kernel
# ----------------------------------------------------------------------
def _drive_kernel(sim, sched, n_events: int, fanout: int) -> float:
    """Self-rescheduling event chains: the kernel's steady-state shape.

    ``fanout`` concurrent chains keep the heap at a realistic depth
    while every callback reschedules exactly once, so the measured rate
    is pure schedule+pop+dispatch overhead.
    """
    per_chain = max(1, n_events // fanout)
    remaining = [per_chain] * fanout

    def tick(i: int) -> None:
        remaining[i] -= 1
        if remaining[i]:
            sched(0.001 * (i + 1) / fanout, tick, i)

    for i in range(fanout):
        sched(0.001 * (i + 1) / fanout, tick, i)
    t0 = time.perf_counter()
    sim.run()
    elapsed = time.perf_counter() - t0
    return sim.events_processed / elapsed


def bench_event_kernel(n_events: int = 200_000, fanout: int = 100, repeats: int = 3) -> Dict[str, Any]:
    """Events/sec through the legacy and optimized kernels.

    ``baseline_events_per_sec`` drives the legacy (seed) kernel through
    its only API, ``schedule``. ``optimized_events_per_sec`` drives the
    new kernel through ``post`` — the handle-free path the network and
    process layers now use — which is the true before/after of the
    delivery hot path. ``optimized_schedule_events_per_sec`` is the new
    kernel through the handle-returning API, for transparency.
    """
    legacy = _best_rate(
        lambda: _drive_kernel((s := LegacySimulator()), s.schedule, n_events, fanout), repeats
    )
    post = _best_rate(
        lambda: _drive_kernel((s := Simulator()), s.post, n_events, fanout), repeats
    )
    sched = _best_rate(
        lambda: _drive_kernel((s := Simulator()), s.schedule, n_events, fanout), repeats
    )
    return {
        "n_events": n_events,
        "fanout": fanout,
        "repeats": repeats,
        "baseline_events_per_sec": legacy["best"],
        "baseline_runs": legacy["runs"],
        "optimized_events_per_sec": post["best"],
        "optimized_runs": post["runs"],
        "optimized_schedule_events_per_sec": sched["best"],
        "speedup": post["best"] / legacy["best"] if legacy["best"] else 0.0,
    }


def _core_backends(module: str) -> Dict[str, Any]:
    """Map backend name -> kernelcore module (``eventcore``/``hlccore``).

    Both benchmarks below measure the *modules* directly rather than
    flipping the process-wide backend: the pure and compiled builds of a
    core module are importable side by side, which keeps the A/B honest
    (same process, same data, only the implementation differs).
    """
    import importlib

    backends: Dict[str, Any] = {
        "pure": importlib.import_module(f"repro.kernelcore.{module}")
    }
    try:
        backends["compiled"] = importlib.import_module(f"repro._compiled.{module}")
    except ImportError:
        pass
    return backends


def bench_kernel_ops(n_events: int = 200_000, fanout: int = 100, repeats: int = 3) -> Dict[str, Any]:
    """Events/sec through the event kernel, pure vs compiled.

    Drives each backend's ``Simulator`` through ``post`` — the
    handle-free hot path — with the same self-rescheduling chain shape
    as :func:`bench_event_kernel`. ``compiled_vs_pure`` is the speedup
    ratio, or ``None`` when the mypyc build is absent.
    """
    results: Dict[str, Any] = {"n_events": n_events, "fanout": fanout, "repeats": repeats}
    rates: Dict[str, float] = {}
    for name, core in _core_backends("eventcore").items():
        run = _best_rate(
            lambda core=core: _drive_kernel((s := core.Simulator()), s.post, n_events, fanout),
            repeats,
        )
        rates[name] = run["best"]
        results[f"{name}_events_per_sec"] = run["best"]
        results[f"{name}_runs"] = run["runs"]
    results["compiled_available"] = "compiled" in rates
    results["compiled_vs_pure"] = (
        rates["compiled"] / rates["pure"] if "compiled" in rates and rates["pure"] else None
    )
    return results


def bench_hlc_ops(n_ops: int = 200_000, repeats: int = 3) -> Dict[str, Any]:
    """Ops/sec for the HLC tick/observe arithmetic, pure vs compiled.

    Each measured iteration is one local ``clock_tick`` plus one remote
    ``clock_observe`` — the per-message cost of the clock plane. The
    final (physical, logical) pair is asserted identical across
    backends: same inputs must produce the same clock.
    """
    results: Dict[str, Any] = {"n_ops": n_ops, "repeats": repeats}
    rates: Dict[str, float] = {}
    finals: Dict[str, Any] = {}

    def once(core: Any) -> float:
        tick = core.clock_tick
        observe = core.clock_observe
        physical = logical = 0
        wall = 0
        t0 = time.perf_counter()
        for i in range(n_ops):
            wall += 3
            physical, logical = tick(physical, logical, wall)
            physical, logical = observe(
                physical, logical, physical + (i & 7), i & 3, wall
            )
        elapsed = time.perf_counter() - t0
        finals["last"] = (physical, logical)
        return (2 * n_ops) / elapsed

    for name, core in _core_backends("hlccore").items():
        run = _best_rate(lambda core=core: once(core), repeats)
        rates[name] = run["best"]
        finals[name] = finals.pop("last")
        results[f"{name}_ops_per_sec"] = run["best"]
        results[f"{name}_runs"] = run["runs"]
    if "compiled" in finals:
        assert finals["compiled"] == finals["pure"], (
            "HLC backends diverged: "
            f"pure={finals['pure']} compiled={finals['compiled']}"
        )
    results["final_clock"] = list(finals["pure"])
    results["compiled_available"] = "compiled" in rates
    results["compiled_vs_pure"] = (
        rates["compiled"] / rates["pure"] if "compiled" in rates and rates["pure"] else None
    )
    return results


# ----------------------------------------------------------------------
# network fabric
# ----------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class _PerfNote(Message):
    type_name: ClassVar[str] = "perf-note"
    body: str = ""


def bench_network_send(n_messages: int = 50_000, repeats: int = 3) -> Dict[str, Any]:
    """Messages/sec through ``Network.send`` + delivery on a warm link."""

    def once() -> float:
        sim = Simulator()
        net = Network(sim, rng=RngRegistry(1), lan=FixedLatency(0.0001))
        a, b = Address("dc0", "a"), Address("dc0", "b")
        sink: List[object] = []
        net.register(a, lambda msg, src: None)
        net.register(b, lambda msg, src: sink.append(msg))
        msg = _PerfNote(body="x" * 64)
        t0 = time.perf_counter()
        for _ in range(n_messages):
            net.send(a, b, msg)
        sim.run()
        elapsed = time.perf_counter() - t0
        assert len(sink) == n_messages
        return n_messages / elapsed

    result = _best_rate(once, repeats)
    return {
        "n_messages": n_messages,
        "repeats": repeats,
        "messages_per_sec": result["best"],
        "runs": result["runs"],
    }


# ----------------------------------------------------------------------
# message sizing
# ----------------------------------------------------------------------
def bench_message_sizing(n_sizings: int = 100_000, repeats: int = 3) -> Dict[str, Any]:
    """Sizings/sec for a realistic ChainPut, fresh vs memoized."""
    from repro.core.messages import ChainPut, DepEntry
    from repro.storage.version import VersionVector

    deps = {
        f"key-{i}": DepEntry(version=VersionVector({"dc0": i, "dc1": i + 1}), index=1)
        for i in range(4)
    }

    def make() -> ChainPut:
        return ChainPut(
            key="user:12345",
            value="x" * 64,
            version=VersionVector({"dc0": 7}),
            origin_site="dc0",
            deps=deps,
            position=1,
            ack_index=2,
            request_id=99,
        )

    def fresh() -> float:
        t0 = time.perf_counter()
        for _ in range(n_sizings):
            make().size_bytes()
        return n_sizings / (time.perf_counter() - t0)

    def memoized() -> float:
        msg = make()
        msg.size_bytes()  # prime the cache
        t0 = time.perf_counter()
        for _ in range(n_sizings):
            msg.size_bytes()
        return n_sizings / (time.perf_counter() - t0)

    fresh_r = _best_rate(fresh, repeats)
    memo_r = _best_rate(memoized, repeats)
    return {
        "n_sizings": n_sizings,
        "repeats": repeats,
        "fresh_sizings_per_sec": fresh_r["best"],
        "memoized_sizings_per_sec": memo_r["best"],
        "memoization_speedup": memo_r["best"] / fresh_r["best"] if fresh_r["best"] else 0.0,
    }


# ----------------------------------------------------------------------
# version-vector operations
# ----------------------------------------------------------------------
def bench_version_ops(n_ops: int = 200_000, repeats: int = 3) -> Dict[str, Any]:
    """Ops/sec for the version-vector hot paths.

    Covers the allocation-free fast paths the memory-scale PR added:
    the 0-/1-element ``join`` (canonical ``ZERO`` / operand-identity
    returns), the dominating-operand ``merge``, and intern-pool lookups
    (``increment`` on a warm pool returns the pooled instance). The
    general N-way join is measured alongside for contrast.
    """
    from repro.storage.version import ZERO, VersionVector, clear_intern_pool

    a = VersionVector({"dc0": 3, "dc1": 1})
    b = VersionVector({"dc0": 2, "dc1": 5})
    many = [VersionVector({"dc0": i % 7, "dc1": (i * 3) % 5}) for i in range(8)]
    join = VersionVector.join

    def timed(fn: Callable[[], None]) -> float:
        t0 = time.perf_counter()
        fn()
        return n_ops / (time.perf_counter() - t0)

    def join_empty() -> float:
        return timed(lambda: [join(()) for _ in range(n_ops)])

    def join_single() -> float:
        operand = (a,)
        return timed(lambda: [join(operand) for _ in range(n_ops)])

    def join_many() -> float:
        return timed(lambda: [join(many) for _ in range(n_ops)])

    def merge_dominating() -> float:
        zero = ZERO
        return timed(lambda: [a.merge(zero) for _ in range(n_ops)])

    def merge_general() -> float:
        return timed(lambda: [a.merge(b) for _ in range(n_ops)])

    def increment_pooled() -> float:
        a.increment("dc0")  # warm the pool entry
        return timed(lambda: [a.increment("dc0") for _ in range(n_ops)])

    clear_intern_pool()
    results = {
        "join_empty_per_sec": _best_rate(join_empty, repeats)["best"],
        "join_single_per_sec": _best_rate(join_single, repeats)["best"],
        "join_many_per_sec": _best_rate(join_many, repeats)["best"],
        "merge_dominating_per_sec": _best_rate(merge_dominating, repeats)["best"],
        "merge_general_per_sec": _best_rate(merge_general, repeats)["best"],
        "increment_pooled_per_sec": _best_rate(increment_pooled, repeats)["best"],
    }
    # Identity checks double as correctness canaries for the fast paths.
    assert join(()) is ZERO
    assert join((a,)) is a
    assert a.merge(ZERO) is a
    results["n_ops"] = n_ops
    results["repeats"] = repeats
    results["join_single_vs_many"] = (
        results["join_single_per_sec"] / results["join_many_per_sec"]
        if results["join_many_per_sec"]
        else 0.0
    )
    return results


# ----------------------------------------------------------------------
# end to end
# ----------------------------------------------------------------------
def bench_end_to_end(
    duration: float = 0.5,
    n_clients: int = 8,
    record_count: int = 50,
    seed: int = 7,
) -> Dict[str, Any]:
    """A small geo-replicated ChainReaction run; events/sec and ops/sec.

    Virtual behaviour is fixed by ``seed`` — ``events_processed`` and
    ``ops_completed`` are the determinism canaries; the wall-clock rates
    are the performance signal.
    """
    from repro.baselines import build_store
    from repro.workload import WorkloadRunner, workload

    store = build_store(
        "chainreaction",
        sites=("dc0", "dc1"),
        servers_per_site=4,
        chain_length=3,
        seed=seed,
    )
    spec = workload("B", record_count=record_count, value_size=64)
    runner = WorkloadRunner(
        store, spec, n_clients=n_clients, duration=duration, warmup=0.1,
        record_history=False,
    )
    t0 = time.perf_counter()
    result = runner.run()
    elapsed = time.perf_counter() - t0
    return {
        "duration_virtual_s": duration,
        "n_clients": n_clients,
        "wall_seconds": elapsed,
        "events_processed": store.sim.events_processed,
        "ops_completed": result.ops_completed,
        "events_per_sec": store.sim.events_processed / elapsed,
        "sim_ops_per_wall_sec": result.ops_completed / elapsed,
    }
