"""Protocol-plane benchmark: batching + metadata GC, on vs off.

Unlike the :mod:`repro.perf.micro` suite, which isolates single hot
paths, this benchmark measures the *protocol* plane: the same
deterministic write-heavy geo workload runs twice — once with the seed
per-notification protocol and once with ``protocol_batching`` +
``metadata_gc`` — and the report compares

- wall-clock rate (simulated ops per wall second: fewer wire messages
  means fewer simulator events per op),
- stability-notification message counts (``chain-stable`` vs
  ``chain-stable`` + ``bulk-stable``, and the global-stability
  equivalents),
- live metadata footprint (server stable-map entries, client dep-table
  bytes) at the end of the run.

Virtual behaviour of each arm is seed-deterministic; only the wall
rates vary by machine. The workload is deliberately write-heavy (90%
updates): batching targets the per-write notification fan-out, which a
read-dominated mix would mask.
"""

from __future__ import annotations

import time
from typing import Any, Dict, Optional

from repro.metrics.protocol import (
    GLOBAL_STABILITY_MESSAGE_TYPES,
    SHIPPING_MESSAGE_TYPES,
    STABILITY_MESSAGE_TYPES,
)

__all__ = ["BATCHED_OVERRIDES", "bench_protocol_plane"]

#: the batched arm's config — also what ``--batch`` CLI flags enable
BATCHED_OVERRIDES: Dict[str, object] = {
    "protocol_batching": True,
    "metadata_gc": True,
    "batch_flush_interval": 0.025,
}


def _run_arm(
    overrides: Optional[Dict[str, object]],
    duration: float,
    n_clients: int,
    record_count: int,
    seed: int,
) -> Dict[str, Any]:
    from repro.baselines.registry import build_store
    from repro.workload.driver import WorkloadRunner
    from repro.workload.ycsb import WorkloadSpec

    store = build_store(
        "chainreaction",
        sites=("dc0", "dc1"),
        servers_per_site=4,
        chain_length=3,
        ack_k=2,
        seed=seed,
        overrides=overrides,
    )
    spec = WorkloadSpec(
        "pr4-write-heavy",
        read_proportion=0.1,
        update_proportion=0.9,
        record_count=record_count,
        value_size=64,
    )
    runner = WorkloadRunner(
        store, spec, n_clients=n_clients, duration=duration, warmup=0.1,
        record_history=False,
    )
    t0 = time.perf_counter()
    result = runner.run()
    wall = time.perf_counter() - t0
    stats = store.protocol_stats()
    net = store.network.stats
    arm: Dict[str, Any] = {
        "overrides": dict(overrides or {}),
        "wall_seconds": wall,
        "events_processed": store.sim.events_processed,
        "ops_completed": result.ops_completed,
        "sim_ops_per_wall_sec": result.ops_completed / wall if wall else 0.0,
        "messages_sent": net.messages_sent,
        "bytes_sent": net.bytes_sent,
        "stability_messages": net.count_of(*STABILITY_MESSAGE_TYPES),
        "global_stability_messages": net.count_of(*GLOBAL_STABILITY_MESSAGE_TYPES),
        "shipping_messages": net.count_of(*SHIPPING_MESSAGE_TYPES),
        "metadata": stats["metadata"],
    }
    if "batching" in stats:
        arm["batching"] = stats["batching"]
    return arm


def bench_protocol_plane(
    duration: float = 1.0,
    n_clients: int = 8,
    record_count: int = 25,
    seed: int = 1234,
    repeats: int = 3,
) -> Dict[str, Any]:
    """Batched-vs-unbatched comparison on one write-heavy geo workload.

    Each arm runs ``repeats`` times; the arm with the best wall rate is
    kept (message counts and event counts are seed-deterministic, so
    only the wall-clock fields differ between repeats — best-of filters
    out scheduler noise exactly like the microbenchmarks do).
    """

    def best(overrides: Optional[Dict[str, object]]) -> Dict[str, Any]:
        arms = [
            _run_arm(overrides, duration, n_clients, record_count, seed)
            for _ in range(max(1, repeats))
        ]
        top = max(arms, key=lambda arm: arm["sim_ops_per_wall_sec"])
        top["wall_runs"] = [arm["wall_seconds"] for arm in arms]
        return top

    unbatched = best(None)
    batched = best(BATCHED_OVERRIDES)

    def ratio(a: float, b: float) -> float:
        return a / b if b else 0.0

    return {
        "duration_virtual_s": duration,
        "n_clients": n_clients,
        "record_count": record_count,
        "seed": seed,
        "unbatched": unbatched,
        "batched": batched,
        "ops_per_wall_sec_speedup": ratio(
            batched["sim_ops_per_wall_sec"], unbatched["sim_ops_per_wall_sec"]
        ),
        "stability_message_reduction": ratio(
            unbatched["stability_messages"], batched["stability_messages"]
        ),
        "global_stability_message_reduction": ratio(
            unbatched["global_stability_messages"],
            batched["global_stability_messages"],
        ),
        "message_reduction": ratio(
            unbatched["messages_sent"], batched["messages_sent"]
        ),
        # Simulated throughput cost of delaying notifications into flush
        # windows — should stay a single-digit percentage.
        "sim_throughput_ratio": ratio(
            batched["ops_completed"], unbatched["ops_completed"]
        ),
    }
