"""The pre-PR5 memory layout, kept in-tree as the scale-bench baseline.

``python -m repro perf --scale`` compares two *memory models* under an
identical protocol run: the current one (interned version vectors,
slotted records, columnar dependency tables) and this module's legacy
one (no interning, ``__dict__``-backed records and dependency entries,
dict-of-objects dependency tables). Because every class here is
value-compatible with its optimized counterpart, both arms execute the
same deterministic event sequence — ``events_processed`` doubles as the
canary — and the difference tracemalloc sees is purely the layout.

Mirrors the PR 1 pattern of shipping the seed kernel in-tree
(``repro.perf.legacy``): the comparison runs both implementations in
one process on one machine, so the reported reduction is portable.
"""

from __future__ import annotations

import contextlib
from typing import Any, Iterator, Tuple

from repro.core.deptable import LegacyDepTable, set_dep_table_factory
from repro.storage.store import VersionedStore
from repro.storage.version import VersionVector, set_interning

__all__ = ["LegacyRecord", "LegacyDepEntry", "legacy_memory_model"]


class LegacyRecord:
    """Dict-backed record, as stored before the slotted conversion."""

    def __init__(
        self,
        key: str,
        value: Any,
        version: VersionVector,
        stamp: Tuple = (),
        updated_at: float = 0.0,
    ) -> None:
        self.key = key
        self.value = value
        self.version = version
        self.stamp = stamp
        self.updated_at = updated_at

    @property
    def is_deleted(self) -> bool:
        from repro.storage.store import TOMBSTONE

        return self.value is TOMBSTONE

    def size_bytes(self) -> int:
        from repro.net.message import estimate_size

        return estimate_size(self.key) + estimate_size(self.value) + self.version.size_bytes()


class LegacyDepEntry:
    """Dict-backed dependency entry (pre-``__slots__`` layout)."""

    def __init__(
        self, version: VersionVector, index: int, hlc: Any = None
    ) -> None:
        self.version = version
        self.index = index
        self.hlc = hlc

    def size_bytes(self) -> int:
        stamp = 0 if self.hlc is None else self.hlc.size_bytes()
        return self.version.size_bytes() + 4 + stamp


class _LegacyDepTableUnslotted(LegacyDepTable):
    """Legacy dict table boxing unslotted entries, for the baseline arm."""

    def set(
        self, key: str, version: VersionVector, index: int, hlc: Any = None
    ) -> None:
        self[key] = LegacyDepEntry(version, index, hlc)  # type: ignore[assignment]


@contextlib.contextmanager
def legacy_memory_model() -> Iterator[None]:
    """Run the enclosed block under the pre-PR5 memory layout.

    Swaps the record factory, the dependency-table factory, and the
    version-vector interning flag; restores all three on exit. Only
    stores/sessions *created inside* the block use the legacy layout.
    """
    previous_interning = set_interning(False)
    previous_record = VersionedStore.record_factory
    VersionedStore.record_factory = LegacyRecord
    previous_table = set_dep_table_factory(_LegacyDepTableUnslotted)
    try:
        yield
    finally:
        set_interning(previous_interning)
        VersionedStore.record_factory = previous_record
        set_dep_table_factory(previous_table)
