"""Declarative fault campaigns.

A campaign is a complete fault-tolerance experiment stated as data: a
deployment shape, a YCSB workload, and a schedule of seeded fault
events (crashes, recoveries, partitions, slow links) at fixed virtual
times. The engine (:mod:`repro.faults.engine`) builds the deployment,
arms the schedule on a :class:`~repro.cluster.failure.FailureInjector`,
drives the workload through the fault window, and asserts the protocol
invariants plus per-operation outcome accounting.

Because everything — fault times, targets, workload, seeds — is
declared up front, a campaign is deterministic end to end: two runs of
the same campaign under the same seed replay bit-identical message
traces (checked by :func:`repro.faults.engine.sanitize_campaign`).

Crash targets are *selectors* resolved against the built deployment:

- ``"dc0:s1"`` — the named server;
- ``"head-of:<key>"`` / ``"mid-of:<key>"`` / ``"tail-of:<key>"`` — the
  server at that chain position for ``<key>`` (first site by default;
  prefix with ``"<site>/"`` to pick another site);
- ``"owner-head-of:<key>"`` — the chain head of ``<key>`` at its
  *primary owner* DC under the deployment's shard placement (falls
  back to the first site under full replication); this is the server
  every forwarded operation on the key serialises through, the
  partial-replication single-point-of-serve stress target.

Partition targets are ``"a|b"`` where each endpoint is a site name or
``site:server``; slow-link targets are ``"siteA~siteB"`` (``a == b``
degrades a site's intra-DC fabric).
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, Optional, Tuple

from repro.errors import ConfigError

__all__ = [
    "CAMPAIGNS",
    "CampaignSpec",
    "FaultSpec",
    "campaign",
    "resolve_server",
]

_KINDS = ("crash", "partition", "slow-link")
_POSITIONS = {"head-of": "head", "mid-of": "mid", "tail-of": "tail"}


@dataclasses.dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault.

    ``at``/``until`` are absolute virtual times from run start (the
    workload warms up from t=0, so place faults after the warmup).
    ``until`` is the recovery/heal/restore time; None means the fault
    persists to the end of the run.
    """

    kind: str
    at: float
    target: str
    until: Optional[float] = None
    factor: float = 10.0
    wipe_storage: bool = False

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ConfigError(f"unknown fault kind {self.kind!r}; choose from {_KINDS}")
        if self.at <= 0:
            raise ConfigError(f"fault time must be positive, got {self.at}")
        if self.until is not None and self.until <= self.at:
            raise ConfigError(f"until {self.until} must follow at {self.at}")
        if not self.target:
            raise ConfigError("fault target must be non-empty")
        if self.kind == "partition" and "|" not in self.target:
            raise ConfigError(f"partition target must be 'a|b', got {self.target!r}")
        if self.kind == "slow-link":
            if "~" not in self.target:
                raise ConfigError(f"slow-link target must be 'a~b', got {self.target!r}")
            if self.factor <= 0:
                raise ConfigError(f"slow-link factor must be positive, got {self.factor}")


@dataclasses.dataclass(frozen=True)
class CampaignSpec:
    """A deployment + workload + fault schedule, ready to run."""

    name: str
    description: str
    events: Tuple[FaultSpec, ...]
    protocol: str = "chainreaction"
    sites: Tuple[str, ...] = ("dc0",)
    servers_per_site: int = 6
    chain_length: int = 3
    ack_k: int = 2
    workload_name: str = "B"
    records: int = 50
    clients: int = 8
    warmup: float = 0.2
    duration: float = 2.0
    drain: float = 1.0
    overrides: Optional[Dict[str, object]] = None

    def __post_init__(self) -> None:
        if not self.events:
            raise ConfigError(f"campaign {self.name!r} schedules no faults")
        stop = self.warmup + self.duration
        for ev in self.events:
            if ev.at >= stop:
                raise ConfigError(
                    f"campaign {self.name!r}: fault at t={ev.at} falls after "
                    f"the workload stops at t={stop}"
                )

    def fault_window(self) -> Tuple[float, float]:
        """(start of first fault, end of last fault) — recovery times that
        are None extend the window to the end of the measured run."""
        stop = self.warmup + self.duration
        start = min(ev.at for ev in self.events)
        end = max(stop if ev.until is None else min(ev.until, stop) for ev in self.events)
        return start, end

    def with_updates(self, **changes: object) -> "CampaignSpec":
        return dataclasses.replace(self, **changes)  # type: ignore[arg-type]


def resolve_server(store: Any, selector: str) -> Any:
    """Resolve a crash-target selector against a built deployment."""
    site = store.sites[0]
    sel = selector
    if "/" in sel:
        site, sel = sel.split("/", 1)
    if site not in store.sites:
        raise ConfigError(f"selector {selector!r}: unknown site {site!r}")
    if sel.startswith("owner-head-of:"):
        key = sel[len("owner-head-of:") :]
        catalog = getattr(store.config, "placement", lambda: None)()
        if catalog is not None:
            site = catalog.primary_for(key)
        chain = store.managers[site].view.chain_for(key)
        sel = f"{site}:{chain[0]}"
    position = None
    for prefix in _POSITIONS:
        if sel.startswith(prefix + ":"):
            position = _POSITIONS[prefix]
            key = sel[len(prefix) + 1 :]
            break
    if position is not None:
        chain = store.managers[site].view.chain_for(key)
        index = {"head": 0, "mid": len(chain) // 2, "tail": len(chain) - 1}[position]
        name = chain[index]
    elif ":" in sel:
        site, name = sel.split(":", 1)
        if site not in store.sites:
            raise ConfigError(f"selector {selector!r}: unknown site {site!r}")
    else:
        raise ConfigError(
            f"bad selector {selector!r}: expected 'site:server' or "
            f"'[site/]head-of:<key>' (also mid-of, tail-of)"
        )
    for node in store.servers(site):
        if node.name == name:
            return node
    raise ConfigError(f"selector {selector!r}: no server {name!r} in {site!r}")


def _crash(at: float, target: str, until: Optional[float] = None, **kw: Any) -> FaultSpec:
    return FaultSpec(kind="crash", at=at, target=target, until=until, **kw)


#: The built-in campaign library, keyed by name (``python -m repro
#: faults --campaign <name>``). Times assume the default 0.2s warmup +
#: 2.0s measured window.
CAMPAIGNS: Dict[str, CampaignSpec] = {
    spec.name: spec
    for spec in (
        CampaignSpec(
            name="crash-head",
            description=(
                "crash the chain head of a hot key mid-run, recover it; "
                "writes must fail over once the detector reconfigures"
            ),
            events=(_crash(0.7, "head-of:user00000000", 1.5),),
        ),
        CampaignSpec(
            name="crash-tail",
            description=(
                "crash the chain tail of a hot key mid-run, recover it; "
                "tail reads re-route and stability resumes after repair"
            ),
            events=(_crash(0.7, "tail-of:user00000000", 1.5),),
        ),
        CampaignSpec(
            name="crash-mid-norecover",
            description=(
                "fail-stop a mid-chain server with storage wiped and no "
                "recovery; chain repair must restore R replicas from the "
                "survivors"
            ),
            events=(_crash(0.8, "mid-of:user00000000", wipe_storage=True),),
        ),
        CampaignSpec(
            name="rolling-crashes",
            description=(
                "crash two servers back to back with overlapping recovery "
                "windows — the double-reconfiguration stress test"
            ),
            events=(
                _crash(0.6, "dc0:s0", 1.2),
                _crash(0.9, "dc0:s2", 1.6),
            ),
        ),
        CampaignSpec(
            name="partial-owner-crash",
            description=(
                "under replication degree 1, crash the chain head at the "
                "sole owner DC of a hot shard mid-serve; remote gets must "
                "retry/degrade per the outcome taxonomy and resume once "
                "the owner chain repairs, with zero unresolved operations"
            ),
            sites=("dc0", "dc1", "dc2"),
            clients=9,
            events=(_crash(0.7, "owner-head-of:user00000000", 1.5),),
            overrides={"replication_degree": 1, "num_shards": 8},
        ),
        CampaignSpec(
            name="partition-sites",
            description=(
                "partition the two datacenters, then heal; local operations "
                "continue, remote visibility resumes after the heal"
            ),
            sites=("dc0", "dc1"),
            events=(
                FaultSpec(kind="partition", at=0.7, target="dc0|dc1", until=1.4),
            ),
        ),
        CampaignSpec(
            name="slow-link",
            description=(
                "degrade the intra-DC fabric 20x for a window — a grey "
                "failure that stresses timeouts and backoff, not crashes"
            ),
            events=(
                FaultSpec(kind="slow-link", at=0.7, target="dc0~dc0", until=1.4, factor=20.0),
            ),
        ),
    )
}


def campaign(name: str) -> CampaignSpec:
    """Look up a built-in campaign by name."""
    try:
        return CAMPAIGNS[name]
    except KeyError:
        raise ConfigError(
            f"unknown campaign {name!r}; choose from {sorted(CAMPAIGNS)}"
        ) from None
