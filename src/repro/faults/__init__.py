"""Fault campaigns: declarative failure schedules over live deployments.

The E9 story as a reusable subsystem. A campaign declares *what goes
wrong and when* — seeded crashes, recoveries, partitions, slow links —
over a deployment + workload shape; the engine runs it, resolves every
operation to an explicit outcome (ok / degraded / timeout), and audits
the chain invariants and the causal history afterwards. Deterministic
end to end: same campaign + same seed replays bit-identical traces.

Entry points: ``python -m repro faults`` (CLI),
:func:`~repro.faults.engine.run_campaign` /
:func:`~repro.faults.engine.sanitize_campaign` (library), and the
built-in :data:`~repro.faults.campaign.CAMPAIGNS`.
"""

from repro.faults.campaign import (
    CAMPAIGNS,
    CampaignSpec,
    FaultSpec,
    campaign,
    resolve_server,
)
from repro.faults.engine import (
    CampaignResult,
    FaultSessionDriver,
    OutcomeCounts,
    PhaseStats,
    run_campaign,
    sanitize_campaign,
)

__all__ = [
    "CAMPAIGNS",
    "CampaignResult",
    "CampaignSpec",
    "FaultSessionDriver",
    "FaultSpec",
    "OutcomeCounts",
    "PhaseStats",
    "campaign",
    "resolve_server",
    "run_campaign",
    "sanitize_campaign",
]
