"""The fault-campaign engine.

Runs a :class:`~repro.faults.campaign.CampaignSpec` end to end:

1. build the deployment (seeded) and attach the chain-invariant
   monitors (prefix property, stability monotonicity, causal cut);
2. resolve the campaign's fault selectors against the built cluster and
   arm them on a :class:`~repro.cluster.failure.FailureInjector`;
3. drive the YCSB workload through the fault window with an accounting
   driver that resolves **every** operation to exactly one outcome —
   ``ok``, ``degraded`` (read served from a possibly-stale replica,
   flagged, excluded from the causal history), or ``timeout`` (retry
   budget exhausted) — and counts the retries behind the successes;
4. audit: causal checker over the recorded history, invariant report,
   and per-phase throughput/latency (before / during / after the fault
   window), the E9 availability story in numbers.

:func:`sanitize_campaign` reruns the whole campaign twice under one
seed and diffs the message traces with the PR 2 sanitizer — fault
injection must not cost determinism.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.analysis.invariants import ChainInvariantMonitor
from repro.analysis.sanitize import MessageTap, SanitizeReport, locate_divergence
from repro.baselines.registry import build_store
from repro.checker import check_causal
from repro.checker.history import GET
from repro.cluster.failure import (
    CrashEvent,
    FailureInjector,
    PartitionEvent,
    SlowLinkEvent,
)
from repro.errors import ReproError
from repro.faults.campaign import CampaignSpec, FaultSpec, resolve_server
from repro.workload import WorkloadRunner, workload
from repro.workload.driver import SessionDriver

__all__ = [
    "CampaignResult",
    "FaultSessionDriver",
    "OutcomeCounts",
    "PhaseStats",
    "run_campaign",
    "sanitize_campaign",
]

#: One resolved operation: (t_invoke, t_return, op, outcome) where
#: outcome is "ok" | "degraded" | "timeout".
OpRecord = Tuple[float, float, str, str]


@dataclasses.dataclass
class OutcomeCounts:
    """Where every operation of a campaign ended up."""

    ok: int = 0
    degraded: int = 0
    timeouts: int = 0
    #: operations that succeeded only after at least one retry
    retried_ops: int = 0
    #: total retry attempts across all sessions
    retries: int = 0
    #: operations still unresolved when the run drained (should be 0)
    unresolved: int = 0

    @property
    def total(self) -> int:
        return self.ok + self.degraded + self.timeouts

    def as_dict(self) -> Dict[str, int]:
        return dataclasses.asdict(self)


@dataclasses.dataclass
class PhaseStats:
    """Throughput and latency over one phase of the fault window."""

    phase: str
    start: float
    end: float
    ops: int
    ops_per_sec: float
    get_p50_ms: float
    get_p99_ms: float
    timeouts: int
    degraded: int

    def as_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)


class FaultSessionDriver(SessionDriver):
    """Closed-loop driver with per-operation outcome accounting.

    Degraded reads are recorded for latency but **excluded from the
    causal history**: a degraded read deliberately relaxes the causal
    guarantee (that is its contract), so auditing it as a normal read
    would report the relaxation as a violation.
    """

    def __init__(
        self, *args: Any, oplog: List[OpRecord], counts: OutcomeCounts, **kwargs: Any
    ) -> None:
        super().__init__(*args, **kwargs)
        self.oplog = oplog
        self.counts = counts
        self.issued = 0

    def _loop(self, sim: Any) -> Iterator[Any]:
        while sim.now < self.stop_at:
            op, key = self._next_request()
            t_invoke = sim.now
            self.issued += 1
            retries_before = self.session.retries
            try:
                if op == GET:
                    outcome = yield self.session.get(key)
                else:
                    outcome = yield self.session.put(key, self._payload())
            except ReproError as exc:
                self.oplog.append((t_invoke, sim.now, op, "timeout"))
                self._op_failed(op, key, exc, measured=sim.now >= self.measure_from)
                continue
            t_return = sim.now
            degraded = bool(getattr(outcome, "degraded", False))
            self.oplog.append((t_invoke, t_return, op, "degraded" if degraded else "ok"))
            if self.session.retries > retries_before:
                self.counts.retried_ops += 1
            if t_return < self.measure_from:
                continue  # warm-up
            if degraded:
                saved = self.record_history
                self.record_history = False
                try:
                    self._record(op, key, outcome, t_invoke, t_return)
                finally:
                    self.record_history = saved
            else:
                self._record(op, key, outcome, t_invoke, t_return)
        return self._op_seq


@dataclasses.dataclass
class CampaignResult:
    """Everything one campaign run produced."""

    spec: CampaignSpec
    seed: int
    outcomes: OutcomeCounts
    phases: List[PhaseStats]
    causal_violations: int
    invariant_report: Optional[Any]
    injector_log: List[str]
    throughput: float
    ops_completed: int
    trace: Optional[List[Any]] = None
    events_processed: int = 0
    store: Optional[Any] = None

    @property
    def clean(self) -> bool:
        """Zero invariant violations, zero causal violations, and every
        operation resolved to ok / degraded / timeout."""
        ok = self.causal_violations == 0 and self.outcomes.unresolved == 0
        if self.invariant_report is not None:
            ok = ok and not self.invariant_report.violations
        return ok

    def to_report(self) -> Dict[str, Any]:
        """JSON-serialisable summary (the BENCH_PR3 payload)."""
        report: Dict[str, Any] = {
            "campaign": self.spec.name,
            "description": self.spec.description,
            "protocol": self.spec.protocol,
            "seed": self.seed,
            "clients": self.spec.clients,
            "workload": self.spec.workload_name,
            "fault_window": list(self.spec.fault_window()),
            "throughput_ops_s": self.throughput,
            "ops_completed": self.ops_completed,
            "outcomes": self.outcomes.as_dict(),
            "phases": [p.as_dict() for p in self.phases],
            "causal_violations": self.causal_violations,
            "injector_log": list(self.injector_log),
            "clean": self.clean,
        }
        if self.invariant_report is not None:
            report["invariants"] = {
                "violations": len(self.invariant_report.violations),
                "applies_checked": self.invariant_report.applies_checked,
                "stability_checks": self.invariant_report.stability_checks,
                "gets_checked": self.invariant_report.gets_checked,
            }
        return report

    def format(self) -> str:
        window = self.spec.fault_window()
        lines = [
            f"campaign {self.spec.name!r} ({self.spec.protocol}, seed {self.seed}): "
            f"{self.outcomes.total} ops, fault window "
            f"[{window[0]:.2f}s, {window[1]:.2f}s]",
            f"  outcomes : ok={self.outcomes.ok} degraded={self.outcomes.degraded} "
            f"timeout={self.outcomes.timeouts} "
            f"(retried {self.outcomes.retried_ops} ops, "
            f"{self.outcomes.retries} retries, "
            f"{self.outcomes.unresolved} unresolved)",
        ]
        for p in self.phases:
            lines.append(
                f"  {p.phase:<7}: {p.ops_per_sec:>9.0f} ops/s  "
                f"get p50/p99 {p.get_p50_ms:.2f}/{p.get_p99_ms:.2f} ms  "
                f"timeouts={p.timeouts} degraded={p.degraded}"
            )
        lines.append(f"  causal   : {self.causal_violations} violation(s)")
        if self.invariant_report is not None:
            lines.append("  " + self.invariant_report.format().replace("\n", "\n  "))
        for entry in self.injector_log:
            lines.append(f"  inject   : {entry}")
        lines.append(f"  verdict  : {'CLEAN' if self.clean else 'VIOLATIONS FOUND'}")
        return "\n".join(lines)


def _arm(store: Any, ev: FaultSpec) -> Any:
    if ev.kind == "crash":
        return CrashEvent(
            actor=resolve_server(store, ev.target),
            at=ev.at,
            recover_at=ev.until,
            wipe_storage=ev.wipe_storage,
        )
    if ev.kind == "slow-link":
        a, b = ev.target.split("~", 1)
        return SlowLinkEvent(a=a, b=b, at=ev.at, heal_at=ev.until, factor=ev.factor)
    a, b = ev.target.split("|", 1)
    return PartitionEvent(a=a, b=b, at=ev.at, heal_at=ev.until)


def _percentile(sorted_values: List[float], pct: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1, int(round(pct / 100.0 * (len(sorted_values) - 1))))
    return sorted_values[index]


def _phase_stats(
    oplog: List[OpRecord], spec: CampaignSpec
) -> List[PhaseStats]:
    window_start, window_end = spec.fault_window()
    stop = spec.warmup + spec.duration
    bounds = [
        ("before", spec.warmup, window_start),
        ("during", window_start, window_end),
        ("after", window_end, stop + spec.drain),
    ]
    phases = []
    for name, start, end in bounds:
        if end <= start:
            continue
        in_phase = [rec for rec in oplog if start <= rec[1] < end]
        get_latencies = sorted(
            rec[1] - rec[0] for rec in in_phase if rec[2] == GET and rec[3] != "timeout"
        )
        # Throughput over the phase's nominal span, capped at the workload
        # stop: ops completing in the drain would otherwise dilute it.
        span = min(end, stop) - min(start, stop)
        completed = sum(1 for rec in in_phase if rec[3] != "timeout")
        phases.append(
            PhaseStats(
                phase=name,
                start=start,
                end=end,
                ops=len(in_phase),
                ops_per_sec=completed / span if span > 0 else 0.0,
                get_p50_ms=_percentile(get_latencies, 50) * 1000,
                get_p99_ms=_percentile(get_latencies, 99) * 1000,
                timeouts=sum(1 for rec in in_phase if rec[3] == "timeout"),
                degraded=sum(1 for rec in in_phase if rec[3] == "degraded"),
            )
        )
    return phases


#: campaign runs bound each operation's total time budget so the drain
#: window suffices for every in-flight op to resolve (overridable)
_DEFAULT_OVERRIDES: Dict[str, object] = {"op_deadline": 1.0}


def run_campaign(
    spec: CampaignSpec,
    seed: int = 42,
    *,
    capture_trace: bool = False,
    check_invariants: bool = True,
) -> CampaignResult:
    """Run one campaign; returns the accounted, audited result."""
    overrides = dict(_DEFAULT_OVERRIDES)
    overrides.update(spec.overrides or {})
    store = build_store(
        spec.protocol,
        sites=spec.sites,
        servers_per_site=spec.servers_per_site,
        chain_length=spec.chain_length,
        ack_k=spec.ack_k,
        seed=seed,
        overrides=overrides,
    )
    monitor = None
    if check_invariants and spec.protocol in ("chainreaction", "chain"):
        monitor = ChainInvariantMonitor(store).attach()
    tap = MessageTap().attach(store.network) if capture_trace else None

    injector = FailureInjector(store.sim, store.network)
    injector.apply([_arm(store, ev) for ev in spec.events])

    oplog: List[OpRecord] = []
    counts = OutcomeCounts()
    spec_wl = workload(spec.workload_name, record_count=spec.records)

    def make_driver(**kwargs: Any) -> FaultSessionDriver:
        return FaultSessionDriver(oplog=oplog, counts=counts, **kwargs)

    runner = WorkloadRunner(
        store,
        spec_wl,
        n_clients=spec.clients,
        duration=spec.duration,
        warmup=spec.warmup,
        drain=spec.drain,
        record_history=True,
        driver_factory=make_driver,
    )
    result = runner.run()
    if tap is not None:
        tap.detach()

    for t_invoke, t_return, op, kind in oplog:
        if kind == "ok":
            counts.ok += 1
        elif kind == "degraded":
            counts.degraded += 1
        else:
            counts.timeouts += 1
    counts.retries = sum(d.session.retries for d in runner.drivers)
    counts.unresolved = sum(d.issued for d in runner.drivers) - len(oplog)

    return CampaignResult(
        spec=spec,
        seed=seed,
        outcomes=counts,
        phases=_phase_stats(oplog, spec),
        causal_violations=len(check_causal(result.history)),
        invariant_report=monitor.report() if monitor is not None else None,
        injector_log=injector.log,
        throughput=result.throughput,
        ops_completed=result.ops_completed,
        trace=tap.entries if tap is not None else None,
        events_processed=store.sim.events_processed,
        store=store,
    )


def sanitize_campaign(spec: CampaignSpec, seed: int = 42) -> SanitizeReport:
    """Determinism check: run the campaign twice under one seed and diff
    the message traces (fault injection included)."""
    first = run_campaign(spec, seed, capture_trace=True)
    second = run_campaign(spec, seed, capture_trace=True)
    assert first.trace is not None and second.trace is not None
    return SanitizeReport(
        protocol=f"{spec.protocol} campaign:{spec.name}",
        seed=seed,
        trace_length=len(first.trace),
        divergence=locate_divergence(first.trace, second.trace),
        events_processed=(first.events_processed, second.events_processed),
        invariant_report=first.invariant_report,
    )
