"""Protocol-agnostic datastore API.

Workload drivers, consistency checkers, examples, and benchmarks are all
written against these two abstractions, so every protocol in the
repository — ChainReaction and the baselines — is interchangeable under
the same harness:

- :class:`Datastore` — a running deployment (servers, managers,
  geo-proxies) from which client sessions are opened.
- :class:`ClientSession` — a sequential client. Operations return
  :class:`~repro.sim.process.Future` objects resolving to
  :class:`GetResult` / :class:`PutResult`, because everything executes
  on the discrete-event simulator.

Sessions are *not* thread-safe in the distributed-systems sense: like
the paper's client library, a session has at most one outstanding
operation; concurrency comes from opening many sessions.

Optional protocol features are advertised through
:attr:`Datastore.capabilities`, a frozenset of the ``CAP_*`` strings
below. Harness code branches on membership (``CAP_SNAPSHOT_READS in
store.capabilities``) instead of probing optional methods with
try/except; calling an unsupported operation raises
:class:`~repro.errors.UnsupportedOperationError`.

Sessions have an explicit lifecycle: they are context managers, and a
deployment tracks every session it opened (:meth:`Datastore.sessions`)
so :meth:`Datastore.shutdown` can close them all at once.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, List, Optional, Sequence

from repro.errors import SessionClosedError, UnsupportedOperationError
from repro.sim.process import Future
from repro.storage.version import VersionVector

__all__ = [
    "CAP_SNAPSHOT_READS",
    "CAP_DEGRADED_READS",
    "CAP_TRACING",
    "CAP_STABILITY",
    "CAP_DURABLE_STORAGE",
    "CAP_CLOCK_STABILITY",
    "CAP_COMPILED_KERNEL",
    "GetResult",
    "PutResult",
    "SnapshotResult",
    "ClientSession",
    "Datastore",
]

#: Causally consistent multi-key snapshots (``ClientSession.multi_get``).
CAP_SNAPSHOT_READS = "snapshot-reads"
#: Reads may fall back to possibly-unstable versions from deeper chain
#: positions under failures, flagged via ``GetResult.degraded``.
CAP_DEGRADED_READS = "degraded-reads"
#: Structured protocol tracing (``store.attach_tracer()``).
CAP_TRACING = "tracing"
#: The protocol exposes a DC-stability notion (``GetResult.stable`` is
#: meaningful rather than constant).
CAP_STABILITY = "stability"
#: Servers can be backed by the append-only durable log store.
CAP_DURABLE_STORAGE = "durable-storage"
#: Stability is driven by the clock plane (HLC stamps + periodic
#: stability vectors) instead of per-write notification streams.
CAP_CLOCK_STABILITY = "clock-stability"
#: The deployment is running on the mypyc-compiled kernel backend
#: (``ChainReactionConfig.kernel``; semantics identical to pure python,
#: only speed differs — see repro.sim.backend).
CAP_COMPILED_KERNEL = "compiled-kernel"


@dataclasses.dataclass(frozen=True)
class GetResult:
    """Outcome of a read.

    ``value`` is None when the key is absent (or deleted); ``version``
    is then the zero vector. ``stable`` reports whether the returned
    version was already DC-stable where supported (protocols without a
    stability notion report True). ``degraded`` marks a read served in
    degraded mode: the preferred replicas were unreachable and the
    value may predate versions this session already observed — the
    fault-tolerance trade the client makes explicit instead of raising.
    """

    key: str
    value: Any
    version: VersionVector
    stable: bool = True
    served_by: str = ""
    degraded: bool = False


@dataclasses.dataclass(frozen=True)
class PutResult:
    """Outcome of a write: the version the system assigned to it."""

    key: str
    version: VersionVector
    stable: bool = False
    acked_by: str = ""


@dataclasses.dataclass(frozen=True)
class SnapshotResult:
    """Outcome of a causally consistent multi-key read.

    ``values``/``versions`` cover every requested key (absent keys map
    to None / the zero vector). ``rounds`` reports how many read rounds
    the snapshot needed to become mutually consistent.
    """

    values: Dict[str, Any]
    versions: Dict[str, VersionVector]
    rounds: int = 1

    def __getitem__(self, key: str) -> Any:
        return self.values[key]


class ClientSession:
    """One sequential client of a datastore.

    Sessions are context managers::

        with store.session() as alice:
            fut = alice.put("photo", "beach.jpg")
            store.run(until=1.0)

    After :meth:`close`, issuing operations raises
    :class:`~repro.errors.SessionClosedError`.
    """

    #: Stable identifier used by the history checker to group operations.
    session_id: str

    #: True once :meth:`close` ran; closed sessions reject operations.
    closed: bool = False

    def get(self, key: str) -> Future:
        """Read ``key``; resolves to :class:`GetResult`."""
        raise NotImplementedError

    def multi_get(self, keys: Sequence[str]) -> Future:
        """Causally consistent snapshot of several keys; resolves to
        :class:`SnapshotResult`. Optional — offered only by protocols
        advertising :data:`CAP_SNAPSHOT_READS`."""
        raise UnsupportedOperationError(
            f"{type(self).__name__} does not support snapshot reads "
            f"(check CAP_SNAPSHOT_READS in store.capabilities)"
        )

    def put(self, key: str, value: Any) -> Future:
        """Write ``key``; resolves to :class:`PutResult`."""
        raise NotImplementedError

    def delete(self, key: str) -> Future:
        """Delete ``key``; resolves to :class:`PutResult` (tombstone write)."""
        raise NotImplementedError

    def metadata_bytes(self) -> int:
        """Current wire size of the session's causality metadata (0 when
        the protocol keeps none). Drives the metadata-overhead experiment."""
        return 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release the session; idempotent. Subclasses extend this to
        detach from the network and fail in-flight operations."""
        self.closed = True

    def _check_open(self) -> None:
        if self.closed:
            raise SessionClosedError(f"session {getattr(self, 'session_id', '?')} is closed")

    def __enter__(self) -> "ClientSession":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


class Datastore:
    """A running deployment of one protocol."""

    #: Human-readable protocol name ("chainreaction", "chain", ...).
    name: str

    #: Optional features this deployment supports (``CAP_*`` strings).
    capabilities: frozenset = frozenset()

    def session(self, site: Optional[str] = None, session_id: Optional[str] = None) -> ClientSession:
        """Open a new client session homed in ``site`` (default: first site)."""
        raise NotImplementedError

    def sessions(self) -> List[ClientSession]:
        """Every session opened on this deployment that is still open."""
        return [s for s in getattr(self, "_sessions", []) if not s.closed]

    def shutdown(self) -> None:
        """Close every open session. Idempotent; the deployment itself
        (servers, managers) keeps running so post-shutdown inspection —
        convergence checks, audits — still works."""
        for session in self.sessions():
            session.close()

    def __enter__(self) -> "Datastore":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.shutdown()

    @property
    def sites(self) -> List[str]:
        raise NotImplementedError

    def servers(self, site: Optional[str] = None) -> List[Any]:
        """The server actors (for failure injection and state inspection)."""
        raise NotImplementedError

    def converged(self, key: str) -> bool:
        """True when every replica of ``key`` holds an identical record —
        the convergence half of causal+, used by tests and E10."""
        raise NotImplementedError
