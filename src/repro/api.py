"""Protocol-agnostic datastore API.

Workload drivers, consistency checkers, examples, and benchmarks are all
written against these two abstractions, so every protocol in the
repository — ChainReaction and the baselines — is interchangeable under
the same harness:

- :class:`Datastore` — a running deployment (servers, managers,
  geo-proxies) from which client sessions are opened.
- :class:`ClientSession` — a sequential client. Operations return
  :class:`~repro.sim.process.Future` objects resolving to
  :class:`GetResult` / :class:`PutResult`, because everything executes
  on the discrete-event simulator.

Sessions are *not* thread-safe in the distributed-systems sense: like
the paper's client library, a session has at most one outstanding
operation; concurrency comes from opening many sessions.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, List, Optional, Sequence

from repro.sim.process import Future
from repro.storage.version import VersionVector

__all__ = ["GetResult", "PutResult", "SnapshotResult", "ClientSession", "Datastore"]


@dataclasses.dataclass(frozen=True)
class GetResult:
    """Outcome of a read.

    ``value`` is None when the key is absent (or deleted); ``version``
    is then the zero vector. ``stable`` reports whether the returned
    version was already DC-stable where supported (protocols without a
    stability notion report True).
    """

    key: str
    value: Any
    version: VersionVector
    stable: bool = True
    served_by: str = ""


@dataclasses.dataclass(frozen=True)
class PutResult:
    """Outcome of a write: the version the system assigned to it."""

    key: str
    version: VersionVector
    stable: bool = False
    acked_by: str = ""


@dataclasses.dataclass(frozen=True)
class SnapshotResult:
    """Outcome of a causally consistent multi-key read.

    ``values``/``versions`` cover every requested key (absent keys map
    to None / the zero vector). ``rounds`` reports how many read rounds
    the snapshot needed to become mutually consistent.
    """

    values: Dict[str, Any]
    versions: Dict[str, VersionVector]
    rounds: int = 1

    def __getitem__(self, key: str) -> Any:
        return self.values[key]


class ClientSession:
    """One sequential client of a datastore."""

    #: Stable identifier used by the history checker to group operations.
    session_id: str

    def get(self, key: str) -> Future:
        """Read ``key``; resolves to :class:`GetResult`."""
        raise NotImplementedError

    def multi_get(self, keys: Sequence[str]) -> Future:
        """Causally consistent snapshot of several keys; resolves to
        :class:`SnapshotResult`. Optional — protocols without snapshot
        support raise NotImplementedError."""
        raise NotImplementedError

    def put(self, key: str, value: Any) -> Future:
        """Write ``key``; resolves to :class:`PutResult`."""
        raise NotImplementedError

    def delete(self, key: str) -> Future:
        """Delete ``key``; resolves to :class:`PutResult` (tombstone write)."""
        raise NotImplementedError

    def metadata_bytes(self) -> int:
        """Current wire size of the session's causality metadata (0 when
        the protocol keeps none). Drives the metadata-overhead experiment."""
        return 0


class Datastore:
    """A running deployment of one protocol."""

    #: Human-readable protocol name ("chainreaction", "chain", ...).
    name: str

    def session(self, site: Optional[str] = None, session_id: Optional[str] = None) -> ClientSession:
        """Open a new client session homed in ``site`` (default: first site)."""
        raise NotImplementedError

    @property
    def sites(self) -> List[str]:
        raise NotImplementedError

    def servers(self, site: Optional[str] = None) -> List[Any]:
        """The server actors (for failure injection and state inspection)."""
        raise NotImplementedError

    def converged(self, key: str) -> bool:
        """True when every replica of ``key`` holds an identical record —
        the convergence half of causal+, used by tests and E10."""
        raise NotImplementedError
