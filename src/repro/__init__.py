"""ChainReaction reproduction (Almeida, Leitao, Rodrigues - EuroSys 2013).

A causal+ consistent key-value datastore built on a chain-replication
variant, reproduced end-to-end on a deterministic discrete-event
simulator, together with the baselines, workloads, consistency
checkers, and benchmark harness the paper's evaluation needs.

Quickstart::

    from repro import ChainReactionConfig, ChainReactionStore

    store = ChainReactionStore(ChainReactionConfig(servers_per_site=6))
    alice = store.session()
    fut = alice.put("photo", "beach.jpg")
    store.run(until=1.0)
    print(fut.result())
"""

from repro.api import ClientSession, Datastore, GetResult, PutResult
from repro.core import ChainReactionConfig, ChainReactionStore
from repro.errors import ReproError

__version__ = "1.0.0"

__all__ = [
    "ChainReactionConfig",
    "ChainReactionStore",
    "Datastore",
    "ClientSession",
    "GetResult",
    "PutResult",
    "ReproError",
    "__version__",
]
