"""YCSB-style workload generation and closed-loop execution."""

from repro.workload.distributions import (
    KeyChooser,
    LatestKeys,
    ScrambledZipfianKeys,
    UniformKeys,
    ZipfianKeys,
)
from repro.workload.driver import RunResult, SessionDriver, WorkloadRunner
from repro.workload.probes import ProbeConfig, run_causality_probe, run_relay_probe
from repro.workload.ycsb import WORKLOADS, WorkloadSpec, workload

__all__ = [
    "WorkloadSpec",
    "WORKLOADS",
    "workload",
    "WorkloadRunner",
    "SessionDriver",
    "RunResult",
    "ProbeConfig",
    "run_causality_probe",
    "run_relay_probe",
    "KeyChooser",
    "UniformKeys",
    "ZipfianKeys",
    "ScrambledZipfianKeys",
    "LatestKeys",
]
