"""YCSB-style workload specifications.

A :class:`WorkloadSpec` fixes the operation mix, keyspace size, request
distribution, and value size; the standard workload letters the paper's
evaluation uses are predefined:

========  =============================  ==================
workload  mix                            distribution
========  =============================  ==================
A         50% read / 50% update          scrambled zipfian
B         95% read / 5% update           scrambled zipfian
C         100% read                      scrambled zipfian
D         95% read / 5% insert           latest
========  =============================  ==================
"""

from __future__ import annotations

import dataclasses
import random
from typing import Dict, Tuple

from repro.errors import ConfigError
from repro.storage.version import intern_str
from repro.workload.distributions import (
    HotShardKeys,
    KeyChooser,
    LatestKeys,
    ScrambledZipfianKeys,
    UniformKeys,
    ZipfianKeys,
)

__all__ = ["WorkloadSpec", "WORKLOADS", "workload"]

_DISTRIBUTIONS = {
    "uniform": UniformKeys,
    "zipfian": ZipfianKeys,
    "scrambled": ScrambledZipfianKeys,
    "latest": LatestKeys,
}


@dataclasses.dataclass(frozen=True)
class WorkloadSpec:
    """One workload: mix proportions must sum to 1."""

    name: str
    read_proportion: float
    update_proportion: float
    insert_proportion: float = 0.0
    record_count: int = 1000
    distribution: str = "scrambled"
    value_size: int = 128
    key_prefix: str = "user"
    #: "hotshard" only: explicit key indices absorbing ``hot_fraction``
    #: of the traffic (tuple so the spec stays frozen/hashable)
    hot_indexes: Tuple[int, ...] = ()
    hot_fraction: float = 0.8

    def __post_init__(self) -> None:
        total = self.read_proportion + self.update_proportion + self.insert_proportion
        if abs(total - 1.0) > 1e-9:
            raise ConfigError(f"proportions sum to {total}, expected 1.0")
        if self.record_count < 1:
            raise ConfigError("record_count must be >= 1")
        if self.distribution == "hotshard":
            if not self.hot_indexes:
                raise ConfigError("hotshard distribution requires hot_indexes")
            if not 0.0 < self.hot_fraction <= 1.0:
                raise ConfigError(
                    f"hot_fraction must be in (0, 1], got {self.hot_fraction}"
                )
        elif self.distribution not in _DISTRIBUTIONS:
            raise ConfigError(
                f"unknown distribution {self.distribution!r}; "
                f"choose from {sorted(_DISTRIBUTIONS) + ['hotshard']}"
            )
        if self.value_size < 1:
            raise ConfigError("value_size must be >= 1")

    def key(self, index: int) -> str:
        # Interned: every op used to build a fresh key string, and those
        # strings end up retained in records, dep tables, and stability
        # trackers on every replica — one shared object per key instead.
        return intern_str(f"{self.key_prefix}{index:08d}")

    def make_chooser(self, n: int) -> KeyChooser:
        if self.distribution == "hotshard":
            return HotShardKeys(n, self.hot_indexes, self.hot_fraction)
        return _DISTRIBUTIONS[self.distribution](n)

    def choose_op(self, rng: random.Random) -> str:
        roll = rng.random()
        if roll < self.read_proportion:
            return "get"
        if roll < self.read_proportion + self.update_proportion:
            return "update"
        return "insert"

    def with_updates(self, **changes: object) -> "WorkloadSpec":
        return dataclasses.replace(self, **changes)  # type: ignore[arg-type]


WORKLOADS: Dict[str, WorkloadSpec] = {
    "A": WorkloadSpec("A", read_proportion=0.5, update_proportion=0.5),
    "B": WorkloadSpec("B", read_proportion=0.95, update_proportion=0.05),
    "C": WorkloadSpec("C", read_proportion=1.0, update_proportion=0.0),
    "D": WorkloadSpec(
        "D",
        read_proportion=0.95,
        update_proportion=0.0,
        insert_proportion=0.05,
        distribution="latest",
    ),
}


def workload(name: str, **changes: object) -> WorkloadSpec:
    """Fetch a standard workload, optionally adjusted (e.g. record_count)."""
    if name not in WORKLOADS:
        raise ConfigError(f"unknown workload {name!r}; choose from {sorted(WORKLOADS)}")
    spec = WORKLOADS[name]
    return spec.with_updates(**changes) if changes else spec
