"""Causality-probe workload for the consistency-anomaly experiment (E10).

The probe reproduces the photo-album pattern the causal-consistency
literature uses: a *writer* updates object ``a`` and then object ``b``
(so ``b`` causally depends on ``a``), while *readers* — deliberately in
remote datacenters when there are several — read ``b`` first and then
``a``. Under causal+ semantics a reader that observes the new ``b``
must observe at least the corresponding ``a``; under weaker protocols it
frequently does not. The recorded history goes through the causal and
session checkers, whose violation counts form the E10 table.
"""

from __future__ import annotations

import dataclasses
from typing import List

from repro.api import Datastore
from repro.checker.history import GET, PUT, History
from repro.errors import ReproError
from repro.sim.process import spawn

__all__ = ["ProbeConfig", "run_causality_probe", "run_relay_probe"]


@dataclasses.dataclass(frozen=True)
class ProbeConfig:
    """Shape of the probe run."""

    n_pairs: int = 20
    rounds: int = 25
    n_readers: int = 4
    write_gap: float = 0.002
    read_gap: float = 0.001


def _writer_loop(sim, session, history: History, config: ProbeConfig, pair: int):
    """Alternately update a_<pair> then b_<pair>, round after round."""
    key_a, key_b = f"a{pair:04d}", f"b{pair:04d}"
    for round_no in range(config.rounds):
        for key in (key_a, key_b):
            t0 = sim.now
            try:
                res = yield session.put(key, f"r{round_no}")
            except ReproError:
                continue
            history.add(session.session_id, PUT, key, f"r{round_no}", res.version, t0, sim.now)
            yield config.write_gap
    return config.rounds


def _reader_loop(sim, session, history: History, config: ProbeConfig, stop_at: float):
    """Round-robin the pairs, always reading b before a."""
    pair = 0
    while sim.now < stop_at:
        key_b, key_a = f"b{pair % config.n_pairs:04d}", f"a{pair % config.n_pairs:04d}"
        pair += 1
        for key in (key_b, key_a):
            t0 = sim.now
            try:
                res = yield session.get(key)
            except ReproError:
                continue
            history.add(session.session_id, GET, key, res.value, res.version, t0, sim.now)
            yield config.read_gap
    return pair


def _relay_loop(sim, writer, relay, reader, history: History, config: ProbeConfig, pair: int):
    """Three-DC transitive causality: write in DC0, read+write in DC1, read in DC2.

    ``b`` causally depends on ``a`` *through a different datacenter*, so
    ``b`` reaches DC2 over the dc1→dc2 link while ``a`` arrives over
    dc0→dc2. Only dependency-checked delivery keeps them ordered there —
    FIFO shipping cannot, which is exactly what the geo-causal-delivery
    ablation (DESIGN.md §6.4) needs to expose.
    """
    key_a, key_b = f"ra{pair:04d}", f"rb{pair:04d}"
    for round_no in range(config.rounds):
        t0 = sim.now
        try:
            res = yield writer.put(key_a, f"r{round_no}")
        except ReproError:
            continue
        history.add(writer.session_id, PUT, key_a, f"r{round_no}", res.version, t0, sim.now)

        # Relay in DC1: poll until the new a is visible, then write b.
        observed = None
        for _poll in range(200):
            t0 = sim.now
            try:
                got = yield relay.get(key_a)
            except ReproError:
                continue
            history.add(relay.session_id, GET, key_a, got.value, got.version, t0, sim.now)
            if got.value == f"r{round_no}":
                observed = got
                break
            yield config.read_gap
        if observed is None:
            continue
        t0 = sim.now
        try:
            res = yield relay.put(key_b, f"r{round_no}")
        except ReproError:
            continue
        history.add(relay.session_id, PUT, key_b, f"r{round_no}", res.version, t0, sim.now)

        # Reader in DC2 races the two WAN links: b first, then a.
        for _probe in range(30):
            for key in (key_b, key_a):
                t0 = sim.now
                try:
                    got = yield reader.get(key)
                except ReproError:
                    continue
                history.add(reader.session_id, GET, key, got.value, got.version, t0, sim.now)
            yield config.read_gap
    return config.rounds


def run_relay_probe(store: Datastore, config: ProbeConfig = ProbeConfig()) -> History:
    """Transitive cross-DC causality probe; requires >= 3 sites.

    Returns the recorded history; feed it to
    :func:`~repro.checker.causal.check_causal`.
    """
    sites = store.sites
    if len(sites) < 3:
        raise ValueError(f"relay probe needs >= 3 sites, got {sites}")
    sim = store.sim
    history = History()
    procs = []
    for pair in range(config.n_pairs):
        writer = store.session(site=sites[0], session_id=f"relay-w{pair}")
        relay = store.session(site=sites[1], session_id=f"relay-m{pair}")
        reader = store.session(site=sites[2], session_id=f"relay-r{pair}")
        procs.append(
            spawn(
                sim,
                _relay_loop(sim, writer, relay, reader, history, config, pair),
                name=f"relay{pair}",
            )
        )
    # WAN hops bound each round; budget generously and stop when done.
    deadline = sim.now + config.rounds * 2.0 + 10.0
    sim.run(until=deadline)
    return history


def run_causality_probe(store: Datastore, config: ProbeConfig = ProbeConfig()) -> History:
    """Drive the probe against ``store`` and return the recorded history.

    Writers run in the first site; readers are spread over the *other*
    sites when the deployment is geo-replicated (that is where weaker
    protocols show anomalies), or share the writers' site otherwise.
    """
    sim = store.sim
    history = History()
    sites = store.sites
    reader_sites = sites[1:] or sites

    writer_procs = []
    for pair in range(config.n_pairs):
        session = store.session(site=sites[0], session_id=f"writer{pair}")
        writer_procs.append(
            spawn(sim, _writer_loop(sim, session, history, config, pair), name=f"w{pair}")
        )

    # Budget enough virtual time for every write round plus slack.
    stop_at = sim.now + config.rounds * (config.write_gap + 0.05) * 2 + 1.0
    reader_procs = []
    for i in range(config.n_readers):
        session = store.session(
            site=reader_sites[i % len(reader_sites)], session_id=f"reader{i}"
        )
        reader_procs.append(
            spawn(sim, _reader_loop(sim, session, history, config, stop_at), name=f"r{i}")
        )

    sim.run(until=stop_at + 2.0)
    return history
