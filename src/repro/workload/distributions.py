"""Key-popularity distributions (YCSB-compatible).

The paper drives its evaluation with YCSB workloads, whose request
distributions are reproduced here:

- :class:`UniformKeys` — uniform over the keyspace,
- :class:`ZipfianKeys` — Gray's rejection-free zipfian generator (the
  YCSB algorithm), giving the skewed popularity that creates hot chains,
- :class:`ScrambledZipfianKeys` — zipfian ranks hashed over the
  keyspace, so the hot keys are not clustered on one ring segment,
- :class:`LatestKeys` — zipfian over recency, for YCSB workload D,
- :class:`HotShardKeys` — an explicit hot set absorbs a fixed fraction
  of the traffic, the rest uniform; the partial-replication experiment
  uses it to concentrate load on chosen keyspace *shards* (zipfian
  popularity hashes keys uniformly over shards, so shard-level skew
  needs shard-aware hot sets).
"""

from __future__ import annotations

import math
import random
from typing import Sequence

__all__ = [
    "KeyChooser",
    "UniformKeys",
    "ZipfianKeys",
    "ScrambledZipfianKeys",
    "LatestKeys",
    "HotShardKeys",
]

_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3


def _fnv64(value: int) -> int:
    """FNV-1a over the 8 bytes of ``value`` — YCSB's scrambling hash."""
    h = _FNV_OFFSET
    for _ in range(8):
        h ^= value & 0xFF
        h = (h * _FNV_PRIME) & 0xFFFFFFFFFFFFFFFF
        value >>= 8
    return h


class KeyChooser:
    """Chooses key indices in ``[0, n)``."""

    def __init__(self, n: int):
        if n < 1:
            raise ValueError(f"keyspace must have >= 1 key, got {n}")
        self.n = n

    def choose(self, rng: random.Random) -> int:
        raise NotImplementedError


class UniformKeys(KeyChooser):
    def choose(self, rng: random.Random) -> int:
        return rng.randrange(self.n)


class ZipfianKeys(KeyChooser):
    """Zipfian over ``[0, n)`` with parameter ``theta`` (default 0.99).

    Implements the Gray et al. "Quickly generating billion-record
    synthetic databases" algorithm used verbatim by YCSB: constant-time
    sampling after an O(n) zeta precomputation.
    """

    def __init__(self, n: int, theta: float = 0.99):
        super().__init__(n)
        if not 0 < theta < 1:
            raise ValueError(f"theta must be in (0, 1), got {theta}")
        self.theta = theta
        self._zeta_n = sum(1.0 / (i**theta) for i in range(1, n + 1))
        self._zeta_2 = 1.0 + 0.5**theta
        self._alpha = 1.0 / (1.0 - theta)
        if n > 2:
            self._eta = (1.0 - (2.0 / n) ** (1.0 - theta)) / (
                1.0 - self._zeta_2 / self._zeta_n
            )
        else:
            # For n <= 2 every draw is resolved by the first two branches
            # of choose(); eta is never consulted.
            self._eta = 0.0

    def choose(self, rng: random.Random) -> int:
        u = rng.random()
        uz = u * self._zeta_n
        if uz < 1.0:
            return 0
        if uz < self._zeta_2:
            return 1
        return int(self.n * math.pow(self._eta * u - self._eta + 1.0, self._alpha))


class ScrambledZipfianKeys(ZipfianKeys):
    """Zipfian ranks spread over the keyspace by hashing (YCSB default).

    Without scrambling the most popular keys are consecutive indices,
    which consistent hashing would happen to co-locate or not in an
    arbitrary way; hashing makes popularity independent of placement.
    """

    def choose(self, rng: random.Random) -> int:
        rank = super().choose(rng)
        return _fnv64(rank) % self.n


class LatestKeys(KeyChooser):
    """Zipfian over recency: index ``n-1`` is the most popular (YCSB D)."""

    def __init__(self, n: int, theta: float = 0.99):
        super().__init__(n)
        self._zipf = ZipfianKeys(n, theta)

    def choose(self, rng: random.Random) -> int:
        return self.n - 1 - self._zipf.choose(rng)


class HotShardKeys(KeyChooser):
    """A fixed hot set takes ``hot_fraction`` of the draws, uniformly;
    the remainder is uniform over the whole keyspace.

    The hot set is an explicit index tuple so a caller can align it
    with any partitioning — e.g. every key of a handful of placement
    shards — rather than relying on rank popularity, which scrambling
    (and shard hashing) spreads uniformly across partitions.
    """

    def __init__(self, n: int, hot_indexes: Sequence[int], hot_fraction: float = 0.8):
        super().__init__(n)
        if not hot_indexes:
            raise ValueError("hot_indexes must be non-empty")
        bad = [i for i in hot_indexes if not 0 <= i < n]
        if bad:
            raise ValueError(f"hot indexes {bad[:3]} outside keyspace [0, {n})")
        if not 0.0 < hot_fraction <= 1.0:
            raise ValueError(f"hot_fraction must be in (0, 1], got {hot_fraction}")
        self.hot_indexes = tuple(hot_indexes)
        self.hot_fraction = hot_fraction

    def choose(self, rng: random.Random) -> int:
        if rng.random() < self.hot_fraction:
            return self.hot_indexes[rng.randrange(len(self.hot_indexes))]
        return rng.randrange(self.n)
