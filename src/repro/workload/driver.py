"""Closed-loop workload execution.

One :class:`SessionDriver` per client session runs the YCSB-style loop —
choose an operation, execute it, record latency/history, repeat — and a
:class:`WorkloadRunner` orchestrates a whole experiment: preload the
keyspace, open N sessions spread over the datacenters, run for a warm-up
period plus a measured window, then drain and aggregate into a
:class:`RunResult`.

All drivers are closed-loop (one outstanding request per client), which
is how YCSB loads a store: offered load rises with the client count,
the x-axis of the paper's throughput figures.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.api import ClientSession, Datastore
from repro.checker.history import GET, PUT, History
from repro.errors import ReproError
from repro.metrics.reservoir import LatencyReservoir
from repro.metrics.series import ThroughputTimeline
from repro.sim.process import Process, spawn
from repro.workload.ycsb import WorkloadSpec

__all__ = ["RunResult", "SessionDriver", "WorkloadRunner"]


@dataclasses.dataclass
class RunResult:
    """Everything one workload run produced."""

    protocol: str
    workload: str
    n_clients: int
    duration: float
    ops_completed: int
    throughput: float
    get_latency: LatencyReservoir
    put_latency: LatencyReservoir
    timeline: ThroughputTimeline
    history: History
    errors: int
    metadata_bytes: LatencyReservoir
    #: the live deployment; None when the result crossed a process
    #: boundary (parallel sweeps strip it — actors are not picklable)
    store: Optional[Datastore]

    def summary_row(self) -> Dict[str, Any]:
        return {
            "protocol": self.protocol,
            "workload": self.workload,
            "clients": self.n_clients,
            "throughput_ops_s": self.throughput,
            "get_p50_ms": self.get_latency.percentile(50) * 1000,
            "get_p99_ms": self.get_latency.percentile(99) * 1000,
            "put_p50_ms": self.put_latency.percentile(50) * 1000,
            "put_p99_ms": self.put_latency.percentile(99) * 1000,
            "errors": self.errors,
        }


class SessionDriver:
    """Closed-loop client: one operation at a time until ``stop_at``."""

    def __init__(
        self,
        session: ClientSession,
        spec: WorkloadSpec,
        rng,
        stop_at: float,
        measure_from: float,
        result: "RunResult",
        record_history: bool = True,
    ):
        self.session = session
        self.spec = spec
        self.rng = rng
        self.stop_at = stop_at
        self.measure_from = measure_from
        self.result = result
        self.record_history = record_history
        self._chooser = spec.make_chooser(spec.record_count)
        self._insert_count = [spec.record_count]
        self._op_seq = 0
        self.process: Optional[Process] = None

    def start(self, sim) -> Process:
        self.process = spawn(sim, self._loop(sim), name=f"driver:{self.session.session_id}")
        return self.process

    def _payload(self) -> str:
        """A unique value padded to the workload's value size."""
        self._op_seq += 1
        stamp = f"{self.session.session_id}#{self._op_seq}:"
        return stamp + "x" * max(0, self.spec.value_size - len(stamp))

    def _next_request(self):
        op = self.spec.choose_op(self.rng)
        if op == "get":
            return GET, self.spec.key(self._chooser.choose(self.rng))
        if op == "update":
            return PUT, self.spec.key(self._chooser.choose(self.rng))
        # insert: extend the keyspace (workload D)
        index = self._insert_count[0]
        self._insert_count[0] += 1
        return PUT, self.spec.key(index)

    def _loop(self, sim):
        while sim.now < self.stop_at:
            op, key = self._next_request()
            t_invoke = sim.now
            try:
                if op == GET:
                    outcome = yield self.session.get(key)
                else:
                    outcome = yield self.session.put(key, self._payload())
            except ReproError as exc:
                self._op_failed(op, key, exc, measured=sim.now >= self.measure_from)
                continue
            t_return = sim.now
            if t_return < self.measure_from:
                continue  # warm-up
            self._record(op, key, outcome, t_invoke, t_return)
        return self._op_seq

    def _op_failed(self, op: str, key: str, exc: ReproError, measured: bool) -> None:
        """Hook: one operation exhausted its retry budget (overridden by
        the fault-campaign driver for per-outcome accounting)."""
        if measured:
            self.result.errors += 1

    def _record(self, op: str, key: str, outcome, t_invoke: float, t_return: float) -> None:
        latency = t_return - t_invoke
        self.result.ops_completed += 1
        self.result.timeline.record(t_return)
        if op == GET:
            self.result.get_latency.add(latency)
            value, version = outcome.value, outcome.version
        else:
            self.result.put_latency.add(latency)
            value, version = None, outcome.version
        self.result.metadata_bytes.add(float(self.session.metadata_bytes()))
        if self.record_history:
            self.result.history.add(
                session=self.session.session_id,
                op=op,
                key=key,
                value=value,
                version=version,
                t_invoke=t_invoke,
                t_return=t_return,
                site=getattr(self.session, "site", ""),
            )


class WorkloadRunner:
    """Run one (store, workload, client count) experiment to completion."""

    def __init__(
        self,
        store: Datastore,
        spec: WorkloadSpec,
        n_clients: int,
        duration: float = 5.0,
        warmup: float = 0.5,
        drain: float = 2.0,
        record_history: bool = True,
        preload_value: str = "initial",
        driver_factory: Optional[Any] = None,
        reservoir_capacity: int = 50_000,
        client_slots: Optional[Sequence[Tuple[int, str]]] = None,
    ):
        self.store = store
        self.spec = spec
        self.n_clients = n_clients
        self.duration = duration
        self.warmup = warmup
        self.drain = drain
        self.record_history = record_history
        self.preload_value = preload_value
        #: which (global client index, site) pairs THIS runner drives.
        #: None = all of them, assigned round-robin over the store's
        #: sites — the classic single-process experiment. A shard of a
        #: parallel run passes only the slots whose site it owns, with
        #: the *global* index preserved so rng streams and session ids
        #: match the single-process assignment exactly.
        self.client_slots = client_slots
        #: latency/metadata reservoir size; memory-sensitive harnesses
        #: (the scale bench) shrink it so samples don't drown the store
        self.reservoir_capacity = reservoir_capacity
        #: constructs one driver per client (keyword args of SessionDriver);
        #: the fault-campaign engine swaps in its accounting driver here
        self.driver_factory = driver_factory or SessionDriver
        self.drivers: List[SessionDriver] = []
        self.stop_at = 0.0
        self._result: Optional[RunResult] = None

    def setup(self) -> RunResult:
        """Preload the keyspace and start every driver; returns the
        (still-empty) result. Split from :meth:`run` so the parallel
        engine can start a shard's drivers and then advance the
        simulator itself, window by window."""
        sim = self.store.sim  # every deployment exposes its simulator
        start = sim.now
        result = RunResult(
            protocol=self.store.name,
            workload=self.spec.name,
            n_clients=self.n_clients,
            duration=self.duration,
            ops_completed=0,
            throughput=0.0,
            get_latency=LatencyReservoir(self.reservoir_capacity, seed=2),
            put_latency=LatencyReservoir(self.reservoir_capacity, seed=3),
            timeline=ThroughputTimeline(bucket_width=0.1),
            history=History(),
            errors=0,
            metadata_bytes=LatencyReservoir(self.reservoir_capacity, seed=4),
            store=self.store,
        )
        self._result = result

        pad = "y" * self.spec.value_size
        self.store.preload(
            {self.spec.key(i): pad for i in range(self.spec.record_count)}
        )

        sites = self.store.sites
        self.stop_at = start + self.warmup + self.duration
        measure_from = start + self.warmup
        if self.client_slots is None:
            slots = [(i, sites[i % len(sites)], None) for i in range(self.n_clients)]
        else:
            # Name sessions by their global index so a shard's sessions
            # are indistinguishable from the same clients in a
            # single-process run (session ids seed client rng streams
            # and label histories).
            slots = [(i, site, f"client{i + 1}") for i, site in self.client_slots]
            result.n_clients = len(slots)
        for i, site, session_id in slots:
            session = self.store.session(site=site, session_id=session_id)
            driver = self.driver_factory(
                session=session,
                spec=self.spec,
                rng=self.store.rng.stream(f"driver:{i}"),
                stop_at=self.stop_at,
                measure_from=measure_from,
                result=result,
                record_history=self.record_history,
            )
            self.drivers.append(driver)
            driver.start(sim)
        return result

    def finalize(self) -> RunResult:
        """Close sessions and fill derived fields once the simulator has
        been advanced past ``stop_at`` plus the drain."""
        result = self._result
        result.throughput = result.ops_completed / self.duration
        # Drivers are done: release their sessions so late replies are
        # dropped rather than delivered to finished clients. (After the
        # drain no further events fire, so determinism is unaffected.)
        for driver in self.drivers:
            driver.session.close()
        return result

    def run(self) -> RunResult:
        self.setup()
        self.store.sim.run(until=self.stop_at + self.drain)
        return self.finalize()
