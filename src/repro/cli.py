"""Command-line interface: run workloads and consistency checks from a shell.

Eight subcommands, mirroring how the paper's evaluation is exercised:

- ``repro run`` — drive a YCSB workload against any protocol and print
  the throughput/latency summary (optionally with a consistency audit
  and staleness analysis of the recorded history);
- ``repro consistency`` — run the geo causality probe against one or
  more protocols and print the anomaly table (experiment E10);
- ``repro perf`` — run the hot-path microbenchmarks (event kernel vs
  the seed baseline, network send, message sizing, end-to-end) and
  write the ``BENCH_*.json`` report; see ``docs/PERFORMANCE.md``;
- ``repro faults`` — run a named fault campaign (seeded crashes,
  partitions, slow links over a live deployment) and report the
  per-operation outcomes, availability phases, and invariant audit;
  see ``docs/FAULTS.md``;
- ``repro lint`` — run the determinism/protocol-invariant AST linter
  over the source tree (optionally plus the typing gate); see
  ``docs/ANALYSIS.md``;
- ``repro sanitize`` — run one experiment twice under the same seed and
  diff the message traces (the simulation race detector), optionally
  with the chain-invariant monitors attached; ``--workers N`` runs the
  same check through the multi-core sharded engine and additionally
  verifies the worker-count-invariance promise;
- ``repro explore`` — the bounded schedule explorer: enumerate every
  message-delivery interleaving and crash/recover placement a small
  named scope admits (partial-order reduced), check the chain-invariant
  monitors and the causal checker at every terminal state, and minimize
  any violation to a replayable counterexample schedule file; see
  ``docs/ANALYSIS.md`` for the proving-ground scenarios;
- ``repro info`` — show the protocols, workloads, and default deployment
  parameters available.

Reporting subcommands share two output flags: ``--format {text,json}``
selects human tables or a machine-readable JSON document, and
``--out FILE`` writes the report to a file instead of stdout (``perf``
always writes its BENCH report file; ``--out`` overrides the path).
``run``, ``faults``, and ``sanitize`` also accept ``--kernel
{auto,pure,compiled}`` selecting the event-kernel backend (``auto``
prefers the mypyc build when present, else pure; the ``REPRO_KERNEL``
environment variable steers ``auto``), and ``perf --kernel`` runs the
pure-vs-compiled A/B tier writing ``BENCH_PR9.json``.

Examples::

    python -m repro run --protocol chainreaction --workload B --clients 32
    python -m repro run --protocol eventual --sites dc0 dc1 --check
    python -m repro consistency --protocols chainreaction eventual
    python -m repro run --sites dc0 dc1 dc2 --replication-degree 2 --clients 9
    python -m repro perf --out BENCH_PR1.json
    python -m repro perf --protocol --out BENCH_PR4.json
    python -m repro perf --stability clock --out BENCH_PR8.json
    python -m repro perf --kernel --out BENCH_PR9.json
    python -m repro perf --partial --out BENCH_PR10.json
    python -m repro run --protocol chainreaction --kernel compiled --clients 32
    python -m repro faults --campaign crash-head --seed 7
    python -m repro faults --campaign crash-head --check-determinism --stability clock
    python -m repro lint --typing
    python -m repro sanitize --protocol chainreaction --invariants --format json
    python -m repro sanitize --stability notices+batch --invariants
    python -m repro sanitize --stability clock --workers 2
    python -m repro sanitize --workers 2
    python -m repro explore --scope smallest --budget 5000
    python -m repro explore --scope split_brain_mint --expect-violation --save bug.json
    python -m repro explore --replay bug.json
    python -m repro explore --replay bug.json --clean-tree
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

from repro.api import CAP_TRACING
from repro.baselines.registry import PROTOCOLS, build_store
from repro.checker import analyze_staleness, check_causal, check_session_guarantees
from repro.metrics import render_table
from repro.workload import (
    WORKLOADS,
    ProbeConfig,
    WorkloadRunner,
    run_causality_probe,
    workload,
)

__all__ = ["main", "build_parser"]

#: stabilization-plane selector values shared by run/faults/sanitize/perf
_PLANE_CHOICES = ("notices", "notices+batch", "clock")

#: kernel-backend selector values shared by run/faults/sanitize
_KERNEL_CHOICES = ("auto", "pure", "compiled")

#: one deprecation warning per process for the --batch alias
_batch_alias_warned = False


def _resolve_plane(args: argparse.Namespace, out) -> str:
    """Fold the deprecated ``--batch`` boolean into ``--stability``."""
    global _batch_alias_warned
    plane = getattr(args, "stability", None)
    if getattr(args, "batch", False):
        if not _batch_alias_warned:
            print(
                "warning: --batch is deprecated; use --stability notices+batch",
                file=out,
            )
            _batch_alias_warned = True
        if plane is None:
            plane = "notices+batch"
    return plane or "notices"


def _activate_cli_kernel(args: argparse.Namespace, out) -> Optional[str]:
    """Activate the ``--kernel`` backend; None (+ message) on bad request.

    Returns the concrete backend name (``pure``/``compiled``) on
    success. ``--kernel compiled`` without a build is the one failure
    mode (ConfigError) — report it instead of tracebacking.
    """
    from repro.errors import ConfigError
    from repro.sim.backend import activate_kernel

    try:
        return activate_kernel(getattr(args, "kernel", None))
    except ConfigError as exc:
        print(f"--kernel: {exc}", file=out)
        return None


def _placement_overrides(args: argparse.Namespace, out) -> Optional[Dict[str, Any]]:
    """Fold ``--replication-degree`` / ``--shards`` into config
    overrides; ``None`` (+ message) on misuse.

    Degree equal to the site count (or unset) keeps full replication —
    the default the golden trace pins.
    """
    overrides: Dict[str, Any] = {}
    degree = getattr(args, "replication_degree", None)
    shards = getattr(args, "shards", None)
    if degree is None and shards is None:
        return overrides
    if args.protocol not in ("chainreaction", "chain"):
        print(
            "--replication-degree/--shards apply to chainreaction/chain only",
            file=out,
        )
        return None
    if degree is not None:
        if not 1 <= degree <= len(args.sites):
            print(
                f"--replication-degree must be in [1, {len(args.sites)}] "
                f"for {len(args.sites)} site(s)",
                file=out,
            )
            return None
        overrides["replication_degree"] = degree
    if shards is not None:
        if shards < 1:
            print("--shards must be >= 1", file=out)
            return None
        overrides["num_shards"] = shards
    return overrides


def _plane_overrides(plane: str) -> Dict[str, Any]:
    """Config overrides selecting a stabilization plane."""
    if plane == "notices+batch":
        from repro.perf.protocol import BATCHED_OVERRIDES

        return dict(BATCHED_OVERRIDES)
    if plane == "clock":
        return {"stability": "clock"}
    return {}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ChainReaction (EuroSys'13) reproduction — workload and consistency runner",
    )
    # Shared by every reporting subcommand: how and where the report goes.
    output = argparse.ArgumentParser(add_help=False)
    output.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report as human-readable text or a JSON document (default: %(default)s)",
    )
    output.add_argument(
        "--out", metavar="FILE", default=None,
        help="write the report to FILE instead of stdout",
    )
    # Shared by run/faults/sanitize: which simulation-kernel backend to
    # run on (perf has its own --kernel, which runs the A/B tier).
    kernel_sel = argparse.ArgumentParser(add_help=False)
    kernel_sel.add_argument(
        "--kernel", choices=_KERNEL_CHOICES, default=None, metavar="BACKEND",
        help="simulation-kernel backend: auto (default; prefers the "
        "mypyc-compiled build when importable), pure, or compiled "
        "(errors when no build is present); REPRO_KERNEL sets the "
        "default — see docs/PERFORMANCE.md §9",
    )
    # Shared by run/sanitize: partial geo-replication placement.
    placement_sel = argparse.ArgumentParser(add_help=False)
    placement_sel.add_argument(
        "--replication-degree", type=int, default=None, metavar="R",
        help="owner DCs per keyspace shard; below the site count each DC "
        "replicates only its owned shards and forwards the rest to the "
        "primary owner (default: every DC owns everything); "
        "chainreaction/chain only — see DESIGN § placement-and-forwarding",
    )
    placement_sel.add_argument(
        "--shards", type=int, default=None, metavar="N",
        help="keyspace shard count for --replication-degree (default: 16)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser(
        "run", parents=[output, kernel_sel, placement_sel],
        help="drive a YCSB workload against one protocol",
    )
    run.add_argument("--protocol", choices=PROTOCOLS, default="chainreaction")
    run.add_argument("--workload", choices=sorted(WORKLOADS), default="B")
    run.add_argument("--clients", type=int, default=16)
    run.add_argument("--sites", nargs="+", default=["dc0"], metavar="SITE")
    run.add_argument("--servers", type=int, default=6, help="servers per site")
    run.add_argument("--chain-length", type=int, default=3, help="R, replicas per key")
    run.add_argument("--ack-k", type=int, default=2, help="k, eager ack depth")
    run.add_argument("--records", type=int, default=100, help="keyspace size")
    run.add_argument("--duration", type=float, default=2.0, help="measured virtual seconds")
    run.add_argument("--warmup", type=float, default=0.5)
    run.add_argument("--seed", type=int, default=42)
    run.add_argument(
        "--check",
        action="store_true",
        help="audit the recorded history (causal + session guarantees)",
    )
    run.add_argument(
        "--staleness",
        action="store_true",
        help="report read staleness of the recorded history",
    )
    run.add_argument(
        "--trace",
        metavar="KEY",
        help="print the protocol trace timeline for one key after the run",
    )
    run.add_argument(
        "--durable",
        action="store_true",
        help="back servers with the FAWN-KV-style append-only log store",
    )
    run.add_argument(
        "--stability", choices=_PLANE_CHOICES, default=None, metavar="PLANE",
        help="stabilization plane: notices (default), notices+batch "
        "(PR 4 coalescers + metadata GC), or clock (HLC + stability "
        "vectors); chainreaction/chain only",
    )
    run.add_argument(
        "--batch",
        action="store_true",
        help="deprecated alias for --stability notices+batch",
    )

    probe = sub.add_parser(
        "consistency", parents=[output],
        help="geo causality probe + anomaly table (experiment E10)",
    )
    probe.add_argument(
        "--protocols", nargs="+", choices=PROTOCOLS, default=list(PROTOCOLS)
    )
    probe.add_argument("--sites", nargs="+", default=["dc0", "dc1"], metavar="SITE")
    probe.add_argument("--pairs", type=int, default=10)
    probe.add_argument("--rounds", type=int, default=15)
    probe.add_argument("--seed", type=int, default=42)

    perf = sub.add_parser(
        "perf", parents=[output],
        help="hot-path microbenchmarks; writes a BENCH JSON report",
    )
    perf.add_argument(
        "--events", type=int, default=200_000,
        help="events per kernel microbenchmark run",
    )
    perf.add_argument("--repeats", type=int, default=3, help="runs per benchmark (best kept)")
    perf.add_argument(
        "--skip-e2e", action="store_true", help="skip the end-to-end simulation benchmark"
    )
    perf.add_argument(
        "--sweep", action="store_true",
        help="also time an E1-style sweep serial vs parallel (slower)",
    )
    perf.add_argument(
        "--sweep-workers", type=int, default=None, metavar="N",
        help="process-pool size for the --sweep parallel arm (default: one per point, capped at cpu count)",
    )
    perf.add_argument(
        "--profile", action="store_true",
        help="print the hottest functions of the end-to-end run (cProfile)",
    )
    perf.add_argument(
        "--protocol", action="store_true",
        help="also run the protocol-plane benchmark (batching + metadata GC on vs off)",
    )
    perf.add_argument(
        "--stability", choices=_PLANE_CHOICES, default=None, metavar="PLANE",
        help="run the stabilization-plane benchmark (notices vs clock A/B) "
        "and write BENCH_PR8.json; PLANE selects the arm the summary "
        "leads with",
    )
    perf.add_argument(
        "--scale", action="store_true",
        help="run the large-keyspace memory benchmark instead (current vs legacy layout)",
    )
    perf.add_argument(
        "--workers", nargs="+", type=int, default=None, metavar="N",
        help="with --scale: run the sharded parallel tier (one shard per DC) "
        "at each worker count; the first count is the digest/speedup baseline",
    )
    perf.add_argument(
        "--scale-records", type=int, default=None, metavar="KEYS",
        help="override the parallel tier's preloaded keyspace size",
    )
    perf.add_argument(
        "--scale-clients", type=int, default=None, metavar="N",
        help="override the parallel tier's closed-loop client count",
    )
    perf.add_argument(
        "--scale-duration", type=float, default=None, metavar="SECONDS",
        help="override the parallel tier's measured virtual duration",
    )
    perf.add_argument(
        "--scale-sites", nargs="+", default=None, metavar="SITE",
        help="override the parallel tier's datacenter list (one shard each)",
    )
    perf.add_argument(
        "--partial", action="store_true",
        help="run the partial geo-replication benchmark (replication "
        "degree A/B on a hot-shard workload) and write BENCH_PR10.json",
    )
    perf.add_argument(
        "--kernel", nargs="?", const="ab", default=None,
        choices=("ab", "pure", "compiled"), metavar="ARM",
        help="run the kernel-backend A/B tier (pure vs mypyc-compiled "
        "micro + end-to-end rates) and write BENCH_PR9.json; bare "
        "--kernel measures both arms when the compiled build exists, "
        "--kernel compiled additionally fails if it does not",
    )

    faults = sub.add_parser(
        "faults", parents=[output, kernel_sel],
        help="run a fault campaign: seeded crashes/partitions/slow links (docs/FAULTS.md)",
    )
    faults.add_argument(
        "--campaign", metavar="NAME",
        help="built-in campaign to run (see --list)",
    )
    faults.add_argument("--seed", type=int, default=42)
    faults.add_argument(
        "--clients", type=int, default=None,
        help="override the campaign's client count",
    )
    faults.add_argument(
        "--workload", choices=sorted(WORKLOADS), default=None,
        help="override the campaign's YCSB workload",
    )
    faults.add_argument(
        "--list", action="store_true",
        help="list the built-in campaigns and exit",
    )
    faults.add_argument(
        "--check-determinism", action="store_true",
        help="run the campaign twice under one seed and diff the message traces",
    )
    faults.add_argument(
        "--stability", choices=_PLANE_CHOICES, default=None, metavar="PLANE",
        help="run the campaign on a stabilization plane: notices (default), "
        "notices+batch, or clock",
    )
    faults.add_argument(
        "--batch", action="store_true",
        help="deprecated alias for --stability notices+batch",
    )

    lint = sub.add_parser(
        "lint", help="determinism/protocol-invariant AST linter (docs/ANALYSIS.md)"
    )
    lint.add_argument(
        "paths", nargs="*", metavar="PATH",
        help="files or directories to lint (default: the repro source tree)",
    )
    lint.add_argument(
        "--typing", action="store_true",
        help="also run the annotation gate (and mypy, when installed)",
    )

    sanitize = sub.add_parser(
        "sanitize", parents=[output, kernel_sel, placement_sel],
        help="race detector: run one experiment twice under one seed and diff traces",
    )
    sanitize.add_argument("--protocol", choices=PROTOCOLS, default="chainreaction")
    sanitize.add_argument("--workload", choices=sorted(WORKLOADS), default="B")
    sanitize.add_argument("--clients", type=int, default=4)
    sanitize.add_argument("--sites", nargs="+", default=["dc0"], metavar="SITE")
    sanitize.add_argument("--servers", type=int, default=4, help="servers per site")
    sanitize.add_argument("--chain-length", type=int, default=3)
    sanitize.add_argument("--records", type=int, default=25)
    sanitize.add_argument("--duration", type=float, default=0.4)
    sanitize.add_argument("--warmup", type=float, default=0.1)
    sanitize.add_argument("--seed", type=int, default=42)
    sanitize.add_argument(
        "--invariants", action="store_true",
        help="attach the chain prefix/stability/causal-cut monitors",
    )
    sanitize.add_argument(
        "--stability", choices=_PLANE_CHOICES, default=None, metavar="PLANE",
        help="sanitize on a stabilization plane: notices (default), "
        "notices+batch, or clock",
    )
    sanitize.add_argument(
        "--batch", action="store_true",
        help="deprecated alias for --stability notices+batch",
    )
    sanitize.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="run the check through the multi-core sharded engine on N "
        "worker processes (twice-run digest diff plus a workers=1 "
        "reference run); needs a multi-site deployment",
    )

    explore = sub.add_parser(
        "explore", parents=[output],
        help="bounded schedule explorer: enumerate delivery/fault interleavings "
        "of a small scope and check invariants at every terminal state",
    )
    explore.add_argument(
        "--scope", default="smallest", metavar="NAME",
        help="scenario to explore (see --list; default: %(default)s)",
    )
    explore.add_argument(
        "--list", action="store_true",
        help="list the built-in scenarios and exit",
    )
    explore.add_argument(
        "--clean", action="store_true",
        help="strip the scenario's seeded protocol mutation and explore the "
        "unmutated tree (must pass clean)",
    )
    explore.add_argument(
        "--budget", type=int, default=20000,
        help="cap on executed schedules + pruned prefixes (default: %(default)s)",
    )
    explore.add_argument(
        "--naive", action="store_true",
        help="full enumeration without partial-order reduction",
    )
    explore.add_argument(
        "--compare-naive", action="store_true",
        help="after the DPOR pass, re-enumerate naively under the same budget "
        "and report the pruning ratio",
    )
    explore.add_argument(
        "--save", metavar="FILE", default=None,
        help="on violation, minimize and save the counterexample schedule to FILE",
    )
    explore.add_argument(
        "--no-minimize", action="store_true",
        help="with --save: persist the counterexample as found, skipping "
        "delta-debugging minimization",
    )
    explore.add_argument(
        "--replay", metavar="FILE", default=None,
        help="replay a saved counterexample schedule instead of exploring",
    )
    explore.add_argument(
        "--clean-tree", action="store_true",
        help="with --replay: strip the schedule's mutations first and verify "
        "the violation no longer reproduces on the fixed tree",
    )
    explore.add_argument(
        "--expect-violation", action="store_true",
        help="proving-ground mode: exit 0 iff a violation IS found",
    )

    sub.add_parser("info", parents=[output], help="list protocols, workloads, and defaults")
    return parser


def _emit(args: argparse.Namespace, out, text: str, payload: Dict[str, Any]) -> None:
    """Deliver one report honoring the shared --format / --out flags."""
    rendered = (
        json.dumps(payload, indent=2, sort_keys=True, default=str)
        if args.format == "json"
        else text
    )
    if args.out:
        Path(args.out).write_text(rendered + "\n")
        print(f"report written to {args.out}", file=out)
    else:
        print(rendered, file=out)


def _cmd_run(args: argparse.Namespace, out) -> int:
    overrides: Dict[str, Any] = {}
    kernel = _activate_cli_kernel(args, out)
    if kernel is None:
        return 2
    if args.protocol in ("chainreaction", "chain"):
        # Pin the resolved backend into the store config so its own
        # (default "auto") resolution cannot override the CLI choice.
        overrides["kernel"] = kernel
    if args.durable:
        if args.protocol not in ("chainreaction", "chain"):
            print("--durable applies to chainreaction/chain only", file=out)
            return 2
        overrides["durable_storage"] = True
    plane = _resolve_plane(args, out)
    if plane != "notices":
        if args.protocol not in ("chainreaction", "chain"):
            print("--stability applies to chainreaction/chain only", file=out)
            return 2
        overrides.update(_plane_overrides(plane))
    placement = _placement_overrides(args, out)
    if placement is None:
        return 2
    overrides.update(placement)
    store = build_store(
        args.protocol,
        sites=tuple(args.sites),
        servers_per_site=args.servers,
        chain_length=args.chain_length,
        ack_k=args.ack_k,
        seed=args.seed,
        overrides=overrides or None,
    )
    tracer = None
    if args.trace:
        if CAP_TRACING not in store.capabilities:
            print(
                f"--trace needs CAP_TRACING, which {args.protocol!r} does not "
                "advertise (chainreaction/chain only)",
                file=out,
            )
            return 2
        tracer = store.attach_tracer()
    spec = workload(args.workload, record_count=args.records)
    runner = WorkloadRunner(
        store,
        spec,
        n_clients=args.clients,
        duration=args.duration,
        warmup=args.warmup,
        record_history=args.check or args.staleness,
    )
    print(
        f"running {args.protocol} / workload {args.workload} / {args.clients} clients "
        f"on {len(args.sites)} site(s) ...",
        file=out,
    )
    result = runner.run()
    payload: Dict[str, Any] = result.summary_row()
    payload["ops_completed"] = result.ops_completed
    payload["metadata_bytes_mean"] = result.metadata_bytes.mean()
    payload["kernel"] = kernel
    rows = [
        ("kernel backend", kernel),
        ("throughput (ops/s)", result.throughput),
        ("operations", result.ops_completed),
        ("errors", result.errors),
        ("GET p50 / p99 (ms)",
         f"{result.get_latency.percentile(50)*1000:.2f} / {result.get_latency.percentile(99)*1000:.2f}"),
        ("PUT p50 / p99 (ms)",
         f"{result.put_latency.percentile(50)*1000:.2f} / {result.put_latency.percentile(99)*1000:.2f}"),
        ("client metadata mean (B)", result.metadata_bytes.mean()),
    ]
    sections = [render_table(["metric", "value"], rows, title="results")]

    if args.check:
        causal = check_causal(result.history)
        sessions = check_session_guarantees(result.history)
        check_rows = [("causal", len(causal))] + [
            (name, len(violations)) for name, violations in sessions.items()
        ]
        payload["audit"] = {name: count for name, count in check_rows}
        sections.append(
            render_table(["guarantee", "violations"], check_rows, title="consistency audit")
        )
    if tracer is not None:
        timeline = tracer.format(key=args.trace, last=40) or "  (no events)"
        payload["trace"] = {"key": args.trace, "timeline": timeline.splitlines()}
        sections.append(f"trace for key {args.trace!r} (last 40 events):\n{timeline}")
    if args.staleness:
        report = analyze_staleness(result.history)
        summary = report.summary()
        payload["staleness"] = summary
        sections.append(
            render_table(
                ["metric", "value"],
                [
                    ("reads analysed", summary["reads"]),
                    ("fresh reads", f"{summary['fresh_fraction']*100:.1f}%"),
                    ("version lag p50 / p99",
                     f"{summary['version_lag_p50']:.1f} / {summary['version_lag_p99']:.1f}"),
                    ("time lag p99 (ms)", summary["time_lag_p99_ms"]),
                ],
                title="staleness",
            )
        )
    _emit(args, out, "\n\n".join(sections), payload)
    return 0


def _cmd_consistency(args: argparse.Namespace, out) -> int:
    rows = []
    for protocol in args.protocols:
        store = build_store(
            protocol,
            sites=tuple(args.sites),
            servers_per_site=6,
            chain_length=3,
            ack_k=2,
            seed=args.seed,
            write_quorum=1,
            read_quorum=1,
        )
        history = run_causality_probe(
            store, ProbeConfig(n_pairs=args.pairs, rounds=args.rounds)
        )
        causal = check_causal(history)
        sessions = check_session_guarantees(history)
        rows.append(
            (
                protocol,
                len(history),
                len(causal),
                len(sessions["read-your-writes"]),
                len(sessions["monotonic-reads"]),
            )
        )
    text = render_table(
        ["protocol", "ops", "causal", "RYW", "MR"],
        rows,
        title=f"consistency anomalies ({len(args.sites)} sites)",
    )
    payload = {
        "sites": list(args.sites),
        "protocols": [
            {"protocol": p, "ops": ops, "causal": c, "read_your_writes": ryw,
             "monotonic_reads": mr}
            for p, ops, c, ryw, mr in rows
        ],
    }
    _emit(args, out, text, payload)
    return 0


def _cmd_perf_parallel(args: argparse.Namespace, out) -> int:
    from repro.perf import bench_parallel_scale, write_report

    overrides = {}
    if args.scale_records is not None:
        overrides["record_count"] = args.scale_records
    if args.scale_clients is not None:
        overrides["n_clients"] = args.scale_clients
    if args.scale_duration is not None:
        overrides["duration"] = args.scale_duration
    if args.scale_sites is not None:
        overrides["sites"] = tuple(args.scale_sites)
    print(
        f"running sharded scale tier at workers={args.workers} "
        "(one shard per DC, conservative lookahead) ...",
        file=out,
    )
    report = bench_parallel_scale(workers_list=args.workers, overrides=overrides)
    rows = [
        ("shards (DCs)", str(report["shards"])),
        ("lookahead", f"{report['lookahead_s'] * 1000:.2f} ms"),
        ("host cpus", str(report["host_cpus"])),
        ("trace digests match", str(report["digests_match"])),
        ("trace digest", report["trace_digest"][:16] + "…"),
    ]
    for run in report["runs"]:
        w = run["workers_used"]
        rows.append(
            (
                f"workers={w}",
                f"{run['ops_per_wall_sec']:,.0f} ops/wall-s "
                f"({run['wall_seconds']:.1f}s wall, "
                f"{run['speedup_vs_first']:.2f}x, {run['rounds']} rounds)",
            )
        )
    report_path = args.out or "BENCH_PR6.json"
    write_report(report, report_path)
    text = "\n\n".join(
        [
            render_table(["metric", "value"], rows, title="perf --scale --workers"),
            f"report written to {report_path}",
        ]
    )
    if args.format == "json":
        print(json.dumps(report, indent=2, sort_keys=True, default=str), file=out)
    else:
        print(text, file=out)
    # Digest equality is the engine's contract; make its violation a
    # non-zero exit so CI trips without parsing the report.
    return 0 if report["digests_match"] else 1


def _cmd_perf_scale(args: argparse.Namespace, out) -> int:
    from repro.perf import write_report
    from repro.perf.scale import bench_scale

    if args.workers:
        return _cmd_perf_parallel(args, out)
    print("running large-keyspace memory benchmark (two arms, traced + untraced) ...", file=out)
    report = bench_scale()
    opt, leg = report["optimized"], report["legacy"]
    rows = [
        ("distinct keys", f"{opt['distinct_keys']:,}"),
        ("peak traced MiB (optimized)", f"{opt['traced_peak_bytes'] / 2**20:.1f}"),
        ("peak traced MiB (legacy)", f"{leg['traced_peak_bytes'] / 2**20:.1f}"),
        ("peak bytes reduction", f"{report['peak_bytes_reduction']:.1%}"),
        ("bytes/key (optimized)", f"{opt['bytes_per_key']:,.0f}"),
        ("bytes/key (legacy)", f"{leg['bytes_per_key']:,.0f}"),
        ("bytes/key reduction", f"{report['bytes_per_key_reduction']:.1%}"),
        ("ops/wall-s ratio", f"{report['ops_per_wall_sec_ratio']:.2f}x"),
        ("events match (determinism)", str(report["events_match"])),
    ]
    report_path = args.out or "BENCH_PR5.json"
    write_report(report, report_path)
    text = "\n\n".join(
        [
            render_table(["metric", "value"], rows, title="perf --scale"),
            f"report written to {report_path}",
        ]
    )
    if args.format == "json":
        print(json.dumps(report, indent=2, sort_keys=True, default=str), file=out)
    else:
        print(text, file=out)
    return 0


def _cmd_perf_stability(args: argparse.Namespace, out) -> int:
    from repro.perf import write_report
    from repro.perf.stability import bench_stability_plane

    print(
        "running stabilization-plane benchmark (notices vs clock, "
        f"{args.repeats} repeats) ...",
        file=out,
    )
    report = bench_stability_plane(repeats=args.repeats)
    lead = args.stability
    rows = [("lead plane", lead)]
    for arm in report["arms"]:
        rows.append(
            (
                arm["plane"],
                f"{arm['ops_per_wall_sec']:,.0f} ops/wall-s, "
                f"{arm['stability_bytes']:,} stability B, "
                f"vis p50 {arm['visibility_p50_ms']:.1f} ms",
            )
        )
    rows.append(
        ("stability-byte reduction (clock vs notices)",
         f"{report['stability_bytes_reduction']:.1f}x"),
    )
    rows.append(
        ("stable-map bound (clock)", str(report["clock_stable_map_bounded"])),
    )
    report_path = args.out or "BENCH_PR8.json"
    write_report(report, report_path)
    text = "\n\n".join(
        [
            render_table(["metric", "value"], rows, title="perf --stability"),
            f"report written to {report_path}",
        ]
    )
    if args.format == "json":
        print(json.dumps(report, indent=2, sort_keys=True, default=str), file=out)
    else:
        print(text, file=out)
    return 0


def _cmd_perf_partial(args: argparse.Namespace, out) -> int:
    from repro.perf import write_report
    from repro.perf.partial import bench_partial_replication

    print(
        "running partial geo-replication benchmark (replication degree "
        f"A/B, {args.repeats} repeats) ...",
        file=out,
    )
    report = bench_partial_replication(repeats=args.repeats)
    rows = []
    for arm in report["arms"]:
        census = arm["records_per_site"]
        rows.append(
            (
                arm["arm"],
                f"{arm['ops_per_wall_sec']:,.0f} ops/wall-s, "
                f"{arm['shipping_bytes_per_key']:,.0f} ship B/key, "
                f"{sum(census.values())} records "
                f"({max(census.values())} max/DC)",
            )
        )
    rows.append(
        ("shipping bytes/key (r=2 vs full)",
         f"{report['shipping_bytes_per_key_ratio_r2']:.2f}x"),
    )
    rows.append(
        ("record census reduction (r=2)", f"{report['census_reduction_r2']:.0%}"),
    )
    rows.append(
        ("remote-get p50 (r=2)", f"{report['remote_get_p50_ms_r2']:.1f} ms"),
    )
    report_path = args.out or "BENCH_PR10.json"
    write_report(report, report_path)
    text = "\n\n".join(
        [
            render_table(["metric", "value"], rows, title="perf --partial"),
            f"report written to {report_path}",
        ]
    )
    if args.format == "json":
        print(json.dumps(report, indent=2, sort_keys=True, default=str), file=out)
    else:
        print(text, file=out)
    return 0


def _cmd_perf_kernel(args: argparse.Namespace, out) -> int:
    from repro.perf import bench_compiled_kernel, write_report

    print(
        "running compiled-kernel A/B tier (pure vs mypyc, micro + sharded "
        "end-to-end at workers=1,2) ...",
        file=out,
    )
    report = bench_compiled_kernel(n_events=args.events, repeats=args.repeats)
    rows = [("compiled build present", str(report["compiled_available"]))]
    if report["build_skipped"]:
        rows.append(("build skipped", report["build_skipped_reason"]))
    kops = report["kernel_ops"]
    rows.append(("kernel pure events/s", f"{kops['pure_events_per_sec']:,.0f}"))
    if kops["compiled_vs_pure"] is not None:
        rows.append(
            ("kernel compiled events/s", f"{kops['compiled_events_per_sec']:,.0f}")
        )
        rows.append(("kernel compiled/pure", f"{kops['compiled_vs_pure']:.2f}x"))
    hops = report["hlc_ops"]
    rows.append(("hlc pure ops/s", f"{hops['pure_ops_per_sec']:,.0f}"))
    if hops["compiled_vs_pure"] is not None:
        rows.append(("hlc compiled/pure", f"{hops['compiled_vs_pure']:.2f}x"))
    for run in report["end_to_end"]:
        rows.append(
            (
                f"e2e {run['kernel']} workers={run['workers_requested']}",
                f"{run['ops_per_wall_sec']:,.0f} ops/wall-s "
                f"({run['wall_seconds']:.1f}s wall)",
            )
        )
    for label, ratio in report["end_to_end_speedup"].items():
        if ratio is not None:
            rows.append((f"e2e speedup {label}", f"{ratio:.2f}x"))
    rows.append(("trace digests match", str(report["digests_match"])))
    report_path = args.out or "BENCH_PR9.json"
    write_report(report, report_path)
    text = "\n\n".join(
        [
            render_table(["metric", "value"], rows, title="perf --kernel"),
            f"report written to {report_path}",
        ]
    )
    if args.format == "json":
        print(json.dumps(report, indent=2, sort_keys=True, default=str), file=out)
    else:
        print(text, file=out)
    # Cross-backend digest parity is a hard contract; see perf/compiled.py.
    return 0 if report["digests_match"] else 1


def _cmd_perf(args: argparse.Namespace, out) -> int:
    kernel_arm = getattr(args, "kernel", None)
    if kernel_arm == "ab":
        return _cmd_perf_kernel(args, out)
    if kernel_arm in ("pure", "compiled"):
        from repro.errors import ConfigError
        from repro.sim.backend import activate_kernel

        try:
            activate_kernel(kernel_arm)
        except ConfigError as exc:
            print(f"--kernel: {exc}", file=out)
            return 2
    if args.stability:
        return _cmd_perf_stability(args, out)
    if args.partial:
        return _cmd_perf_partial(args, out)
    if args.scale:
        return _cmd_perf_scale(args, out)
    from repro.perf import (
        bench_end_to_end,
        collect_report,
        format_profile_rows,
        profile_call,
        summary_lines,
        write_report,
    )

    print(
        f"running hot-path microbenchmarks ({args.events} events x {args.repeats} repeats) ...",
        file=out,
    )
    report = collect_report(
        n_events=args.events,
        repeats=args.repeats,
        include_end_to_end=not args.skip_e2e,
        include_sweep=args.sweep,
        include_protocol=args.protocol,
        sweep_max_workers=args.sweep_workers,
    )
    kernel = report["event_kernel"]
    sections = [
        render_table(["metric", "value"], summary_lines(report), title="perf"),
        (
            f"event kernel: {kernel['optimized_events_per_sec']:,.0f} events/s "
            f"vs seed baseline {kernel['baseline_events_per_sec']:,.0f} events/s "
            f"({kernel['speedup']:.2f}x)"
        ),
    ]
    if args.profile:
        _, rows = profile_call(lambda: bench_end_to_end(duration=0.3), top=15)
        sections.append("hottest functions (end-to-end run):\n" + format_profile_rows(rows))
    # perf always persists the BENCH report; --out overrides where.
    report_path = args.out or "BENCH_PR1.json"
    write_report(report, report_path)
    sections.append(f"report written to {report_path}")
    text = "\n\n".join(sections)
    if args.format == "json":
        print(json.dumps(report, indent=2, sort_keys=True, default=str), file=out)
    else:
        print(text, file=out)
    return 0


def _cmd_faults(args: argparse.Namespace, out) -> int:
    from repro.faults import CAMPAIGNS, campaign, run_campaign, sanitize_campaign

    if args.list:
        rows = [(name, CAMPAIGNS[name].description) for name in sorted(CAMPAIGNS)]
        text = render_table(["campaign", "description"], rows, title="fault campaigns")
        payload = {"campaigns": [{"name": n, "description": d} for n, d in rows]}
        _emit(args, out, text, payload)
        return 0
    if not args.campaign:
        print("faults: --campaign NAME is required (or --list)", file=out)
        return 2
    kernel = _activate_cli_kernel(args, out)
    if kernel is None:
        return 2
    spec = campaign(args.campaign)
    updates: Dict[str, Any] = {}
    if args.clients is not None:
        updates["clients"] = args.clients
    if args.workload is not None:
        updates["workload_name"] = args.workload
    plane = _resolve_plane(args, out)
    extra_overrides: Dict[str, Any] = {}
    if plane != "notices":
        extra_overrides.update(_plane_overrides(plane))
    if spec.protocol in ("chainreaction", "chain"):
        extra_overrides["kernel"] = kernel
    if extra_overrides:
        updates["overrides"] = {**(spec.overrides or {}), **extra_overrides}
    if updates:
        spec = spec.with_updates(**updates)

    if args.check_determinism:
        print(
            f"campaign {spec.name!r}: two runs under seed {args.seed}, diffing traces ...",
            file=out,
        )
        report = sanitize_campaign(spec, seed=args.seed)
        payload = {
            "campaign": spec.name,
            "seed": args.seed,
            "trace_length": report.trace_length,
            "events_processed": list(report.events_processed),
            "deterministic": report.divergence is None,
            "clean": report.clean,
        }
        _emit(args, out, report.format(), payload)
        return 0 if report.clean else 1

    print(f"running campaign {spec.name!r} under seed {args.seed} ...", file=out)
    result = run_campaign(spec, seed=args.seed)
    _emit(args, out, result.format(), result.to_report())
    return 0 if result.clean else 1


def _cmd_lint(args: argparse.Namespace, out) -> int:
    from repro.analysis import check_annotations, run_lint, run_mypy

    paths = [Path(p) for p in args.paths] or None
    violations = run_lint(paths)
    for violation in violations:
        print(violation.format(), file=out)
    failed = bool(violations)
    print(f"lint: {len(violations)} violation(s)", file=out)
    if args.typing:
        annotations = check_annotations(paths)
        for violation in annotations:
            print(violation.format(), file=out)
        print(f"typing gate: {len(annotations)} missing annotation(s)", file=out)
        failed = failed or bool(annotations)
        mypy = run_mypy()
        if mypy.available:
            if mypy.output.strip():
                print(mypy.output, file=out)
            print(f"mypy: exit {mypy.returncode}", file=out)
        else:
            print(mypy.output, file=out)
        failed = failed or not mypy.clean
    return 1 if failed else 0


def _cmd_sanitize_sharded(args: argparse.Namespace, out, overrides) -> int:
    from repro.analysis import sanitize_sharded

    sites = tuple(args.sites)
    if len(sites) < 2:
        # One shard per site; a single site degenerates to the serial
        # path, which the plain sanitizer already covers better.
        sites = ("dc0", "dc1")
    print(
        f"sanitizing {args.protocol} on the sharded engine "
        f"(workers={args.workers}, sites={len(sites)}): two runs under "
        f"seed {args.seed}, plus a workers=1 reference ...",
        file=out,
    )
    report = sanitize_sharded(
        args.protocol,
        seed=args.seed,
        workload_name=args.workload,
        clients=args.clients,
        duration=args.duration,
        warmup=args.warmup,
        sites=sites,
        servers_per_site=args.servers,
        chain_length=args.chain_length,
        records=args.records,
        workers=args.workers,
        overrides=overrides,
    )
    payload = {
        "protocol": report.protocol,
        "seed": report.seed,
        "workers": report.workers,
        "sites": list(report.sites),
        "rounds": report.rounds,
        "digests": list(report.digests),
        "serial_digest": report.serial_digest,
        "events_processed": list(report.events_processed),
        "twice_run_clean": report.twice_run_clean,
        "worker_count_clean": report.worker_count_clean,
        "clean": report.clean,
    }
    _emit(args, out, report.format(), payload)
    return 0 if report.clean else 1


def _cmd_sanitize(args: argparse.Namespace, out) -> int:
    from repro.analysis import sanitize_run

    kernel = _activate_cli_kernel(args, out)
    if kernel is None:
        return 2
    plane = _resolve_plane(args, out)
    if plane != "notices" and args.protocol not in ("chainreaction", "chain"):
        print("--stability applies to chainreaction/chain only", file=out)
        return 2
    overrides = _plane_overrides(plane) or None
    if args.protocol in ("chainreaction", "chain"):
        overrides = {**(overrides or {}), "kernel": kernel}
    placement = _placement_overrides(args, out)
    if placement is None:
        return 2
    if placement:
        overrides = {**(overrides or {}), **placement}
    if args.workers is not None:
        if args.workers < 1:
            print("sanitize: --workers must be >= 1", file=out)
            return 2
        if args.protocol not in ("chainreaction", "chain"):
            print("--workers applies to chainreaction/chain only", file=out)
            return 2
        return _cmd_sanitize_sharded(args, out, overrides)
    print(
        f"sanitizing {args.protocol} / workload {args.workload}: "
        f"two runs under seed {args.seed} ...",
        file=out,
    )
    report = sanitize_run(
        args.protocol,
        seed=args.seed,
        workload_name=args.workload,
        clients=args.clients,
        duration=args.duration,
        warmup=args.warmup,
        sites=tuple(args.sites),
        servers_per_site=args.servers,
        chain_length=args.chain_length,
        records=args.records,
        check_invariants=args.invariants,
        overrides=overrides,
    )
    payload = {
        "protocol": report.protocol,
        "seed": report.seed,
        "trace_length": report.trace_length,
        "events_processed": list(report.events_processed),
        "deterministic": report.divergence is None,
        "clean": report.clean,
    }
    _emit(args, out, report.format(), payload)
    return 0 if report.clean else 1


def _cmd_explore_replay(args: argparse.Namespace, out) -> int:
    from repro.analysis.explore import load_schedule, replay_schedule

    schedule = load_schedule(args.replay)
    mode = "clean tree (mutations stripped, guided)" if args.clean_tree else "strict"
    print(
        f"replaying {args.replay}: scope {schedule.scope.name!r}, "
        f"{len(schedule.trace)} decisions, {mode} ...",
        file=out,
    )
    result = replay_schedule(
        schedule, strict=not args.clean_tree, on_clean_tree=args.clean_tree
    )
    lines = []
    if args.clean_tree:
        # On the fixed tree the recorded violation must NOT recur.
        ok = not result.violations and not result.reproduced
        lines.append(
            "clean-tree replay: "
            + ("no violation (bug is fixed)" if ok else "VIOLATION STILL PRESENT")
        )
    else:
        ok = result.reproduced
        lines.append(
            "strict replay: "
            + (
                "violation reproduced bit-for-bit"
                if ok
                else "DID NOT REPRODUCE (signature mismatch)"
            )
        )
    for violation in result.violations:
        lines.append(f"  {violation}")
    payload = {
        "file": args.replay,
        "scope": schedule.scope.name,
        "decisions": len(schedule.trace),
        "clean_tree": args.clean_tree,
        "reproduced": result.reproduced,
        "violations": [list(v.as_tuple()) for v in result.violations],
        "ok": ok,
    }
    _emit(args, out, "\n".join(lines), payload)
    return 0 if ok else 1


def _cmd_explore(args: argparse.Namespace, out) -> int:
    import dataclasses as _dc

    from repro.analysis.explore import (
        explore_scope,
        save_counterexample,
        scenario,
        scenario_names,
    )

    if args.list:
        rows = []
        for name in scenario_names():
            scope = scenario(name)
            rows.append(
                (
                    name,
                    ",".join(scope.mutations) or "(none — clean scope)",
                    f"{len(scope.ops)} ops",
                )
            )
        text = render_table(
            ["scenario", "seeded mutation", "workload"], rows, title="explore scenarios"
        )
        payload = {
            "scenarios": [
                {"name": n, "mutations": m, "ops": o} for n, m, o in rows
            ]
        }
        _emit(args, out, text, payload)
        return 0
    if args.replay:
        return _cmd_explore_replay(args, out)

    scope = scenario(args.scope)
    if args.clean:
        scope = scope.without_mutations()
    mode = "naive" if args.naive else "dpor"
    print(
        f"exploring scope {scope.name!r} "
        f"(mutations={list(scope.mutations) or 'none'}, mode={mode}, "
        f"budget={args.budget}) ...",
        file=out,
    )
    report = explore_scope(scope, budget=args.budget, mode=mode)
    if args.compare_naive and not args.naive:
        print("re-enumerating naively for the pruning ratio ...", file=out)
        naive = explore_scope(scope, budget=args.budget, mode="naive")
        report = _dc.replace(
            report,
            naive_schedules=naive.schedules + naive.pruned,
            naive_complete=naive.complete,
        )

    saved_to = None
    saved_decisions = None
    if args.save and report.counterexample is not None:
        schedule = save_counterexample(
            args.save, report, minimize=not args.no_minimize
        )
        saved_to = args.save
        saved_decisions = len(schedule.trace)

    text = report.summary()
    if saved_to:
        text += (
            f"\n  counterexample saved to {saved_to} "
            f"({saved_decisions} decisions"
            + (", minimized)" if not args.no_minimize else ")")
        )
    payload: Dict[str, Any] = {
        "scope": scope.name,
        "mutations": list(scope.mutations),
        "mode": report.mode,
        "budget": args.budget,
        "schedules": report.schedules,
        "pruned_prefixes": report.pruned,
        "decisions": report.decisions,
        "max_depth": report.max_depth,
        "complete": report.complete,
        "elapsed_s": report.elapsed,
        "clean": report.clean,
        "naive_schedules": report.naive_schedules,
        "naive_complete": report.naive_complete,
        "pruning_ratio": report.pruning_ratio,
        "violations": [
            list(v.as_tuple()) for v in report.counterexample.violations
        ]
        if report.counterexample
        else [],
        "saved": saved_to,
        "saved_decisions": saved_decisions,
    }
    _emit(args, out, text, payload)
    if args.expect_violation:
        return 0 if not report.clean else 1
    return 0 if report.clean else 1


def _cmd_info(args: argparse.Namespace, out) -> int:
    lines = [
        "protocols : " + ", ".join(PROTOCOLS),
        "workloads : " + ", ".join(
            f"{name} ({int(spec.read_proportion*100)}% read)"
            for name, spec in sorted(WORKLOADS.items())
        ),
        "defaults  : 6 servers/site, R=3, k=2, LAN 0.3ms, WAN 40ms",
        "see also  : pytest benchmarks/ --benchmark-only -s  (experiments E1-E11)",
    ]
    payload = {
        "protocols": list(PROTOCOLS),
        "workloads": {
            name: {"read_proportion": spec.read_proportion}
            for name, spec in sorted(WORKLOADS.items())
        },
        "defaults": {"servers_per_site": 6, "chain_length": 3, "ack_k": 2},
    }
    _emit(args, out, "\n".join(lines), payload)
    return 0


def main(argv: Optional[Sequence[str]] = None, out=None) -> int:
    """Entry point; returns a process exit code."""
    out = out or sys.stdout
    args = build_parser().parse_args(argv)
    if args.command == "run":
        return _cmd_run(args, out)
    if args.command == "consistency":
        return _cmd_consistency(args, out)
    if args.command == "perf":
        return _cmd_perf(args, out)
    if args.command == "faults":
        return _cmd_faults(args, out)
    if args.command == "lint":
        return _cmd_lint(args, out)
    if args.command == "sanitize":
        return _cmd_sanitize(args, out)
    if args.command == "explore":
        return _cmd_explore(args, out)
    return _cmd_info(args, out)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
