"""Opt-in runtime checks of the chain-replication invariants.

ChainReaction inherits three structural properties from chain
replication, and the causal+ contract adds a fourth; this module turns
them into assertions that can ride along on any run of the
``chainreaction`` / ``chain`` deployments:

- **chain prefix property** — writes flow head → tail over FIFO links,
  so at any instant each replica's applied version sequence for a key
  is a prefix of the head's sequence. A non-prefix apply means a write
  bypassed chain order.
- **DC-stability monotonicity** — the stable version a server tracks
  per key only ever grows (vector merge); observing it shrink would
  un-stabilize data that clients already depend on.
- **tail grounding** — a server may only mark DC-stable a version its
  own store already dominates: stability is the claim "every chain
  position holds this", which the claimant must at least satisfy itself.
- **causal-cut satisfaction** — every ``get`` served to a session must
  return a version dominating the session's recorded dependency for
  that key; anything less would hand the application a state outside
  its causal past.

The monitor wraps per-node ``store.apply`` / ``stability.record`` and
per-session observation hooks on a live deployment.

Runs with failure injection are supported (the fault-campaign engine
attaches this monitor on every campaign). Three adjustments keep the
checks sound across crashes and reconfigurations without weakening
them on fault-free runs:

- applies performed while a node is **syncing** (chain repair after a
  view change) are re-installs of already-checked writes and are not
  recorded as new sequence entries;
- a **fail-stop crash** discards the replica's recorded lifetime — the
  recovered process is logically new, so its sequence restarts;
- once a site has seen a **view change**, "each replica is a prefix of
  the head" is no longer well-defined (the head itself changes), so the
  prefix scan switches to the reconfiguration-stable core of the
  property: every pair of replicas must agree on the relative order of
  the writes both applied (``chain-order``). Fault-free runs keep the
  strict prefix check.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, List, Tuple

__all__ = ["ChainInvariantMonitor", "InvariantReport", "InvariantViolation"]


@dataclasses.dataclass(frozen=True)
class InvariantViolation:
    """One invariant breach, with enough context to locate it."""

    kind: str
    node: str
    key: str
    detail: str

    def format(self) -> str:
        return f"[{self.kind}] node={self.node} key={self.key}: {self.detail}"


@dataclasses.dataclass
class InvariantReport:
    """Checks run + violations found over one monitored run."""

    violations: List[InvariantViolation]
    applies_checked: int
    stability_checks: int
    gets_checked: int
    keys_checked: int

    @property
    def clean(self) -> bool:
        return not self.violations

    def format(self) -> str:
        header = (
            f"invariants: {self.applies_checked} applies, "
            f"{self.stability_checks} stability notices, "
            f"{self.gets_checked} gets, {self.keys_checked} keys checked"
        )
        if not self.violations:
            return header + " — all hold"
        lines = [header + f" — {len(self.violations)} VIOLATION(S):"]
        lines.extend("  " + v.format() for v in self.violations)
        return "\n".join(lines)


class ChainInvariantMonitor:
    """Attachable invariant checker for a chain-based deployment.

    Usage::

        store = build_store("chainreaction", ...)
        monitor = ChainInvariantMonitor(store).attach()
        ... run a workload ...
        report = monitor.report()
        assert report.clean, report.format()

    Attach *before* preload so the preload writes are part of every
    replica's recorded sequence.
    """

    def __init__(self, store: Any) -> None:
        self.store = store
        self.violations: List[InvariantViolation] = []
        #: (site, node) -> key -> ordered list of applied record versions
        self._applied: Dict[Tuple[str, str], Dict[str, List[Any]]] = {}
        #: site -> number of view changes observed during the run
        self._view_changes: Dict[str, int] = {}
        self.applies_checked = 0
        self.stability_checks = 0
        self.gets_checked = 0
        self._attached = False

    # ------------------------------------------------------------------
    # attachment
    # ------------------------------------------------------------------
    def attach(self) -> "ChainInvariantMonitor":
        if self._attached:
            raise RuntimeError("monitor is already attached")
        self._attached = True
        for site, nodes in self.store.nodes.items():
            for node in nodes:
                self._wrap_node(site, node)
        for site, manager in self.store.managers.items():
            self._view_changes[site] = 0
            self._watch_views(site, manager)
        self._wrap_session_factory()
        return self

    def _watch_views(self, site: str, manager: Any) -> None:
        monitor = self

        def count_view_change(view: Any) -> None:
            monitor._view_changes[site] += 1

        manager.add_view_listener(count_view_change)

    def _wrap_node(self, site: str, node: Any) -> None:
        node_key = (site, node.name)
        self._applied[node_key] = {}
        applied = self._applied[node_key]
        monitor = self

        original_apply = node.store.apply

        def recording_apply(key: str, value: Any, version: Any, now: float = 0.0,
                            stamp: Any = None) -> Any:
            result = original_apply(key, value, version, now, stamp)
            monitor.applies_checked += 1
            if result.applied and not getattr(node, "syncing", False):
                applied.setdefault(key, []).append(result.record.version)
            return result

        node.store.apply = recording_apply

        original_crash = node.crash

        def resetting_crash() -> None:
            # Fail-stop: the replica's recorded lifetime ends here. What
            # it re-applies after recovery belongs to a fresh sequence.
            applied.clear()
            original_crash()

        node.crash = resetting_crash

        if not hasattr(node, "stability"):
            return  # non-chain server: prefix recording only

        original_record = node.stability.record
        tracker = node.stability
        node_name = f"{site}:{node.name}"

        def checking_record(key: str, version: Any) -> None:
            before = tracker.stable_version(key)
            original_record(key, version)
            after = tracker.stable_version(key)
            monitor.stability_checks += 1
            if not after.dominates(before):
                monitor.violations.append(
                    InvariantViolation(
                        kind="stability-monotonicity",
                        node=node_name,
                        key=key,
                        detail=f"stable version moved from {before} to {after}",
                    )
                )
            held = node.store.version_of(key)
            if not held.dominates(after):
                monitor.violations.append(
                    InvariantViolation(
                        kind="stability-grounding",
                        node=node_name,
                        key=key,
                        detail=(
                            f"declared {after} stable while holding only {held}; "
                            "a server may not stabilise versions it does not store"
                        ),
                    )
                )

        node.stability.record = checking_record

    def _wrap_session_factory(self) -> None:
        original_session = self.store.session
        monitor = self

        def monitored_session(*args: Any, **kwargs: Any) -> Any:
            session = original_session(*args, **kwargs)
            monitor._wrap_session(session)
            return session

        self.store.session = monitored_session

    def _wrap_session(self, session: Any) -> None:
        # Only the ChainReaction client keeps a dependency table; the
        # plain chain-replication client has no causal metadata to check.
        if not hasattr(session, "_note_observed") or not hasattr(session, "_deps"):
            return
        original_note = session._note_observed
        monitor = self
        session_name = session.session_id

        def checking_note(key: str, reply: Dict[str, Any]) -> None:
            entry = session._deps.get(key)
            monitor.gets_checked += 1
            if entry is not None and not reply["version"].dominates(entry.version):
                monitor.violations.append(
                    InvariantViolation(
                        kind="causal-cut",
                        node=session_name,
                        key=key,
                        detail=(
                            f"get served {reply['version']} but the session "
                            f"already observed {entry.version}"
                        ),
                    )
                )
            original_note(key, reply)

        session._note_observed = checking_note

    # ------------------------------------------------------------------
    # end-of-run checks
    # ------------------------------------------------------------------
    def check_prefix_property(self) -> List[InvariantViolation]:
        """End-of-run scan of the chain ordering property.

        Runs over the final recorded sequences; call after the
        simulation has drained so in-flight chain hops are not reported
        as (transient, legitimate) gaps.

        Fault-free sites get the full-strength check: every replica's
        applied sequence is a strict prefix of the head's. Sites that
        reconfigured during the run (crashes, view changes) no longer
        have a single well-defined head over the whole run, so the scan
        checks what chain order still guarantees across
        reconfigurations: every pair of replicas agrees on the relative
        order of the writes both of them applied (``chain-order``).
        """
        found: List[InvariantViolation] = []
        for site, manager in self.store.managers.items():
            view = manager.view
            keys = set()
            for node in self.store.nodes[site]:
                keys.update(self._applied[(site, node.name)].keys())
            if self._view_changes.get(site, 0) == 0:
                found.extend(self._check_strict_prefix(site, view, sorted(keys)))
            else:
                found.extend(self._check_order_consistency(site, sorted(keys)))
        return found

    def _check_strict_prefix(
        self, site: str, view: Any, keys: List[str]
    ) -> List[InvariantViolation]:
        found: List[InvariantViolation] = []
        for key in keys:
            chain = view.chain_for(key)
            head_seq = self._applied[(site, chain[0])].get(key, [])
            for member in chain[1:]:
                member_seq = self._applied[(site, member)].get(key, [])
                if len(member_seq) > len(head_seq) or any(
                    m != h for m, h in zip(member_seq, head_seq)
                ):
                    found.append(
                        InvariantViolation(
                            kind="chain-prefix",
                            node=f"{site}:{member}",
                            key=key,
                            detail=(
                                f"applied sequence ({len(member_seq)} versions) "
                                f"is not a prefix of the head's "
                                f"({len(head_seq)} versions)"
                            ),
                        )
                    )
        return found

    def _check_order_consistency(
        self, site: str, keys: List[str]
    ) -> List[InvariantViolation]:
        """Pairwise check: replicas never disagree on the order of
        writes they both applied. This is the part of the prefix
        property that survives crashes and chain repair — a replica may
        hold a subset (it crashed, joined late, or the chain moved), but
        two replicas applying the same two writes in opposite orders
        means a write bypassed chain order."""
        found: List[InvariantViolation] = []
        names = [node.name for node in self.store.nodes[site]]
        for key in keys:
            sequences = [
                (name, self._applied[(site, name)].get(key, []))
                for name in names
            ]
            for i, (name_a, seq_a) in enumerate(sequences):
                rank_a = {version: pos for pos, version in enumerate(seq_a)}
                for name_b, seq_b in sequences[i + 1 :]:
                    common = [v for v in seq_b if v in rank_a]
                    ranks = [rank_a[v] for v in common]
                    if any(lo >= hi for lo, hi in zip(ranks, ranks[1:])):
                        found.append(
                            InvariantViolation(
                                kind="chain-order",
                                node=f"{site}:{name_a}~{site}:{name_b}",
                                key=key,
                                detail=(
                                    f"replicas applied {len(common)} common "
                                    "versions in different relative orders"
                                ),
                            )
                        )
        return found

    def keys_tracked(self) -> int:
        return len({
            key
            for per_key in self._applied.values()
            for key in per_key
        })

    def report(self) -> InvariantReport:
        """Final report: runtime violations plus the end-of-run prefix scan."""
        return InvariantReport(
            violations=list(self.violations) + self.check_prefix_property(),
            applies_checked=self.applies_checked,
            stability_checks=self.stability_checks,
            gets_checked=self.gets_checked,
            keys_checked=self.keys_tracked(),
        )
