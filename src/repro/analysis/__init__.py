"""Static and dynamic correctness analysis for the reproduction.

The credibility of every number this repository produces rests on two
properties that ordinary tests cannot fully guard:

- **determinism** — a fixed seed must replay the same execution bit for
  bit (the golden-trace test pins one run, but nothing stops a new code
  path from quietly consulting the wall clock or an unseeded RNG);
- **protocol invariants** — chain replication's prefix property,
  DC-stability monotonicity, and the causal cut served to every client
  session must hold on every run, not just on the runs a reviewer eyeballed.

This package provides three enforcement layers:

1. :mod:`repro.analysis.lint` — a custom AST linter (``python -m repro
   lint``) whose rules ban the constructs that break seed-stability:
   wall-clock reads, module-level ``random`` draws, unseeded RNGs,
   builtin ``hash()`` in seed derivation, mutable default arguments,
   unfrozen protocol messages, and iteration over bare ``set``s in
   event-ordering code.
2. :mod:`repro.analysis.sanitize` — a runtime sanitizer (``python -m
   repro sanitize``) that runs an experiment twice under one seed,
   diffs the message traces, and localizes the first divergent event;
   plus opt-in invariant hooks (:mod:`repro.analysis.invariants`).
3. :mod:`repro.analysis.typing_gate` — an annotation-coverage gate for
   the protocol-critical packages, backed by the strict-leaning mypy
   configuration in ``pyproject.toml`` when mypy is installed.

See ``docs/ANALYSIS.md`` for the rule reference and pragma syntax.
"""

from repro.analysis.invariants import (
    ChainInvariantMonitor,
    InvariantReport,
    InvariantViolation,
)
from repro.analysis.lint import (
    LintConfig,
    LintViolation,
    lint_file,
    lint_paths,
    run_lint,
)
from repro.analysis.sanitize import (
    Divergence,
    MessageTap,
    SanitizeReport,
    capture_run,
    locate_divergence,
    sanitize_run,
)
from repro.analysis.typing_gate import (
    AnnotationViolation,
    check_annotations,
    run_mypy,
)

__all__ = [
    "ChainInvariantMonitor",
    "InvariantReport",
    "InvariantViolation",
    "LintConfig",
    "LintViolation",
    "lint_file",
    "lint_paths",
    "run_lint",
    "Divergence",
    "MessageTap",
    "SanitizeReport",
    "capture_run",
    "locate_divergence",
    "sanitize_run",
    "AnnotationViolation",
    "check_annotations",
    "run_mypy",
]
