"""Static and dynamic correctness analysis for the reproduction.

The credibility of every number this repository produces rests on two
properties that ordinary tests cannot fully guard:

- **determinism** — a fixed seed must replay the same execution bit for
  bit (the golden-trace test pins one run, but nothing stops a new code
  path from quietly consulting the wall clock or an unseeded RNG);
- **protocol invariants** — chain replication's prefix property,
  DC-stability monotonicity, and the causal cut served to every client
  session must hold on every run, not just on the runs a reviewer eyeballed.

This package provides four enforcement layers:

1. :mod:`repro.analysis.lint` — a custom AST linter (``python -m repro
   lint``) whose rules ban the constructs that break seed-stability:
   wall-clock reads, module-level ``random`` draws, unseeded RNGs,
   builtin ``hash()`` in seed derivation, mutable default arguments,
   unfrozen protocol messages, iteration over bare ``set``s in
   event-ordering code, and tie-prone sorts on delivery paths.
2. :mod:`repro.analysis.sanitize` — a runtime sanitizer (``python -m
   repro sanitize``) that runs an experiment twice under one seed,
   diffs the message traces, and localizes the first divergent event;
   ``--workers N`` runs the same check through the multi-core sharded
   engine; plus opt-in invariant hooks
   (:mod:`repro.analysis.invariants`).
3. :mod:`repro.analysis.typing_gate` — an annotation-coverage gate for
   the protocol-critical packages, backed by the strict-leaning mypy
   configuration in ``pyproject.toml`` when mypy is installed.
4. :mod:`repro.analysis.explore` — a bounded schedule explorer
   (``python -m repro explore``) that drives the deterministic kernel
   through every message-delivery interleaving and crash placement a
   small scope admits (partial-order reduced), checks the invariant
   monitors and the causal checker at every terminal state, and
   minimizes any violation to a replayable counterexample schedule. A
   proving ground of seeded protocol mutations keeps the explorer
   honest: each mutation must be caught, and the unmutated tree must
   pass clean.

See ``docs/ANALYSIS.md`` for the rule reference and pragma syntax.
"""

from repro.analysis.explore import (
    ExploreReport,
    ExploreScope,
    Schedule,
    Violation,
    explore_scope,
    minimize_counterexample,
    replay_schedule,
    save_counterexample,
    scenario,
    scenario_names,
)
from repro.analysis.invariants import (
    ChainInvariantMonitor,
    InvariantReport,
    InvariantViolation,
)
from repro.analysis.lint import (
    LintConfig,
    LintViolation,
    lint_file,
    lint_paths,
    run_lint,
)
from repro.analysis.sanitize import (
    Divergence,
    MessageTap,
    SanitizeReport,
    ShardedSanitizeReport,
    capture_run,
    locate_divergence,
    sanitize_run,
    sanitize_sharded,
)
from repro.analysis.typing_gate import (
    AnnotationViolation,
    check_annotations,
    run_mypy,
)

__all__ = [
    "ChainInvariantMonitor",
    "InvariantReport",
    "InvariantViolation",
    "LintConfig",
    "LintViolation",
    "lint_file",
    "lint_paths",
    "run_lint",
    "Divergence",
    "MessageTap",
    "SanitizeReport",
    "ShardedSanitizeReport",
    "capture_run",
    "locate_divergence",
    "sanitize_run",
    "sanitize_sharded",
    "ExploreReport",
    "ExploreScope",
    "Schedule",
    "Violation",
    "explore_scope",
    "minimize_counterexample",
    "replay_schedule",
    "save_counterexample",
    "scenario",
    "scenario_names",
    "AnnotationViolation",
    "check_annotations",
    "run_mypy",
]
