"""Typing gate: annotation coverage now, full mypy when available.

Two layers with one goal — protocol code whose interfaces are fully
spelled out, so refactors (and the perf rewrites the ROADMAP calls for)
cannot silently change what flows across a chain hop:

1. :func:`check_annotations` — a dependency-free AST pass requiring
   every function in the protocol-critical packages (``core``, ``sim``,
   ``net``, ``baselines``, ``analysis``) to annotate its parameters and
   return type. It runs everywhere, including this container.
2. :func:`run_mypy` — shells out to mypy against the strict-leaning
   configuration in ``pyproject.toml`` when mypy is importable, and
   reports a skip (not a failure) when it is not, so the gate degrades
   gracefully on minimal environments.

Suppression: ``# repro: lint-ok(typing)`` on the ``def`` line exempts
one function (dunder methods other than ``__init__`` are exempt by
default — their signatures are fixed by the data model).
"""

from __future__ import annotations

import ast
import dataclasses
import re
import subprocess
import sys
from pathlib import Path
from typing import List, Optional, Sequence, Tuple

__all__ = [
    "AnnotationViolation",
    "MypyResult",
    "TYPED_PACKAGES",
    "check_annotations",
    "run_mypy",
]

#: Packages (relative to ``src/repro``) the annotation gate covers.
TYPED_PACKAGES: Tuple[str, ...] = ("core", "sim", "net", "baselines", "analysis", "faults")

_PRAGMA = re.compile(r"#\s*repro:\s*lint-ok\(([^)]*)\)")

#: Dunders whose signatures the data model fixes; annotating them adds
#: noise, not safety. ``__init__`` is NOT exempt: constructor parameters
#: are exactly the interfaces refactors break.
_EXEMPT_DUNDERS = frozenset(
    {
        "__repr__",
        "__str__",
        "__len__",
        "__iter__",
        "__next__",
        "__contains__",
        "__eq__",
        "__ne__",
        "__lt__",
        "__le__",
        "__gt__",
        "__ge__",
        "__hash__",
        "__bool__",
        "__enter__",
        "__exit__",
        "__new__",
        "__post_init__",
    }
)


@dataclasses.dataclass(frozen=True)
class AnnotationViolation:
    """A function signature missing annotations."""

    path: str
    line: int
    function: str
    missing: Tuple[str, ...]

    def format(self) -> str:
        what = ", ".join(self.missing)
        return f"{self.path}:{self.line}: [typing] {self.function} missing {what}"


def _function_violations(
    node: ast.AST, path: str, suppressed_lines: frozenset
) -> Optional[AnnotationViolation]:
    assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    if node.name in _EXEMPT_DUNDERS:
        return None
    if node.lineno in suppressed_lines:
        return None
    missing: List[str] = []
    args = node.args
    positional = args.posonlyargs + args.args
    for index, arg in enumerate(positional):
        if index == 0 and arg.arg in ("self", "cls"):
            continue
        if arg.annotation is None:
            missing.append(f"annotation for {arg.arg!r}")
    for arg in args.kwonlyargs:
        if arg.annotation is None:
            missing.append(f"annotation for {arg.arg!r}")
    if args.vararg is not None and args.vararg.annotation is None:
        missing.append(f"annotation for *{args.vararg.arg}")
    if args.kwarg is not None and args.kwarg.annotation is None:
        missing.append(f"annotation for **{args.kwarg.arg}")
    if node.returns is None:
        missing.append("return annotation")
    if not missing:
        return None
    return AnnotationViolation(
        path=path, line=node.lineno, function=node.name, missing=tuple(missing)
    )


def _suppressed_lines(source: str) -> frozenset:
    lines = set()
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _PRAGMA.search(line)
        if match and "typing" in {p.strip() for p in match.group(1).split(",")}:
            lines.add(lineno)
    return frozenset(lines)


def check_annotations(
    paths: Optional[Sequence[Path]] = None,
) -> List[AnnotationViolation]:
    """Annotation-coverage violations across the typed packages."""
    if paths is None:
        root = Path(__file__).resolve().parent.parent
        paths = [root / package for package in TYPED_PACKAGES]
    violations: List[AnnotationViolation] = []
    files: List[Path] = []
    for path in paths:
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        else:
            files.append(path)
    for file_path in files:
        source = file_path.read_text(encoding="utf-8")
        try:
            tree = ast.parse(source, filename=str(file_path))
        except SyntaxError:
            continue  # the linter reports syntax errors; don't double-count
        suppressed = _suppressed_lines(source)
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                violation = _function_violations(node, str(file_path), suppressed)
                if violation is not None:
                    violations.append(violation)
    return violations


@dataclasses.dataclass(frozen=True)
class MypyResult:
    """Outcome of the optional mypy layer."""

    available: bool
    returncode: int
    output: str

    @property
    def clean(self) -> bool:
        return not self.available or self.returncode == 0


def run_mypy(targets: Optional[Sequence[str]] = None) -> MypyResult:
    """Run mypy over ``src/repro`` if it is installed; otherwise skip.

    The strict-leaning configuration lives in ``pyproject.toml`` so CI,
    editors, and this entry point all agree on the settings.
    """
    try:
        import mypy  # noqa: F401
    except ImportError:
        return MypyResult(
            available=False,
            returncode=0,
            output="mypy not installed; annotation gate ran, mypy layer skipped",
        )
    repo_root = Path(__file__).resolve().parents[3]
    cmd = [sys.executable, "-m", "mypy"]
    cmd.extend(targets or ["src/repro"])
    proc = subprocess.run(
        cmd, cwd=repo_root, capture_output=True, text=True, check=False
    )
    return MypyResult(
        available=True,
        returncode=proc.returncode,
        output=proc.stdout + proc.stderr,
    )
