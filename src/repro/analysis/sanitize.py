"""Runtime determinism sanitizer: twice-run trace diffing.

The golden-trace test pins *one* configuration forever; this module
checks *any* configuration on demand: run the same experiment twice
under the same seed, record every message the network fabric accepts,
and localize the first event where the two executions diverge. A
deterministic simulation produces byte-identical traces; any divergence
means wall-clock, unseeded randomness, or hash-order nondeterminism
leaked into the run — and the first divergent event points at the
culprit's neighbourhood.

The trace unit is the network send (virtual time, source, destination,
message type, wire size): every protocol action that can affect another
actor passes through :meth:`repro.net.network.Network.send`, so two runs
with identical send traces and identical event counts executed the same
protocol history.

Used by ``python -m repro sanitize`` and the analysis test-suite; the
invariant hooks in :mod:`repro.analysis.invariants` ride along on the
same runs.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.baselines.registry import build_store
from repro.sim.backend import active_kernel
from repro.workload import WorkloadRunner, workload

__all__ = [
    "Divergence",
    "MessageTap",
    "RunCapture",
    "SanitizeReport",
    "ShardedSanitizeReport",
    "TraceEntry",
    "capture_run",
    "locate_divergence",
    "sanitize_run",
    "sanitize_sharded",
]

#: One recorded send: (virtual time, src, dst, message type, wire bytes).
TraceEntry = Tuple[float, str, str, str, int]


class MessageTap:
    """Record every message a :class:`~repro.net.network.Network` accepts.

    Wraps ``network.send`` on the *instance*, so attaching never touches
    other deployments. Recording happens before drop checks — a dropped
    message is still protocol behaviour worth comparing.
    """

    def __init__(self) -> None:
        self.entries: List[TraceEntry] = []
        self._network: Any = None
        self._original: Optional[Callable[..., None]] = None

    def attach(self, network: Any) -> "MessageTap":
        if self._network is not None:
            raise RuntimeError("MessageTap is already attached")
        self._network = network
        self._original = network.send
        entries = self.entries
        original = network.send
        sim = network.sim

        def recording_send(src: Any, dst: Any, msg: Any) -> None:
            entries.append(
                (sim.now, str(src), str(dst), msg.type_name, msg.size_bytes())
            )
            original(src, dst, msg)

        network.send = recording_send
        return self

    def detach(self) -> None:
        if self._network is not None:
            self._network.send = self._original
            self._network = None
            self._original = None


@dataclasses.dataclass(frozen=True)
class Divergence:
    """First point where two same-seed traces disagree."""

    index: int
    left: Optional[TraceEntry]
    right: Optional[TraceEntry]
    context_left: Tuple[TraceEntry, ...]
    context_right: Tuple[TraceEntry, ...]

    def format(self) -> str:
        def fmt(entry: Optional[TraceEntry]) -> str:
            if entry is None:
                return "<trace ended>"
            t, src, dst, type_name, size = entry
            return f"t={t:.9f} {src} -> {dst} [{type_name}] {size}B"

        lines = [
            f"first divergent event at trace index {self.index}:",
            f"  run 1: {fmt(self.left)}",
            f"  run 2: {fmt(self.right)}",
            "  shared prefix tail:",
        ]
        lines.extend(f"    {fmt(entry)}" for entry in self.context_left)
        return "\n".join(lines)


def locate_divergence(
    left: Sequence[TraceEntry],
    right: Sequence[TraceEntry],
    context: int = 3,
) -> Optional[Divergence]:
    """Locate the first index where two traces disagree (None if equal).

    The scan short-circuits at the first mismatch, so the cost is the
    length of the shared prefix — the trace-level analogue of bisecting
    a failing run down to its first bad event.
    """
    limit = min(len(left), len(right))
    for index in range(limit):
        if left[index] != right[index]:
            lo = max(0, index - context)
            return Divergence(
                index=index,
                left=left[index],
                right=right[index],
                context_left=tuple(left[lo:index]),
                context_right=tuple(right[lo:index]),
            )
    if len(left) != len(right):
        index = limit
        lo = max(0, index - context)
        return Divergence(
            index=index,
            left=left[index] if index < len(left) else None,
            right=right[index] if index < len(right) else None,
            context_left=tuple(left[lo:index]),
            context_right=tuple(right[lo:index]),
        )
    return None


@dataclasses.dataclass
class RunCapture:
    """One traced experiment run."""

    trace: List[TraceEntry]
    events_processed: int
    ops_completed: int
    throughput: float
    invariant_report: Optional[Any] = None


def capture_run(
    protocol: str = "chainreaction",
    *,
    seed: int = 42,
    workload_name: str = "B",
    clients: int = 4,
    duration: float = 0.4,
    warmup: float = 0.1,
    sites: Tuple[str, ...] = ("dc0",),
    servers_per_site: int = 4,
    chain_length: int = 3,
    records: int = 25,
    check_invariants: bool = False,
    overrides: Optional[Dict[str, object]] = None,
    mutate_store: Optional[Callable[[Any], None]] = None,
) -> RunCapture:
    """Build a deployment, run one workload, and return its trace.

    ``overrides`` passes protocol config fields through to the store
    (e.g. the batching knobs for ``repro sanitize --batch``).
    ``mutate_store`` is a test hook invoked on the freshly built store
    before the run starts — used to inject deliberate nondeterminism and
    verify the detector localizes it.
    """
    store = build_store(
        protocol,
        sites=sites,
        servers_per_site=servers_per_site,
        chain_length=chain_length,
        seed=seed,
        overrides=overrides,
    )
    monitor = None
    if check_invariants:
        from repro.analysis.invariants import ChainInvariantMonitor

        monitor = ChainInvariantMonitor(store).attach()
    if mutate_store is not None:
        mutate_store(store)
    tap = MessageTap().attach(store.network)
    spec = workload(workload_name, record_count=records)
    result = WorkloadRunner(
        store, spec, n_clients=clients, duration=duration, warmup=warmup,
        record_history=False,
    ).run()
    tap.detach()
    return RunCapture(
        trace=tap.entries,
        events_processed=store.sim.events_processed,
        ops_completed=result.ops_completed,
        throughput=result.throughput,
        invariant_report=monitor.report() if monitor is not None else None,
    )


@dataclasses.dataclass
class SanitizeReport:
    """Outcome of the twice-run determinism check."""

    protocol: str
    seed: int
    trace_length: int
    divergence: Optional[Divergence]
    events_processed: Tuple[int, int]
    invariant_report: Optional[Any] = None

    @property
    def clean(self) -> bool:
        ok = self.divergence is None and (
            self.events_processed[0] == self.events_processed[1]
        )
        if self.invariant_report is not None:
            ok = ok and not self.invariant_report.violations
        return ok

    def format(self) -> str:
        lines = [
            f"sanitize: protocol={self.protocol} seed={self.seed} "
            f"trace={self.trace_length} messages "
            f"events={self.events_processed[0]}/{self.events_processed[1]}",
        ]
        if self.divergence is None:
            lines.append("twice-run: no divergence (traces bit-identical)")
        else:
            lines.append(self.divergence.format())
        if self.invariant_report is not None:
            lines.append(self.invariant_report.format())
        return "\n".join(lines)


def sanitize_run(
    protocol: str = "chainreaction",
    *,
    seed: int = 42,
    workload_name: str = "B",
    clients: int = 4,
    duration: float = 0.4,
    warmup: float = 0.1,
    sites: Tuple[str, ...] = ("dc0",),
    servers_per_site: int = 4,
    chain_length: int = 3,
    records: int = 25,
    check_invariants: bool = False,
    overrides: Optional[Dict[str, object]] = None,
    run_kwargs: Optional[Dict[str, Any]] = None,
) -> SanitizeReport:
    """Run the experiment twice under one seed and diff the traces.

    ``run_kwargs`` (a mapping of :func:`capture_run` keyword overrides
    applied to the *second* run only) exists for tests that deliberately
    perturb one run and assert the divergence is localized.
    """
    base: Dict[str, Any] = dict(
        seed=seed,
        workload_name=workload_name,
        clients=clients,
        duration=duration,
        warmup=warmup,
        sites=sites,
        servers_per_site=servers_per_site,
        chain_length=chain_length,
        records=records,
        overrides=overrides,
    )
    first = capture_run(protocol, check_invariants=check_invariants, **base)
    second_kwargs = dict(base)
    second_kwargs.update(run_kwargs or {})
    second = capture_run(protocol, **second_kwargs)
    return SanitizeReport(
        protocol=protocol,
        seed=seed,
        trace_length=len(first.trace),
        divergence=locate_divergence(first.trace, second.trace),
        events_processed=(first.events_processed, second.events_processed),
        invariant_report=first.invariant_report,
    )


# ----------------------------------------------------------------------
# sharded-engine sanitizer (``repro sanitize --workers N``)
# ----------------------------------------------------------------------


@dataclasses.dataclass
class ShardedSanitizeReport:
    """Outcome of the sharded-engine determinism check.

    Three digests are compared: two runs on ``workers`` processes (the
    twice-run check — a mismatch means nondeterminism *inside* a run)
    and one serial reference run on a single process (a mismatch there
    means the conservative engine's behaviour depends on the worker
    count, which :mod:`repro.sim.shard` promises it never does). The
    digest is the per-site sha256 over every ``Network.send``, so
    matching digests mean the full message traces matched.
    """

    protocol: str
    seed: int
    workers: int
    sites: Tuple[str, ...]
    rounds: int
    digests: Tuple[str, str]
    serial_digest: Optional[str]
    events_processed: Tuple[int, int]
    ops_completed: Tuple[int, int]

    @property
    def twice_run_clean(self) -> bool:
        return (
            self.digests[0] == self.digests[1]
            and self.events_processed[0] == self.events_processed[1]
        )

    @property
    def worker_count_clean(self) -> bool:
        return self.serial_digest is None or self.serial_digest == self.digests[0]

    @property
    def clean(self) -> bool:
        return self.twice_run_clean and self.worker_count_clean

    def format(self) -> str:
        lines = [
            f"sanitize[sharded]: protocol={self.protocol} seed={self.seed} "
            f"workers={self.workers} sites={len(self.sites)} "
            f"rounds={self.rounds} "
            f"events={self.events_processed[0]}/{self.events_processed[1]}",
        ]
        if self.twice_run_clean:
            lines.append(
                f"twice-run: no divergence (digest {self.digests[0][:16]}...)"
            )
        else:
            lines.append(
                "twice-run: DIVERGED — "
                f"digest {self.digests[0][:16]}... vs {self.digests[1][:16]}..."
            )
        if self.serial_digest is None:
            lines.append("worker-count: not checked")
        elif self.worker_count_clean:
            lines.append(
                f"worker-count: workers={self.workers} matches workers=1"
            )
        else:
            lines.append(
                "worker-count: DIVERGED — "
                f"workers=1 digest {self.serial_digest[:16]}... vs "
                f"workers={self.workers} digest {self.digests[0][:16]}..."
            )
        return "\n".join(lines)


def sanitize_sharded(
    protocol: str = "chainreaction",
    *,
    seed: int = 42,
    workload_name: str = "B",
    clients: int = 4,
    duration: float = 0.4,
    warmup: float = 0.1,
    sites: Tuple[str, ...] = ("dc0", "dc1"),
    servers_per_site: int = 4,
    chain_length: int = 3,
    records: int = 25,
    workers: int = 2,
    compare_serial: bool = True,
    overrides: Optional[Dict[str, object]] = None,
) -> ShardedSanitizeReport:
    """Twice-run the multi-process sharded engine and diff trace digests.

    The single-process sanitizer (:func:`sanitize_run`) cannot see
    nondeterminism that only exists on the multi-core path — pickling
    envelopes over worker pipes, per-process module state, round
    scheduling. This variant runs the :class:`repro.sim.shard`
    ``ShardedSimulator`` twice on ``workers`` processes and, when
    ``compare_serial`` is set, once more inline (workers=1) to check the
    engine's worker-count-invariance promise.
    """
    from repro.sim.shard import ExperimentSpec, ShardedSimulator

    spec = ExperimentSpec(
        workload=workload(workload_name, record_count=records),
        protocol=protocol,
        sites=tuple(sites),
        servers_per_site=servers_per_site,
        chain_length=chain_length,
        seed=seed,
        n_clients=clients,
        duration=duration,
        warmup=warmup,
        drain=0.5,
        overrides=tuple(sorted((overrides or {}).items())),
        kernel=active_kernel(),
    )
    first = ShardedSimulator(spec, workers=workers).run()
    second = ShardedSimulator(spec, workers=workers).run()
    serial = (
        ShardedSimulator(spec, workers=1).run() if compare_serial else None
    )
    return ShardedSanitizeReport(
        protocol=protocol,
        seed=seed,
        workers=first.workers,
        sites=spec.sites,
        rounds=first.rounds,
        digests=(first.trace_digest, second.trace_digest),
        serial_digest=serial.trace_digest if serial is not None else None,
        events_processed=(first.events_processed, second.events_processed),
        ops_completed=(first.ops_completed, second.ops_completed),
    )
