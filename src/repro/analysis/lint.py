"""Custom AST linter enforcing simulator purity.

Every rule here exists because the construct it bans has a concrete
failure mode in a discrete-event reproduction:

- ``no-wall-clock`` — ``time.time()`` / ``datetime.now()`` inside
  sim-driven code couples a run to the host clock; two runs with the
  same seed stop being comparable. (Wall-clock is legitimate in the
  perf harness, which *measures* the host — those files are
  whitelisted.)
- ``no-global-random`` — module-level ``random.random()`` et al. draw
  from the interpreter-global stream; any unrelated draw perturbs every
  later one. Randomness must flow from labelled
  :class:`~repro.sim.rng.RngRegistry` streams.
- ``no-unseeded-rng`` — ``random.Random()`` / ``random.Random(None)`` /
  ``random.SystemRandom`` seed from the OS; the run is unreproducible.
- ``no-builtin-hash-seed`` — builtin ``hash()`` on strings is salted by
  ``PYTHONHASHSEED``, so a seed derived from it differs between
  interpreter launches. Use :func:`repro.sim.rng.derive_seed`.
- ``frozen-message`` — protocol messages must be ``frozen=True``
  dataclasses: the wire-size memo (``memoize_size`` /
  ``copy_size_from``) caches the first ``size_bytes()`` result, so a
  mutated message would silently ship stale byte accounting.
- ``no-mutable-default`` — a mutable default argument is shared across
  calls; protocol state bleeding between actors breaks run isolation.
- ``set-iteration`` — iterating a bare ``set`` in event-ordering code
  makes the event order depend on hash layout. Iterate ``sorted(...)``
  or use an order-preserving container.
- ``slots`` — a class in a hot-path package (``sim``, ``storage``,
  ``core``) that assigns instance attributes but declares no
  ``__slots__`` carries a per-instance ``__dict__`` (~100 B each); at
  simulation scale those dicts dominate the heap. Classes that need a
  ``__dict__`` (dataclasses are exempt automatically; per-instance
  monkeypatch targets carry a pragma) opt out explicitly.
- ``module-mutable-state`` — a module-level mutable container in
  ``sim``/``net``/``storage`` is per-*process* state: under the sharded
  engine (:mod:`repro.sim.shard`) each worker imports its own copy, so
  anything accumulated there silently diverges between workers and
  between worker counts. Caches that are *correct* per-process (intern
  pools, freelists, size memos — rebuilt identically from the same
  inputs) carry a pragma saying so; anything else must live on an
  instance that a single shard owns.
- ``sort-tie-identity`` — a ``sorted()`` / ``heappush`` on a delivery
  path (``sim``/``net``) whose sort key can tie leaves the tie to
  whatever Python compares next: the following tuple element (often an
  object with no ``__lt__`` — a crash waiting for the first tie) or,
  for objects with inherited ordering, something derived from memory
  layout. Either way two runs with the same seed can deliver in
  different orders, which is exactly what the deterministic kernel
  exists to prevent, and what the schedule explorer
  (:mod:`repro.analysis.explore`) relies on to replay counterexamples
  bit-for-bit. Every such site must carry an explicit total-order
  tie-breaker — a ``(time, seq)``-style tuple with a sequence
  component, or a ``key=...sort_key`` function that provides one — or
  a pragma stating why ties are impossible (e.g. sorting distinct
  strings).

- ``compiled-kernel-clean`` — the :mod:`repro.kernelcore` modules are
  compiled by mypyc (``scripts/build_kernel.py``) and must stay
  *compilation-clean*: no dynamic attribute machinery (``getattr`` /
  ``setattr`` / ``vars`` / ``eval`` / ``__dict__`` — mypyc classes have
  no instance dict and the compiler specializes attribute access), no
  ``sys.getrefcount`` (refcounts differ between the interpreter and
  compiled code, so any behaviour keyed on them silently diverges
  between backends), no module-level mutable containers (interpreted
  and compiled copies of the module would each own one, splitting
  state the moment both are imported side by side), and every function
  fully annotated (mypyc compiles exactly what mypy can type).

Suppression: append ``# repro: lint-ok(<rule>[, <rule>...])`` to the
offending line, or put ``# repro: lint-ok-file(<rule>)`` in the first
ten lines of a file to exempt the whole file from one rule. Per-file
whitelists for genuinely wall-clock code live in
:data:`DEFAULT_WALL_CLOCK_EXEMPT`.
"""

from __future__ import annotations

import ast
import dataclasses
import re
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

__all__ = [
    "ALL_RULES",
    "COMPILED_CLEAN_DIRS",
    "DEFAULT_WALL_CLOCK_EXEMPT",
    "EVENT_ORDERING_DIRS",
    "MODULE_STATE_DIRS",
    "SLOTS_DIRS",
    "SORT_TIE_DIRS",
    "LintConfig",
    "LintViolation",
    "lint_file",
    "lint_paths",
    "lint_source",
    "run_lint",
]

# ----------------------------------------------------------------------
# rule inventory
# ----------------------------------------------------------------------

RULE_NO_WALL_CLOCK = "no-wall-clock"
RULE_NO_GLOBAL_RANDOM = "no-global-random"
RULE_NO_UNSEEDED_RNG = "no-unseeded-rng"
RULE_NO_BUILTIN_HASH_SEED = "no-builtin-hash-seed"
RULE_FROZEN_MESSAGE = "frozen-message"
RULE_NO_MUTABLE_DEFAULT = "no-mutable-default"
RULE_SET_ITERATION = "set-iteration"
RULE_SLOTS = "slots"
RULE_MODULE_STATE = "module-mutable-state"
RULE_SORT_TIE = "sort-tie-identity"
RULE_COMPILED_CLEAN = "compiled-kernel-clean"

ALL_RULES: Tuple[str, ...] = (
    RULE_NO_WALL_CLOCK,
    RULE_NO_GLOBAL_RANDOM,
    RULE_NO_UNSEEDED_RNG,
    RULE_NO_BUILTIN_HASH_SEED,
    RULE_FROZEN_MESSAGE,
    RULE_NO_MUTABLE_DEFAULT,
    RULE_SET_ITERATION,
    RULE_SLOTS,
    RULE_MODULE_STATE,
    RULE_SORT_TIE,
    RULE_COMPILED_CLEAN,
)

#: Files (paths relative to ``src/repro``) allowed to read the wall
#: clock: the perf harness measures the host machine by design.
DEFAULT_WALL_CLOCK_EXEMPT: Tuple[str, ...] = (
    "perf/report.py",
    "perf/micro.py",
    "perf/profile.py",
    "perf/legacy.py",
    "perf/protocol.py",
    "perf/scale.py",
    "perf/parallel.py",
    "perf/stability.py",
    "perf/compiled.py",
    "perf/partial.py",
)

#: Directories (relative to ``src/repro``) whose code runs inside the
#: event loop and therefore must not iterate unordered sets: a different
#: hash layout would reorder sends and break seed-stability.
EVENT_ORDERING_DIRS: Tuple[str, ...] = (
    "sim",
    "net",
    "core",
    "cluster",
    "baselines",
    "storage",
)

#: Directories (relative to ``src/repro``) whose classes are allocated
#: at simulation scale and therefore must declare ``__slots__`` (or
#: carry a pragma explaining why they need a ``__dict__``).
SLOTS_DIRS: Tuple[str, ...] = (
    "sim",
    "storage",
    "core",
)

#: Directories (relative to ``src/repro``) whose modules are imported
#: independently by every shard worker process: module-level mutable
#: containers there are per-process state that diverges across workers.
MODULE_STATE_DIRS: Tuple[str, ...] = (
    "sim",
    "net",
    "storage",
)

#: Directories (relative to ``src/repro``) on the message-delivery path:
#: any sort there decides delivery order, so tied sort keys make the
#: order fall through to object identity / memory layout.
SORT_TIE_DIRS: Tuple[str, ...] = (
    "sim",
    "net",
)

#: Directories (relative to ``src/repro``) compiled by mypyc: their
#: modules must stay compilation-clean (see module docstring).
COMPILED_CLEAN_DIRS: Tuple[str, ...] = (
    "kernelcore",
)

#: Builtins whose call is dynamic attribute/namespace machinery that
#: mypyc either rejects or deoptimizes; the kernel cores must not use
#: them.
_DYNAMIC_ATTR_BUILTINS: Set[str] = {
    "getattr",
    "setattr",
    "delattr",
    "vars",
    "eval",
    "exec",
    "globals",
    "locals",
    "__import__",
}

#: Constructors whose call produces a mutable container.
_MUTABLE_CONSTRUCTORS: Set[str] = {
    "list",
    "dict",
    "set",
    "bytearray",
    "defaultdict",
    "deque",
    "Counter",
    "OrderedDict",
}

#: Wall-clock functions per module.
_WALL_CLOCK_FUNCS: Dict[str, Set[str]] = {
    "time": {
        "time",
        "time_ns",
        "monotonic",
        "monotonic_ns",
        "perf_counter",
        "perf_counter_ns",
        "process_time",
        "process_time_ns",
        "sleep",
    },
    "datetime": {"now", "utcnow", "today"},
}

#: Module-level ``random`` functions that draw from (or reseed) the
#: interpreter-global stream.
_GLOBAL_RANDOM_FUNCS: Set[str] = {
    "random",
    "randint",
    "randrange",
    "getrandbits",
    "randbytes",
    "choice",
    "choices",
    "shuffle",
    "sample",
    "uniform",
    "triangular",
    "betavariate",
    "expovariate",
    "gammavariate",
    "gauss",
    "lognormvariate",
    "normalvariate",
    "vonmisesvariate",
    "paretovariate",
    "weibullvariate",
    "seed",
}

_PRAGMA_LINE = re.compile(r"#\s*repro:\s*lint-ok\(([^)]*)\)")
_PRAGMA_FILE = re.compile(r"#\s*repro:\s*lint-ok-file\(([^)]*)\)")


@dataclasses.dataclass(frozen=True)
class LintViolation:
    """One rule violation at a source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: [{self.rule}] {self.message}"


@dataclasses.dataclass(frozen=True)
class LintConfig:
    """Which rules apply where.

    ``wall_clock_exempt`` entries are path suffixes (POSIX separators)
    matched against the linted file; ``event_ordering_dirs`` scopes the
    ``set-iteration`` rule to code that runs inside the event loop;
    ``slots_dirs`` scopes the ``slots`` rule to the hot-path packages
    whose instances exist in per-key / per-event quantities;
    ``module_state_dirs`` scopes the ``module-mutable-state`` rule to
    the packages every shard worker imports independently;
    ``sort_tie_dirs`` scopes the ``sort-tie-identity`` rule to the
    packages whose sorts decide message-delivery order;
    ``compiled_clean_dirs`` scopes the ``compiled-kernel-clean`` rule
    to the packages mypyc compiles.
    """

    rules: Tuple[str, ...] = ALL_RULES
    wall_clock_exempt: Tuple[str, ...] = DEFAULT_WALL_CLOCK_EXEMPT
    event_ordering_dirs: Tuple[str, ...] = EVENT_ORDERING_DIRS
    slots_dirs: Tuple[str, ...] = SLOTS_DIRS
    module_state_dirs: Tuple[str, ...] = MODULE_STATE_DIRS
    sort_tie_dirs: Tuple[str, ...] = SORT_TIE_DIRS
    compiled_clean_dirs: Tuple[str, ...] = COMPILED_CLEAN_DIRS

    def rules_for(self, path: Path) -> Set[str]:
        """The subset of rules that applies to ``path``."""
        posix = path.as_posix()
        active = set(self.rules)
        if RULE_NO_WALL_CLOCK in active and any(
            posix.endswith(f"repro/{suffix}") for suffix in self.wall_clock_exempt
        ):
            active.discard(RULE_NO_WALL_CLOCK)
        if RULE_SET_ITERATION in active and "/repro/" in posix:
            rel = posix.split("/repro/", 1)[1]
            top = rel.split("/", 1)[0]
            if "/" in rel and top not in self.event_ordering_dirs:
                active.discard(RULE_SET_ITERATION)
        if RULE_SLOTS in active and "/repro/" in posix:
            rel = posix.split("/repro/", 1)[1]
            top = rel.split("/", 1)[0]
            if "/" not in rel or top not in self.slots_dirs:
                active.discard(RULE_SLOTS)
        if RULE_MODULE_STATE in active and "/repro/" in posix:
            rel = posix.split("/repro/", 1)[1]
            top = rel.split("/", 1)[0]
            if "/" not in rel or top not in self.module_state_dirs:
                active.discard(RULE_MODULE_STATE)
        if RULE_SORT_TIE in active and "/repro/" in posix:
            rel = posix.split("/repro/", 1)[1]
            top = rel.split("/", 1)[0]
            if "/" not in rel or top not in self.sort_tie_dirs:
                active.discard(RULE_SORT_TIE)
        if RULE_COMPILED_CLEAN in active:
            # Opt-in by directory (unlike the discard-scoped rules above):
            # full-annotation and no-dynamic-attribute requirements are far
            # too strict for ordinary python, so the rule applies only to
            # files that are actually compiled.
            in_compiled_dir = False
            if "/repro/" in posix:
                rel = posix.split("/repro/", 1)[1]
                top = rel.split("/", 1)[0]
                in_compiled_dir = "/" in rel and top in self.compiled_clean_dirs
            if not in_compiled_dir:
                active.discard(RULE_COMPILED_CLEAN)
        return active


# ----------------------------------------------------------------------
# the visitor
# ----------------------------------------------------------------------


class _ImportTracker:
    """Resolve names back to the module attribute they were imported as."""

    def __init__(self) -> None:
        #: local alias -> module name (``import time as t`` => t -> time)
        self.modules: Dict[str, str] = {}
        #: local alias -> (module, attr) (``from time import time as now``)
        self.members: Dict[str, Tuple[str, str]] = {}

    def visit_import(self, node: ast.Import) -> None:
        for alias in node.names:
            self.modules[alias.asname or alias.name.split(".")[0]] = alias.name

    def visit_import_from(self, node: ast.ImportFrom) -> None:
        if node.module is None or node.level:
            return
        for alias in node.names:
            self.members[alias.asname or alias.name] = (node.module, alias.name)

    def resolve_call(self, func: ast.expr) -> Optional[Tuple[str, str]]:
        """``(module, attr)`` a called expression resolves to, if known.

        Handles ``module.attr(...)``, ``from module import attr`` +
        ``attr(...)``, and ``datetime.datetime.now(...)`` style chains
        (collapsed to the root module plus the final attribute).
        """
        if isinstance(func, ast.Name):
            return self.members.get(func.id)
        if isinstance(func, ast.Attribute):
            parts: List[str] = [func.attr]
            value = func.value
            while isinstance(value, ast.Attribute):
                parts.append(value.attr)
                value = value.value
            if isinstance(value, ast.Name):
                root = value.id
                module = self.modules.get(root)
                if module is not None:
                    return (module, parts[0])
                member = self.members.get(root)
                if member is not None:
                    # e.g. ``from datetime import datetime`` + datetime.now()
                    return (f"{member[0]}.{member[1]}", parts[0])
        return None


def _is_seedy_name(name: str) -> bool:
    lowered = name.lower()
    return "seed" in lowered or "rng" in lowered


def _contains_builtin_hash(node: ast.AST) -> Optional[ast.Call]:
    """The first builtin ``hash(...)`` call inside ``node``, if any."""
    for child in ast.walk(node):
        if (
            isinstance(child, ast.Call)
            and isinstance(child.func, ast.Name)
            and child.func.id == "hash"
        ):
            return child
    return None


class _Linter(ast.NodeVisitor):
    def __init__(
        self,
        path: str,
        active: Set[str],
        set_names: Optional[Set[str]] = None,
        set_attrs: Optional[Set[str]] = None,
    ) -> None:
        self.path = path
        self.active = active
        self.violations: List[LintViolation] = []
        self.imports = _ImportTracker()
        #: names/attributes known to hold bare sets in this module,
        #: collected in a pre-pass so use-before-binding is still caught
        self._set_names: Set[str] = set_names if set_names is not None else set()
        self._set_attrs: Set[str] = set_attrs if set_attrs is not None else set()

    # -- helpers --------------------------------------------------------
    def _add(self, node: ast.AST, rule: str, message: str) -> None:
        if rule in self.active:
            self.violations.append(
                LintViolation(
                    path=self.path,
                    line=getattr(node, "lineno", 0),
                    col=getattr(node, "col_offset", 0),
                    rule=rule,
                    message=message,
                )
            )

    # -- imports --------------------------------------------------------
    def visit_Import(self, node: ast.Import) -> None:
        self.imports.visit_import(node)
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        self.imports.visit_import_from(node)
        self.generic_visit(node)

    # -- calls ----------------------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        resolved = self.imports.resolve_call(node.func)
        if resolved is not None:
            module, attr = resolved
            self._check_wall_clock(node, module, attr)
            self._check_global_random(node, module, attr)
            self._check_unseeded_rng(node, module, attr)
            self._check_hash_seed_call(node, module, attr)
            self._check_compiled_clean_resolved(node, module, attr)
        elif isinstance(node.func, ast.Name) and node.func.id == "derive_seed":
            self._check_hash_in_args(node, "derive_seed")
        self._check_sort_tie(node)
        self._check_compiled_clean_call(node)
        self.generic_visit(node)

    def _check_wall_clock(self, node: ast.Call, module: str, attr: str) -> None:
        root = module.split(".")[0]
        banned = _WALL_CLOCK_FUNCS.get(root)
        if banned is not None and attr in banned:
            self._add(
                node,
                RULE_NO_WALL_CLOCK,
                f"wall-clock call {module}.{attr}() in sim-driven code; "
                "use Simulator.now / virtual time",
            )

    def _check_global_random(self, node: ast.Call, module: str, attr: str) -> None:
        if module == "random" and attr in _GLOBAL_RANDOM_FUNCS:
            self._add(
                node,
                RULE_NO_GLOBAL_RANDOM,
                f"module-level random.{attr}() draws from the interpreter-global "
                "stream; use an RngRegistry stream",
            )

    def _check_unseeded_rng(self, node: ast.Call, module: str, attr: str) -> None:
        if module == "random" and attr == "SystemRandom":
            self._add(
                node,
                RULE_NO_UNSEEDED_RNG,
                "random.SystemRandom draws OS entropy; simulations must seed "
                "from RngRegistry/derive_seed",
            )
            return
        if module == "random" and attr == "Random":
            unseeded = not node.args and not node.keywords
            none_seeded = bool(node.args) and (
                isinstance(node.args[0], ast.Constant) and node.args[0].value is None
            )
            if unseeded or none_seeded:
                self._add(
                    node,
                    RULE_NO_UNSEEDED_RNG,
                    "random.Random() without an explicit seed is OS-seeded and "
                    "unreproducible; pass a derive_seed(...) value",
                )

    def _check_hash_seed_call(self, node: ast.Call, module: str, attr: str) -> None:
        if (module, attr) == ("random", "Random") or attr == "derive_seed" or _is_seedy_name(attr):
            self._check_hash_in_args(node, f"{module}.{attr}")

    def _check_hash_in_args(self, node: ast.Call, context: str) -> None:
        for arg in list(node.args) + [kw.value for kw in node.keywords]:
            found = _contains_builtin_hash(arg)
            if found is not None:
                self._add(
                    found,
                    RULE_NO_BUILTIN_HASH_SEED,
                    f"builtin hash() feeding {context}(...) is salted by "
                    "PYTHONHASHSEED; use repro.sim.rng.derive_seed",
                )

    # -- compiled-kernel cleanliness ------------------------------------
    def _check_compiled_clean_call(self, node: ast.Call) -> None:
        if RULE_COMPILED_CLEAN not in self.active:
            return
        if isinstance(node.func, ast.Name) and node.func.id in _DYNAMIC_ATTR_BUILTINS:
            self._add(
                node,
                RULE_COMPILED_CLEAN,
                f"{node.func.id}() in a mypyc-compiled kernel core: dynamic "
                "attribute/namespace machinery is rejected or deoptimized by "
                "the compiler; use direct attribute access",
            )

    def _check_compiled_clean_resolved(
        self, node: ast.Call, module: str, attr: str
    ) -> None:
        if RULE_COMPILED_CLEAN not in self.active:
            return
        if module.split(".")[0] == "sys" and attr == "getrefcount":
            self._add(
                node,
                RULE_COMPILED_CLEAN,
                "sys.getrefcount() in a mypyc-compiled kernel core: refcounts "
                "differ between interpreted and compiled code, so behaviour "
                "keyed on them diverges between backends; track ownership "
                "explicitly instead",
            )

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if RULE_COMPILED_CLEAN in self.active and node.attr == "__dict__":
            self._add(
                node,
                RULE_COMPILED_CLEAN,
                "__dict__ access in a mypyc-compiled kernel core: compiled "
                "classes carry no instance dict; access attributes directly",
            )
        self.generic_visit(node)

    def _check_compiled_annotations(self, node: ast.AST) -> None:
        if RULE_COMPILED_CLEAN not in self.active:
            return
        args = node.args  # type: ignore[attr-defined]
        name = node.name  # type: ignore[attr-defined]
        positional = list(args.posonlyargs) + list(args.args)
        # The first positional arg of a method is the instance/class
        # binding; its type is implied.
        if positional and positional[0].arg in ("self", "cls"):
            positional = positional[1:]
        missing = [
            a.arg
            for a in positional + list(args.kwonlyargs)
            if a.annotation is None
        ]
        for vararg in (args.vararg, args.kwarg):
            if vararg is not None and vararg.annotation is None:
                missing.append(vararg.arg)
        if getattr(node, "returns", None) is None:
            missing.append("return")
        if missing:
            self._add(
                node,
                RULE_COMPILED_CLEAN,
                f"def {name} in a mypyc-compiled kernel core is missing "
                f"annotations ({', '.join(missing)}); mypyc compiles exactly "
                "what mypy can type, so every signature must be complete",
            )

    # -- assignments (hash-seed + set tracking) -------------------------
    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._check_seed_assignment(target, node.value)
            self._track_set_binding(target, node.value)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._check_seed_assignment(node.target, node.value)
            self._track_set_binding(node.target, node.value)
        self.generic_visit(node)

    def _target_name(self, target: ast.expr) -> Optional[str]:
        if isinstance(target, ast.Name):
            return target.id
        if (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
        ):
            return target.attr
        return None

    def _check_seed_assignment(self, target: ast.expr, value: ast.expr) -> None:
        name = self._target_name(target)
        if name is None or not _is_seedy_name(name):
            return
        found = _contains_builtin_hash(value)
        if found is not None:
            self._add(
                found,
                RULE_NO_BUILTIN_HASH_SEED,
                f"builtin hash() assigned to seed-like name {name!r} is salted "
                "by PYTHONHASHSEED; use repro.sim.rng.derive_seed",
            )

    def _is_bare_set_expr(self, value: ast.expr) -> bool:
        if isinstance(value, ast.Set):
            return True
        if isinstance(value, ast.SetComp):
            return True
        if isinstance(value, ast.Call) and isinstance(value.func, ast.Name):
            return value.func.id in ("set", "frozenset")
        return False

    def _track_set_binding(self, target: ast.expr, value: ast.expr) -> None:
        if not self._is_bare_set_expr(value):
            return
        if isinstance(target, ast.Name):
            self._set_names.add(target.id)
        elif (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
        ):
            self._set_attrs.add(target.attr)

    # -- mutable defaults -----------------------------------------------
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_mutable_defaults(node)
        self._check_compiled_annotations(node)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_mutable_defaults(node)
        self._check_compiled_annotations(node)
        self.generic_visit(node)

    def _check_mutable_defaults(self, node: ast.AST) -> None:
        args = node.args  # type: ignore[attr-defined]
        for default in list(args.defaults) + [
            d for d in args.kw_defaults if d is not None
        ]:
            mutable = isinstance(default, (ast.List, ast.Dict, ast.Set)) or (
                isinstance(default, ast.Call)
                and isinstance(default.func, ast.Name)
                and default.func.id in ("list", "dict", "set", "bytearray")
            )
            if mutable:
                self._add(
                    default,
                    RULE_NO_MUTABLE_DEFAULT,
                    "mutable default argument is shared across calls; "
                    "default to None and construct inside the function",
                )

    # -- frozen messages -------------------------------------------------
    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        if self._subclasses_message(node):
            self._check_frozen_dataclass(node)
        else:
            self._check_slots(node)
        self.generic_visit(node)

    def _subclasses_message(self, node: ast.ClassDef) -> bool:
        for base in node.bases:
            if isinstance(base, ast.Name) and base.id == "Message":
                return True
            if isinstance(base, ast.Attribute) and base.attr == "Message":
                return True
        return False

    def _check_frozen_dataclass(self, node: ast.ClassDef) -> None:
        for deco in node.decorator_list:
            if isinstance(deco, ast.Call):
                func = deco.func
                name = (
                    func.id
                    if isinstance(func, ast.Name)
                    else func.attr
                    if isinstance(func, ast.Attribute)
                    else None
                )
                if name == "dataclass":
                    for kw in deco.keywords:
                        if (
                            kw.arg == "frozen"
                            and isinstance(kw.value, ast.Constant)
                            and kw.value.value is True
                        ):
                            return
                    self._add(
                        node,
                        RULE_FROZEN_MESSAGE,
                        f"protocol message {node.name} must be a frozen "
                        "dataclass (frozen=True): the wire-size memo assumes "
                        "messages never mutate after construction",
                    )
                    return
            elif isinstance(deco, (ast.Name, ast.Attribute)):
                name = deco.id if isinstance(deco, ast.Name) else deco.attr
                if name == "dataclass":
                    self._add(
                        node,
                        RULE_FROZEN_MESSAGE,
                        f"protocol message {node.name} must be a frozen "
                        "dataclass (frozen=True): the wire-size memo assumes "
                        "messages never mutate after construction",
                    )
                    return
        # No dataclass decorator at all: also a violation — messages are
        # sized field-by-field through the dataclass machinery.
        self._add(
            node,
            RULE_FROZEN_MESSAGE,
            f"protocol message {node.name} must be declared as a frozen "
            "dataclass so wire sizing can enumerate its fields",
        )

    # -- slots ------------------------------------------------------------
    def _check_slots(self, node: ast.ClassDef) -> None:
        if RULE_SLOTS not in self.active:
            return
        if self._is_dataclass_decorated(node):
            # Dataclass layout (including frozen messages, which memoize
            # their wire size onto the instance) is the dataclass's
            # business — instance attrs come from field declarations,
            # not method-body assignments.
            return
        if self._has_slots_declaration(node):
            return
        attrs = self._instance_attrs(node)
        if not attrs:
            return
        preview = ", ".join(sorted(attrs)[:4])
        if len(attrs) > 4:
            preview += ", ..."
        self._add(
            node,
            RULE_SLOTS,
            f"hot-path class {node.name} assigns instance attributes "
            f"({preview}) but declares no __slots__; every instance "
            "carries a __dict__ — add __slots__ or a "
            "'# repro: lint-ok(slots)' pragma explaining why the dict "
            "is needed",
        )

    def _is_dataclass_decorated(self, node: ast.ClassDef) -> bool:
        for deco in node.decorator_list:
            target = deco.func if isinstance(deco, ast.Call) else deco
            name = (
                target.id
                if isinstance(target, ast.Name)
                else target.attr
                if isinstance(target, ast.Attribute)
                else None
            )
            if name == "dataclass":
                return True
        return False

    def _has_slots_declaration(self, node: ast.ClassDef) -> bool:
        for stmt in node.body:
            if isinstance(stmt, ast.Assign):
                targets = stmt.targets
            elif isinstance(stmt, ast.AnnAssign):
                targets = [stmt.target]
            else:
                continue
            for target in targets:
                if isinstance(target, ast.Name) and target.id == "__slots__":
                    return True
        return False

    def _instance_attrs(self, node: ast.ClassDef) -> Set[str]:
        """``self.<attr>`` assignment targets across the class's methods."""
        attrs: Set[str] = set()
        for stmt in node.body:
            if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            for child in ast.walk(stmt):
                targets: List[ast.expr] = []
                if isinstance(child, ast.Assign):
                    targets = list(child.targets)
                elif isinstance(child, (ast.AnnAssign, ast.AugAssign)):
                    targets = [child.target]
                for target in targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        attrs.add(target.attr)
        return attrs

    # -- set iteration ---------------------------------------------------
    def visit_For(self, node: ast.For) -> None:
        self._check_set_iteration(node.iter)
        self.generic_visit(node)

    def visit_comprehension(self, node: ast.comprehension) -> None:
        self._check_set_iteration(node.iter)
        self.generic_visit(node)

    def _check_set_iteration(self, iter_node: ast.expr) -> None:
        if self._is_bare_set_expr(iter_node):
            self._add(
                iter_node,
                RULE_SET_ITERATION,
                "iteration over a bare set in event-ordering code depends on "
                "hash layout; iterate sorted(...) or an ordered container",
            )
            return
        if isinstance(iter_node, ast.Name) and iter_node.id in self._set_names:
            self._add(
                iter_node,
                RULE_SET_ITERATION,
                f"iteration over set-valued name {iter_node.id!r} in "
                "event-ordering code; iterate sorted(...) or an ordered container",
            )
        elif (
            isinstance(iter_node, ast.Attribute)
            and isinstance(iter_node.value, ast.Name)
            and iter_node.value.id == "self"
            and iter_node.attr in self._set_attrs
        ):
            self._add(
                iter_node,
                RULE_SET_ITERATION,
                f"iteration over set-valued attribute self.{iter_node.attr} in "
                "event-ordering code; iterate sorted(...) or an ordered container",
            )

    # -- sort ties on delivery paths --------------------------------------
    def _check_sort_tie(self, node: ast.Call) -> None:
        """Flag ``sorted()`` / ``heappush`` whose key can tie.

        A tie in the leading key components makes Python compare whatever
        comes next — another tuple element (TypeError on the first tie if
        it lacks ``__lt__``) or an object ordering derived from memory
        layout. Both break seed-stable delivery order. A site is
        considered safe when the ordered value visibly carries a sequence
        tie-breaker (a tuple with a ``seq``-named component) or uses a
        designated ``...sort_key`` function; everything else needs a
        pragma arguing why ties are impossible.
        """
        if RULE_SORT_TIE not in self.active:
            return
        func = node.func
        name = (
            func.id
            if isinstance(func, ast.Name)
            else func.attr
            if isinstance(func, ast.Attribute)
            else None
        )
        if name is None:
            return
        if name.lstrip("_") == "heappush":
            if len(node.args) >= 2 and not self._has_seq_tiebreak(node.args[1]):
                self._add(
                    node,
                    RULE_SORT_TIE,
                    "heappush entry on a delivery path has no visible "
                    "(time, seq) tie-breaker: tied priorities fall through "
                    "to comparing the next element; push a tuple with a "
                    "monotonic seq component or add a "
                    "'# repro: lint-ok(sort-tie-identity)' pragma stating "
                    "why ties are impossible",
                )
        elif name == "sorted" and isinstance(func, ast.Name):
            key = next(
                (kw.value for kw in node.keywords if kw.arg == "key"), None
            )
            if key is None:
                self._add(
                    node,
                    RULE_SORT_TIE,
                    "sorted() on a delivery path without an explicit "
                    "tie-breaking key: elements whose ordering can tie "
                    "fall back to identity/insertion order; sort by an "
                    "explicit (time, seq)-style key or add a "
                    "'# repro: lint-ok(sort-tie-identity)' pragma stating "
                    "why ties are impossible",
                )
            elif not self._is_total_order_key(key):
                self._add(
                    node,
                    RULE_SORT_TIE,
                    "sorted() key on a delivery path can tie without a "
                    "(time, seq) tie-breaker: return a tuple ending in a "
                    "monotonic seq component, use a designated ...sort_key "
                    "function, or add a "
                    "'# repro: lint-ok(sort-tie-identity)' pragma stating "
                    "why ties are impossible",
                )

    def _has_seq_tiebreak(self, item: ast.expr) -> bool:
        if not isinstance(item, ast.Tuple):
            return False
        return any(self._is_seq_like(el) for el in item.elts)

    def _is_seq_like(self, expr: ast.expr) -> bool:
        name = (
            expr.id
            if isinstance(expr, ast.Name)
            else expr.attr
            if isinstance(expr, ast.Attribute)
            else None
        )
        return name is not None and "seq" in name.lower()

    def _is_total_order_key(self, key: ast.expr) -> bool:
        name = (
            key.id
            if isinstance(key, ast.Name)
            else key.attr
            if isinstance(key, ast.Attribute)
            else None
        )
        if name is not None and "sort_key" in name:
            return True
        if isinstance(key, ast.Lambda):
            body = key.body
            if isinstance(body, ast.Tuple) and any(
                self._is_seq_like(el) for el in body.elts
            ):
                return True
        return False

    # -- module-level mutable state ---------------------------------------
    def check_module_state(self, tree: ast.Module) -> None:
        """Flag top-level bindings of mutable containers.

        Walks module-scope statements only (descending through ``if`` /
        ``try`` / ``with`` blocks but never into function or class
        bodies): the rule is about state shared by *everything in the
        process*, which under the sharded engine means state that
        diverges between worker processes.
        """
        if (
            RULE_MODULE_STATE not in self.active
            and RULE_COMPILED_CLEAN not in self.active
        ):
            return
        self._walk_module_scope(tree.body)

    def _walk_module_scope(self, body: Sequence[ast.stmt]) -> None:
        for stmt in body:
            if isinstance(
                stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue
            pairs: List[Tuple[ast.expr, ast.expr]] = []
            if isinstance(stmt, ast.Assign):
                pairs = [(target, stmt.value) for target in stmt.targets]
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                pairs = [(stmt.target, stmt.value)]
            for target, value in pairs:
                self._check_module_state_binding(stmt, target, value)
            # Descend through module-level control flow — a pool built
            # inside ``try: ... except ImportError`` is still module state.
            for attr in ("body", "orelse", "finalbody", "handlers"):
                blocks = getattr(stmt, attr, None)
                if not blocks:
                    continue
                if attr == "handlers":
                    for handler in blocks:
                        self._walk_module_scope(handler.body)
                else:
                    self._walk_module_scope(blocks)

    def _check_module_state_binding(
        self, stmt: ast.stmt, target: ast.expr, value: ast.expr
    ) -> None:
        if not isinstance(target, ast.Name):
            return
        name = target.id
        if name.startswith("__") and name.endswith("__"):
            # Dunders (__all__ et al.) are interpreter/module conventions,
            # not shared protocol state.
            return
        if not self._is_mutable_container_expr(value):
            return
        self._add(
            stmt,
            RULE_MODULE_STATE,
            f"module-level mutable container {name!r}: each shard worker "
            "process gets its own copy, so contents silently diverge across "
            "workers; move it onto a shard-owned instance, or add a "
            "'# repro: lint-ok(module-mutable-state)' pragma if it is a "
            "per-process cache rebuilt identically from the same inputs",
        )
        self._add(
            stmt,
            RULE_COMPILED_CLEAN,
            f"module-level mutable container {name!r} in a mypyc-compiled "
            "kernel core: the interpreted and compiled copies of the module "
            "would each own one, splitting state the moment both backends "
            "are imported side by side; keep caches in the interpreted "
            "shell modules (storage/version.py, sim/hlc.py) instead",
        )

    def _is_mutable_container_expr(self, value: ast.expr) -> bool:
        if isinstance(
            value,
            (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp),
        ):
            return True
        if isinstance(value, ast.Call):
            func = value.func
            name = (
                func.id
                if isinstance(func, ast.Name)
                else func.attr
                if isinstance(func, ast.Attribute)
                else None
            )
            return name in _MUTABLE_CONSTRUCTORS
        return False


# ----------------------------------------------------------------------
# pragma handling + entry points
# ----------------------------------------------------------------------


def _collect_set_bindings(tree: ast.AST) -> Tuple[Set[str], Set[str]]:
    """Names / ``self.<attr>`` targets bound to bare sets anywhere in the
    module — a pre-pass so iteration sites before the binding are caught."""

    def is_set_expr(value: ast.expr) -> bool:
        if isinstance(value, (ast.Set, ast.SetComp)):
            return True
        return (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Name)
            and value.func.id in ("set", "frozenset")
        )

    names: Set[str] = set()
    attrs: Set[str] = set()
    for node in ast.walk(tree):
        pairs: List[Tuple[ast.expr, ast.expr]] = []
        if isinstance(node, ast.Assign):
            pairs = [(target, node.value) for target in node.targets]
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            pairs = [(node.target, node.value)]
        for target, value in pairs:
            if not is_set_expr(value):
                continue
            if isinstance(target, ast.Name):
                names.add(target.id)
            elif (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                attrs.add(target.attr)
    return names, attrs


def _parse_pragmas(source: str) -> Tuple[Dict[int, Set[str]], Set[str]]:
    """(line -> suppressed rules, file-wide suppressed rules)."""
    per_line: Dict[int, Set[str]] = {}
    whole_file: Set[str] = set()
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _PRAGMA_LINE.search(line)
        if match:
            rules = {part.strip() for part in match.group(1).split(",") if part.strip()}
            per_line.setdefault(lineno, set()).update(rules)
        if lineno <= 10:
            match = _PRAGMA_FILE.search(line)
            if match:
                whole_file.update(
                    part.strip() for part in match.group(1).split(",") if part.strip()
                )
    return per_line, whole_file


def lint_source(
    source: str, path: str = "<string>", config: Optional[LintConfig] = None
) -> List[LintViolation]:
    """Lint one source string; ``path`` scopes per-file rule selection."""
    config = config or LintConfig()
    active = config.rules_for(Path(path))
    if not active:
        return []
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            LintViolation(
                path=path,
                line=exc.lineno or 0,
                col=exc.offset or 0,
                rule="syntax-error",
                message=str(exc.msg),
            )
        ]
    per_line, whole_file = _parse_pragmas(source)
    set_names, set_attrs = _collect_set_bindings(tree)
    linter = _Linter(path, active - whole_file, set_names, set_attrs)
    linter.visit(tree)
    linter.check_module_state(tree)
    seen: Set[LintViolation] = set()
    out: List[LintViolation] = []
    for violation in sorted(
        linter.violations, key=lambda v: (v.line, v.col, v.rule, v.message)
    ):
        if violation.rule in per_line.get(violation.line, ()):
            continue
        dedupe = dataclasses.replace(violation, message="")
        if dedupe in seen:
            continue
        seen.add(dedupe)
        out.append(violation)
    return out


def lint_file(path: Path, config: Optional[LintConfig] = None) -> List[LintViolation]:
    return lint_source(path.read_text(encoding="utf-8"), str(path), config)


def _iter_python_files(paths: Sequence[Path]) -> Iterable[Path]:
    for path in paths:
        if path.is_dir():
            yield from sorted(path.rglob("*.py"))
        elif path.suffix == ".py":
            yield path


def lint_paths(
    paths: Sequence[Path], config: Optional[LintConfig] = None
) -> List[LintViolation]:
    """Lint files and directories (recursively); stable ordering."""
    violations: List[LintViolation] = []
    for path in _iter_python_files(paths):
        violations.extend(lint_file(path, config))
    return violations


def default_lint_root() -> Path:
    """The ``src/repro`` tree this module was loaded from."""
    return Path(__file__).resolve().parent.parent


def run_lint(
    paths: Optional[Sequence[str]] = None, config: Optional[LintConfig] = None
) -> List[LintViolation]:
    """Entry point used by the CLI: lint ``paths`` or the whole package."""
    targets = (
        [Path(p) for p in paths] if paths else [default_lint_root()]
    )
    return lint_paths(targets, config)
