"""Systematic small-scope schedule exploration (bounded model checking).

The seeded simulator checks the paper's invariants along *one* schedule
per seed. This module instead drives the deterministic kernel through
**all** message-delivery interleavings and crash/recover placements of a
small scope (a couple of datacenters, two-to-three node chains, a
handful of operations), runs the terminal-state oracles after every
complete schedule, and — on a violation — shrinks the choice trace to a
minimal counterexample that replays from a seed-independent schedule
file.

Execution model
---------------
Every protocol message (everything except failure-detector heartbeats)
is diverted into a per-link FIFO queue instead of being delivered by the
latency model. The real network already guarantees per-link FIFO, so the
head of each ``(src, dst)`` queue is the only deliverable message on
that link and a *choice* is simply "which link delivers next" — plus,
optionally, "fire one of the scope's crash/recover actions now". The
kernel consults the attached :class:`~repro.sim.kernel.DeliveryChooser`
exactly when virtual time would otherwise advance, which pins the
discipline: **all pending messages drain before any timer fires**.
Timeouts and retries therefore never race the deliveries being
explored; they only run on schedules that leave a message queued across
a quiescent instant — which the drain rule forbids. Recording stops at
client-visible quiescence (all scripted operations completed); the
remaining in-flight metadata then drains in canonical order.

Partial-order reduction
-----------------------
Depth-first enumeration with conflict-driven *backtrack sets*
(Flanagan–Godefroid dynamic POR) plus *sleep sets* for deduplication.
In ``mode="dpor"`` a node's alternatives start empty; after each
executed schedule, every transition in the new suffix is compared
against **all** earlier transitions on the path, and wherever the pair
is dependent the later choice is added to the earlier node's backtrack
set (or, if not enabled there, the whole enabled set is — the classical
conservative fallback). Comparing against *every* earlier dependent
node, not just the latest, is what catches chains of conflicts with no
happens-before tracking. Deliveries that happen *after* client-visible
quiescence (the canonical settle drain) still feed the same conflict
analysis — without those edges, a message the canonical order defers
past quiescence would never be proposed earlier, and bugs that need it
delivered mid-workload would be missed.

Two enabled choices are independent when both are message deliveries to
different destination actors, neither destination is a cluster manager
(its view fan-out mutates other actors directly), and the link sets
they enqueue onto are disjoint — the enqueue footprint is recorded live
by the diversion hook during each delivery's same-instant cascade, i.e.
the :func:`repro.net.network.commutativity_fingerprint` refined with
observed effects. Everything else — and every fault action — is treated
as dependent, which errs on the side of exploring too much, never too
little. ``mode="naive"`` disables the reduction (every node starts with
its full enabled set) for coverage-ratio reporting.

Fault actions can be *gated* (:attr:`FaultAction.after_put`): the
action only becomes eligible once a put-request for the named key has
been delivered, which places "the fault lands mid-operation" scenarios
on (or near) the canonical schedule instead of a long chain of
deviations away.

The proving ground
------------------
Each seeded protocol mutation in
:data:`repro.core.config.PROTOCOL_MUTATIONS` has a scenario here sized
so the explorer provably finds the bug (and the clean tree provably
passes the identical scope). See :data:`SCENARIOS`.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import time
from collections import deque
from typing import (
    Any,
    Callable,
    Deque,
    Dict,
    Generator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.analysis.invariants import ChainInvariantMonitor
from repro.baselines.registry import build_store
from repro.checker.causal import check_causal
from repro.checker.history import GET, PUT, History
from repro.cluster.membership import RingView
from repro.core.config import PROTOCOL_MUTATIONS
from repro.core.datastore import ChainReactionStore
from repro.errors import CheckerError, ReproError
from repro.net.message import Message
from repro.net.network import Address
from repro.sim.kernel import DeliveryChooser, Simulator
from repro.sim.process import Future, spawn
from repro.storage.version import VersionVector

__all__ = [
    "Choice",
    "ExploreError",
    "ExploreOp",
    "ExploreReport",
    "ExploreScope",
    "FaultAction",
    "ReplayResult",
    "SCENARIOS",
    "Schedule",
    "Violation",
    "explore_scope",
    "load_schedule",
    "minimize_counterexample",
    "replay_schedule",
    "save_schedule",
    "scenario",
    "scenario_names",
    "save_counterexample",
]

#: schedule-file format version (bump on incompatible change)
SCHEDULE_FORMAT = 1

#: message types that stay on the ordinary timer-driven path — the
#: failure detector is infrastructure, not explored protocol behaviour
#: (scenarios disable the detector via a huge failure_timeout anyway).
#: The clock plane's periodic traffic is diverted like everything else:
#: the per-link FIFO queues preserve the ship-before-vector same-link
#: ordering its correctness argument leans on, while letting schedules
#: interleave the (cross-link) injections, ticks, and reads.
_UNDIVERTED = frozenset({"heartbeat"})

#: virtual seconds granted to pre-scenario repair traffic (view changes
#: from scripted pre-crashes) before exploration begins
_PRESETTLE = 0.3

#: run_window slice while driving a schedule
_SLICE = 0.25

#: hard cap on decisions in one schedule — a runaway guard, far above
#: any real small-scope trace
_STEP_CAP = 4000

#: virtual_nodes used by every explore scope (and its key probing)
_VNODES = 8


class ExploreError(ReproError):
    """Exploration/replay failed structurally (not a protocol violation)."""


class _PruneRun(Exception):
    """Internal: every enabled choice is slept — this continuation is
    covered by a sibling; abandon the schedule without oracle checks."""


# ----------------------------------------------------------------------
# choices, scopes, schedules
# ----------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class Choice:
    """One scheduling decision.

    ``kind == "msg"``: deliver the head of the ``src -> dst`` link queue
    (addresses as ``"site:node"`` strings). ``kind == "act"``: fire the
    named fault action against ``target`` (``"site:server"``).
    """

    kind: str
    src: str = ""
    dst: str = ""
    action: str = ""
    target: str = ""

    def sort_key(self) -> Tuple[int, str, str, str, str]:
        # actions first: crash placements near the root fail fast
        return (0 if self.kind == "act" else 1, self.action, self.target, self.src, self.dst)

    def label(self) -> str:
        if self.kind == "act":
            return f"{self.action}({self.target})"
        return f"{self.src}->{self.dst}"

    def to_wire(self, type_name: str = "") -> Dict[str, str]:
        if self.kind == "act":
            return {"kind": "act", "action": self.action, "target": self.target}
        out = {"kind": "msg", "src": self.src, "dst": self.dst}
        if type_name:
            out["type"] = type_name
        return out

    @staticmethod
    def from_wire(data: Dict[str, str]) -> "Choice":
        if data.get("kind") == "act":
            return Choice(kind="act", action=data["action"], target=data["target"])
        return Choice(kind="msg", src=data["src"], dst=data["dst"])


@dataclasses.dataclass(frozen=True)
class ExploreOp:
    """One scripted client operation (``kind`` in put/get/pause)."""

    session: str
    site: str
    kind: str
    key: str = ""
    value: Any = None
    delay: float = 0.0


@dataclasses.dataclass(frozen=True)
class FaultAction:
    """An explorable fault placement: ``action`` in crash/recover.

    ``after_put`` (optional) holds the action back until a client put
    for that key has been *delivered* to a server. Without it the
    canonical schedule fires every action at the first decision point —
    fine for most scopes, but when the interesting race is
    "fault lands while an operation is in flight", reaching it from an
    eager-fault canonical path takes a long chain of coordinated
    deviations that deep-first search never assembles within budget.
    The gate moves the canonical path inside the race window instead."""

    action: str
    site: str
    server: str
    after_put: Optional[str] = None

    @property
    def target(self) -> str:
        return f"{self.site}:{self.server}"


@dataclasses.dataclass(frozen=True)
class ExploreScope:
    """A fully-specified small scope: deployment, workload, faults.

    ``pre_crash`` servers are crashed (and removed from membership)
    *before* exploration starts — the repair traffic settles on the
    canonical path and is not part of the choice space. ``actions`` are
    the explorable placements: each may fire at most once, at any
    decision point where at least one message is also deliverable.
    """

    name: str
    sites: Tuple[str, ...]
    servers_per_site: int
    chain_length: int
    ack_k: int
    ops: Tuple[ExploreOp, ...]
    pre_crash: Tuple[Tuple[str, str], ...] = ()
    actions: Tuple[FaultAction, ...] = ()
    overrides: Tuple[Tuple[str, Any], ...] = ()
    mutations: Tuple[str, ...] = ()
    settle: float = 1.0
    horizon: float = 20.0
    check_progress: bool = True
    check_convergence: bool = True
    check_stability_convergence: bool = True

    def config_overrides(self) -> Dict[str, Any]:
        """The deterministic-exploration base config, plus scope tweaks."""
        merged: Dict[str, Any] = {
            # zero service time and tiny flat latencies: a delivery's
            # whole cascade stays on one instant, so ordering is decided
            # purely by explored choices, never by latency arithmetic
            "service_time": 0.0,
            "lan_median": 1e-4,
            "wan_median": 1e-4,
            # the failure detector never fires (pre-crashes are applied
            # to membership explicitly); heartbeats still flow
            "failure_timeout": 1e6,
            # deterministic read targets: every read goes to the tail
            "allow_prefix_reads": False,
            "degraded_reads": False,
            "virtual_nodes": _VNODES,
            "dep_wait_timeout": 0.3,
            "backoff_jitter": 0.0,
            "mutations": tuple(self.mutations),
        }
        merged.update(dict(self.overrides))
        return merged

    def without_mutations(self) -> "ExploreScope":
        """The identical scope on the clean (fixed) tree."""
        return dataclasses.replace(self, mutations=())

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "sites": list(self.sites),
            "servers_per_site": self.servers_per_site,
            "chain_length": self.chain_length,
            "ack_k": self.ack_k,
            "ops": [dataclasses.asdict(op) for op in self.ops],
            "pre_crash": [list(pair) for pair in self.pre_crash],
            "actions": [dataclasses.asdict(act) for act in self.actions],
            "overrides": [list(item) for item in self.overrides],
            "mutations": list(self.mutations),
            "settle": self.settle,
            "horizon": self.horizon,
            "check_progress": self.check_progress,
            "check_convergence": self.check_convergence,
            "check_stability_convergence": self.check_stability_convergence,
        }

    @staticmethod
    def from_dict(data: Dict[str, Any]) -> "ExploreScope":
        return ExploreScope(
            name=data["name"],
            sites=tuple(data["sites"]),
            servers_per_site=data["servers_per_site"],
            chain_length=data["chain_length"],
            ack_k=data["ack_k"],
            ops=tuple(ExploreOp(**op) for op in data["ops"]),
            pre_crash=tuple((s, n) for s, n in data.get("pre_crash", ())),
            actions=tuple(FaultAction(**act) for act in data.get("actions", ())),
            overrides=tuple((k, v) for k, v in data.get("overrides", ())),
            mutations=tuple(data.get("mutations", ())),
            settle=data.get("settle", 1.0),
            horizon=data.get("horizon", 20.0),
            check_progress=data.get("check_progress", True),
            check_convergence=data.get("check_convergence", True),
            check_stability_convergence=data.get("check_stability_convergence", True),
        )


@dataclasses.dataclass(frozen=True)
class Violation:
    """One oracle finding at a terminal state."""

    kind: str
    subject: str
    key: str
    detail: str

    def as_tuple(self) -> Tuple[str, str, str, str]:
        return (self.kind, self.subject, self.key, self.detail)

    def __str__(self) -> str:
        return f"[{self.kind}] {self.subject} key={self.key}: {self.detail}"


def violation_signature(violations: Sequence[Violation]) -> str:
    """A stable digest of an oracle outcome, for bit-for-bit replay
    comparison. Order-insensitive (violation lists are sorted first)."""
    items = sorted(v.as_tuple() for v in violations)
    blob = json.dumps(items, sort_keys=True, separators=(",", ":"))
    return "sha256:" + hashlib.sha256(blob.encode("utf-8")).hexdigest()


@dataclasses.dataclass(frozen=True)
class Schedule:
    """A replayable counterexample: scope + explicit delivery order.

    Seed-independent: the trace pins every message delivery and fault
    placement explicitly, so replay does not depend on latency samples
    or any RNG stream.
    """

    scope: ExploreScope
    trace: Tuple[Choice, ...]
    types: Tuple[str, ...]
    signature: str
    violations: Tuple[Violation, ...]

    def to_dict(self) -> Dict[str, Any]:
        wire = []
        for i, choice in enumerate(self.trace):
            type_name = self.types[i] if i < len(self.types) else ""
            wire.append(choice.to_wire(type_name))
        return {
            "format": SCHEDULE_FORMAT,
            "scope": self.scope.to_dict(),
            "trace": wire,
            "signature": self.signature,
            "violations": [list(v.as_tuple()) for v in self.violations],
        }

    @staticmethod
    def from_dict(data: Dict[str, Any]) -> "Schedule":
        if data.get("format") != SCHEDULE_FORMAT:
            raise ExploreError(
                f"unsupported schedule format {data.get('format')!r} "
                f"(expected {SCHEDULE_FORMAT})"
            )
        trace = tuple(Choice.from_wire(entry) for entry in data["trace"])
        types = tuple(entry.get("type", "") for entry in data["trace"])
        violations = tuple(
            Violation(*item) for item in data.get("violations", ())
        )
        return Schedule(
            scope=ExploreScope.from_dict(data["scope"]),
            trace=trace,
            types=types,
            signature=data["signature"],
            violations=violations,
        )


def save_schedule(path: str, schedule: Schedule) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(schedule.to_dict(), fh, indent=2, sort_keys=True)
        fh.write("\n")


def load_schedule(path: str) -> Schedule:
    with open(path, "r", encoding="utf-8") as fh:
        return Schedule.from_dict(json.load(fh))


# ----------------------------------------------------------------------
# one schedule: runner
# ----------------------------------------------------------------------
#: a delivery's observed footprint: (destination actor, links enqueued
#: onto during its same-instant cascade)
_Effects = Tuple[str, frozenset]


@dataclasses.dataclass
class _Frame:
    """Per-decision record handed back to the DFS driver."""

    enabled: Tuple[Choice, ...]
    chosen: Choice
    effects: Optional[_Effects]
    sleep: List[Tuple[Choice, _Effects]]


@dataclasses.dataclass
class _RunOutcome:
    frames: List[_Frame]
    trace: List[Choice]
    types: List[str]
    pruned: bool
    violations: List[Violation]
    signature: str
    ops_done: bool
    #: deliveries made during the canonical post-quiescence drain, with
    #: their observed effects. Not branchable — but the conflict analysis
    #: must see them: a message the canonical order defers past client
    #: quiescence still conflicts with recorded transitions, and without
    #: these edges no backtrack point ever proposes delivering it earlier.
    post: List[Tuple[Choice, Optional[_Effects]]] = dataclasses.field(
        default_factory=list
    )


def _independent(
    a: Choice, a_eff: Optional[_Effects], b: Choice, b_eff: Optional[_Effects]
) -> bool:
    """True when delivering ``a`` and ``b`` in either order provably
    reaches the same state (the DPOR independence relation).

    Conservative: fault actions, manager-bound deliveries (view fan-out
    mutates listeners on other actors), and anything with an unrecorded
    footprint are dependent with everything.
    """
    if a.kind != "msg" or b.kind != "msg":
        return False
    if a_eff is None or b_eff is None:
        return False
    if a.dst == b.dst:
        return False
    if a.dst.endswith(":manager") or b.dst.endswith(":manager"):
        return False
    return not (a_eff[1] & b_eff[1])


class _Hook(DeliveryChooser):
    """Kernel-facing adapter; the runner owns all the state."""

    __slots__ = ("_runner",)

    def __init__(self, runner: "_ScheduleRunner") -> None:
        self._runner = runner

    def release(self, sim: Simulator) -> bool:
        return self._runner.release()


class _ScheduleRunner:
    """Drives one deployment through one (partially forced) schedule.

    Modes:
      * *explore*: follow ``forced`` (the DFS path prefix), then pick
        canonically among non-slept enabled choices, evolving the sleep
        set by independence; prune when everything enabled is slept.
      * *strict replay* (``strict=True``): every forced entry must be
        enabled when its turn comes, else :class:`ExploreError`.
      * *guided* (``guided`` set): best-effort — play each guidance
        entry that is enabled when reached, silently drop the rest
        (the delta-debugging probe mode).
    After the forced/guided input is exhausted (or the scripted ops
    complete), the run continues canonically with no sleep pruning.
    """

    def __init__(
        self,
        scope: ExploreScope,
        forced: Sequence[Choice] = (),
        branch_sleep: Sequence[Tuple[Choice, _Effects]] = (),
        dpor: bool = True,
        strict: bool = False,
        guided: Optional[Sequence[Choice]] = None,
    ) -> None:
        self.scope = scope
        self._forced = list(forced)
        self._branch_sleep = list(branch_sleep)
        self._dpor = dpor
        self._strict = strict
        self._guided = list(guided) if guided is not None else None
        self._guided_pos = 0

        self._queues: Dict[Tuple[str, str], Deque[Tuple[Address, Address, Message]]] = {}
        self._order: List[Tuple[str, str]] = []  # deterministic link listing
        self._frames: List[_Frame] = []
        self._trace: List[Choice] = []
        self._types: List[str] = []
        self._sleep: List[Tuple[Choice, _Effects]] = []
        self._open_choice: Optional[Choice] = None
        self._open_links: Set[Tuple[str, str]] = set()
        self._fired_actions: Set[int] = set()
        self._armed_actions: Set[int] = {
            i for i, act in enumerate(scope.actions) if act.after_put is None
        }
        self._recording = True
        self._settling = False
        self._post: List[Tuple[Choice, Optional[_Effects]]] = []
        self._futures: List[Future] = []
        self._failures: List[Tuple[str, str, str, str]] = []
        self._puts: Dict[str, List[VersionVector]] = {}
        self._store: Optional[ChainReactionStore] = None
        self._history = History()

    # -- network diversion ---------------------------------------------
    def divert(self, src: Address, dst: Address, msg: Message) -> bool:
        if msg.type_name in _UNDIVERTED:
            return False
        link = (str(src), str(dst))
        queue = self._queues.get(link)
        if queue is None:
            queue = self._queues[link] = deque()
            self._order.append(link)
            self._order.sort()
        queue.append((src, dst, msg))
        if self._open_choice is not None:
            self._open_links.add(link)
        return True

    # -- choice enumeration --------------------------------------------
    def _enabled(self) -> List[Choice]:
        msgs = [
            Choice(kind="msg", src=link[0], dst=link[1])
            for link in self._order
            if self._queues[link]
        ]
        if not msgs:
            return []
        acts = [
            Choice(kind="act", action=act.action, target=act.target)
            for i, act in enumerate(self.scope.actions)
            if i in self._armed_actions and i not in self._fired_actions
        ]
        return acts + msgs

    def _close_effects(self) -> None:
        if self._open_choice is None:
            return
        choice, links = self._open_choice, frozenset(self._open_links)
        self._open_choice, self._open_links = None, set()
        effects: _Effects = (choice.dst, links)
        if self._recording and self._frames and self._frames[-1].chosen == choice:
            self._frames[-1].effects = effects
        elif not self._recording:
            self._post.append((choice, effects))
        # evolve the sleep set: drop everything dependent on what just ran
        self._sleep = [
            (c, eff) for (c, eff) in self._sleep if _independent(c, eff, choice, effects)
        ]

    def _fire(self, choice: Choice) -> None:
        assert self._store is not None
        if choice.kind == "msg":
            queue = self._queues[(choice.src, choice.dst)]
            src, dst, msg = queue.popleft()
            if len(self._armed_actions) < len(self.scope.actions):
                if msg.type_name == "put-request":
                    key = getattr(msg, "key", None)
                    self._armed_actions.update(
                        i for i, act in enumerate(self.scope.actions)
                        if act.after_put == key
                    )
            self._open_choice = choice
            self._store.network.inject_now(src, dst, msg)
            return
        for i, act in enumerate(self.scope.actions):
            if act.target == choice.target and act.action == choice.action:
                if i in self._fired_actions:
                    continue
                self._fired_actions.add(i)
                node = self._store._node(act.site, act.server)
                manager = self._store.managers[act.site]
                if act.action == "crash":
                    node.crash()
                    manager._remove_server(act.server)
                elif act.action == "recover":
                    node.recover()
                    manager.add_server(act.server)
                else:
                    raise ExploreError(f"unknown fault action {act.action!r}")
                return
        raise ExploreError(f"fault action {choice.label()} not available")

    def release(self) -> bool:
        """One decision point (kernel callback; see module docstring)."""
        self._close_effects()
        if not self._settling and all(f.done() for f in self._futures):
            # client-visible quiescence: stop recording/branching, drain
            # the in-flight metadata canonically
            self._settling = True
            self._recording = False
        enabled = self._enabled()
        if not enabled:
            return False
        if self._settling:
            choice = next(c for c in enabled if c.kind == "msg")
            self._fire(choice)
            return True
        depth = len(self._trace)
        if depth >= _STEP_CAP:
            raise ExploreError(
                f"schedule exceeded {_STEP_CAP} decisions in scope "
                f"{self.scope.name!r}; livelock in the explored protocol?"
            )
        choice = self._pick(depth, enabled)
        sleep_now = list(self._sleep)
        if choice.kind == "msg":
            self._types.append(self._queues[(choice.src, choice.dst)][0][2].type_name)
        else:
            self._types.append("")
        self._trace.append(choice)
        self._frames.append(
            _Frame(enabled=tuple(enabled), chosen=choice, effects=None, sleep=sleep_now)
        )
        self._fire(choice)
        if choice.kind == "act":
            # fault placements are dependent with everything
            self._sleep = []
        elif depth == len(self._forced) - 1 and self._branch_sleep:
            # entering the DFS branch: seed the sleep set with the
            # already-explored siblings (filtered once effects close)
            self._sleep = list(self._branch_sleep)
        return True

    def _pick(self, depth: int, enabled: List[Choice]) -> Choice:
        if depth < len(self._forced):
            choice = self._forced[depth]
            if choice in enabled:
                return choice
            if self._strict:
                raise ExploreError(
                    f"replay diverged at step {depth}: {choice.label()} is not "
                    f"enabled (enabled: {[c.label() for c in enabled]})"
                )
            # non-strict forced prefix (shouldn't happen from the DFS)
            return enabled[0]
        if self._guided is not None:
            while self._guided_pos < len(self._guided):
                candidate = self._guided[self._guided_pos]
                self._guided_pos += 1
                if candidate in enabled:
                    return candidate
            return next(c for c in enabled if c.kind == "msg")
        if not self._dpor:
            return enabled[0]
        slept = {c for c, _ in self._sleep}
        for candidate in enabled:
            if candidate not in slept:
                return candidate
        raise _PruneRun()

    # -- the client scripts --------------------------------------------
    def _script(
        self, sim: Simulator, session: Any, ops: Sequence[ExploreOp]
    ) -> Generator[Any, Any, None]:
        for op in ops:
            if op.kind == "pause":
                yield op.delay
                continue
            invoked = sim.now
            try:
                if op.kind == "put":
                    result = yield session.put(op.key, op.value)
                    self._puts.setdefault(op.key, []).append(result.version)
                    self._history.add(
                        op.session, PUT, op.key, op.value, result.version,
                        invoked, sim.now, site=op.site,
                    )
                elif op.kind == "get":
                    result = yield session.get(op.key)
                    self._history.add(
                        op.session, GET, op.key, result.value, result.version,
                        invoked, sim.now, site=op.site,
                    )
                else:
                    raise ExploreError(f"unknown op kind {op.kind!r}")
            except ReproError as exc:
                self._failures.append((op.session, op.kind, op.key, str(exc)))

    # -- driving -------------------------------------------------------
    def run(self) -> _RunOutcome:
        scope = self.scope
        store = build_store(
            "chainreaction",
            sites=scope.sites,
            servers_per_site=scope.servers_per_site,
            chain_length=scope.chain_length,
            ack_k=scope.ack_k,
            seed=42,
            overrides=scope.config_overrides(),
        )
        assert isinstance(store, ChainReactionStore)
        self._store = store
        sim = store.sim
        for site, server in scope.pre_crash:
            store._node(site, server).crash()
            store.managers[site]._remove_server(server)
        if scope.pre_crash:
            sim.run(until=sim.now + _PRESETTLE)
        monitor = ChainInvariantMonitor(store).attach()
        self._history = History()
        sessions: Dict[Tuple[str, str], Any] = {}
        scripted: Dict[Tuple[str, str], List[ExploreOp]] = {}
        for op in scope.ops:
            ident = (op.site, op.session)
            if ident not in sessions:
                sessions[ident] = store.session(op.site, op.session)
                scripted[ident] = []
            scripted[ident].append(op)
        store.network.set_divert(self.divert)
        sim.set_delivery_chooser(_Hook(self))
        for ident, ops in scripted.items():
            self._futures.append(
                spawn(sim, self._script(sim, sessions[ident], ops),
                      name=f"explore:{ident[1]}")
            )
        pruned = False
        deadline = sim.now + scope.horizon
        try:
            while sim.now < deadline and not all(f.done() for f in self._futures):
                bound = sim.now + _SLICE
                upcoming = sim.next_event_time()
                if upcoming is not None and upcoming >= bound:
                    bound = upcoming + 1e-9
                if sim.run_window(min(bound, deadline)) == 0 and upcoming is None:
                    break
            self._settling = True
            self._recording = False
            sim.run_window(sim.now + scope.settle)
            self._close_effects()
        except _PruneRun:
            pruned = True
        finally:
            sim.set_delivery_chooser(None)
            store.network.set_divert(None)
        if pruned:
            return _RunOutcome(
                frames=self._frames, trace=self._trace, types=self._types,
                pruned=True, violations=[], signature="", ops_done=False,
                post=self._post,
            )
        ops_done = all(f.done() for f in self._futures)
        violations = self._oracles(store, monitor, ops_done)
        return _RunOutcome(
            frames=self._frames, trace=self._trace, types=self._types,
            pruned=False, violations=violations,
            signature=violation_signature(violations), ops_done=ops_done,
            post=self._post,
        )

    # -- terminal oracles ----------------------------------------------
    def _oracles(
        self, store: ChainReactionStore, monitor: ChainInvariantMonitor, ops_done: bool
    ) -> List[Violation]:
        scope = self.scope
        out: List[Violation] = []
        if scope.check_progress:
            if not ops_done:
                out.append(Violation("progress", "", "", "scripted operations did not complete within the horizon"))
            for session, kind, key, detail in self._failures:
                out.append(Violation("progress", session, key, f"{kind} failed: {detail}"))
        try:
            self._history.validate()
        except CheckerError as exc:
            out.append(Violation("history", "", "", str(exc)))
        else:
            for cv in check_causal(self._history, validate=False):
                out.append(
                    Violation("causal:" + cv.guarantee, cv.session, cv.key, cv.detail)
                )
        for iv in monitor.report().violations:
            out.append(Violation("invariant:" + iv.kind, iv.node, iv.key, iv.detail))
        keys = sorted({op.key for op in scope.ops if op.key})
        if scope.check_convergence:
            for key in keys:
                if not store.converged(key):
                    out.append(Violation("convergence", "", key, "replicas disagree on (value, version)"))
        if scope.check_stability_convergence:
            out.extend(self._stability_convergence(store))
        return out

    def _stability_convergence(self, store: ChainReactionStore) -> List[Violation]:
        """Liveness at quiescence: the newest acknowledged write of every
        key must be DC-stable on its full chain, in every site. Only
        meaningful for crash-free scopes (repair can legitimately strand
        stability; scenarios with faults set the flag False)."""
        out: List[Violation] = []
        for key, versions in sorted(self._puts.items()):
            newest = versions[0]
            for version in versions[1:]:
                if version.dominates(newest):
                    newest = version
            for site, manager in sorted(store.managers.items()):
                for server in manager.view.chain_for(key):
                    node = store._node(site, server)
                    if not node.stability.is_stable(key, newest):
                        out.append(
                            Violation(
                                "stability-convergence",
                                f"{site}:{server}",
                                key,
                                f"version {newest} never became DC-stable",
                            )
                        )
        return out


# ----------------------------------------------------------------------
# DFS driver with sleep-set DPOR
# ----------------------------------------------------------------------
@dataclasses.dataclass
class _PathNode:
    enabled: Tuple[Choice, ...]
    via: Choice
    tried: Dict[Choice, Optional[_Effects]]
    sleep: List[Tuple[Choice, _Effects]]
    #: conflict-driven backtrack set (Flanagan/Godefroid-style): the only
    #: siblings worth exploring here. Seeded empty; a later transition
    #: that is *dependent* with this node's choice adds itself (or, when
    #: it was not yet enabled here, everything enabled) on analysis.
    #: Naive mode seeds it with the full enabled set instead.
    backtrack: Set[Choice] = dataclasses.field(default_factory=set)

    def effects_of(self, choice: Choice) -> Optional[_Effects]:
        return self.tried.get(choice)


@dataclasses.dataclass
class Counterexample:
    """A violating schedule as found (pre-minimization)."""

    trace: Tuple[Choice, ...]
    types: Tuple[str, ...]
    violations: Tuple[Violation, ...]
    signature: str


@dataclasses.dataclass
class ExploreReport:
    """Outcome of exploring one scope."""

    scope: ExploreScope
    mode: str
    schedules: int
    pruned: int
    decisions: int
    max_depth: int
    complete: bool
    counterexample: Optional[Counterexample]
    elapsed: float
    naive_schedules: Optional[int] = None
    naive_complete: Optional[bool] = None

    @property
    def clean(self) -> bool:
        return self.counterexample is None

    @property
    def pruning_ratio(self) -> Optional[float]:
        if not self.naive_schedules or not self.schedules:
            return None
        return self.naive_schedules / float(self.schedules)

    def summary(self) -> str:
        lines = [
            f"explore {self.scope.name}: mode={self.mode} "
            f"schedules={self.schedules} pruned-prefixes={self.pruned} "
            f"decisions={self.decisions} max-depth={self.max_depth} "
            f"complete={'yes' if self.complete else 'no (budget)'} "
            f"elapsed={self.elapsed:.1f}s"
        ]
        if self.naive_schedules is not None:
            ratio = self.pruning_ratio
            bound = "" if self.naive_complete else ">="
            lines.append(
                f"  naive enumeration: {bound}{self.naive_schedules} schedules"
                + (f" -> DPOR pruning ratio {bound}{ratio:.1f}x" if ratio else "")
            )
        if self.counterexample is None:
            lines.append("  no violation found")
        else:
            lines.append(
                f"  VIOLATION after {self.schedules} schedules "
                f"({len(self.counterexample.trace)} decisions):"
            )
            for violation in self.counterexample.violations:
                lines.append(f"    {violation}")
        return "\n".join(lines)


def explore_scope(
    scope: ExploreScope,
    budget: int = 20000,
    mode: str = "dpor",
    stop_on_violation: bool = True,
    expect_clean_signature: Optional[str] = None,
) -> ExploreReport:
    """Enumerate the scope's schedule space depth-first.

    ``budget`` caps the number of executed schedules (terminal states
    plus pruned prefixes); ``complete`` in the report says whether the
    space was exhausted before the cap. ``mode`` is ``"dpor"`` (sleep-set
    reduction) or ``"naive"``. With ``expect_clean_signature`` set, only
    an outcome whose signature differs counts as a violation (used by
    minimization; normally any non-empty violation list does).
    """
    if mode not in ("dpor", "naive"):
        raise ExploreError(f"unknown explore mode {mode!r}")
    dpor = mode == "dpor"
    # tool-level reporting: how long the *exploration* took on the host,
    # not anything the simulated protocol can observe
    started = time.monotonic()  # repro: lint-ok(no-wall-clock)
    path: List[_PathNode] = []
    forced: List[Choice] = []
    branch_sleep: List[Tuple[Choice, _Effects]] = []
    schedules = pruned = decisions = max_depth = 0
    counterexample: Optional[Counterexample] = None
    complete = True
    while True:
        runner = _ScheduleRunner(
            scope, forced=forced, branch_sleep=branch_sleep, dpor=dpor
        )
        outcome = runner.run()
        decisions += max(0, len(outcome.trace) - len(forced))
        max_depth = max(max_depth, len(outcome.trace))
        if outcome.pruned:
            pruned += 1
        else:
            schedules += 1
            violating = bool(outcome.violations)
            if expect_clean_signature is not None:
                violating = outcome.signature != expect_clean_signature
            if violating and counterexample is None:
                counterexample = Counterexample(
                    trace=tuple(outcome.trace),
                    types=tuple(outcome.types),
                    violations=tuple(outcome.violations),
                    signature=outcome.signature,
                )
                if stop_on_violation:
                    break
        # merge this run's frames into the persistent DFS path
        frames = outcome.frames
        if forced:
            node = path[len(forced) - 1]
            node.via = forced[-1]
            effects = (
                frames[len(forced) - 1].effects if len(frames) >= len(forced) else None
            )
            node.tried[forced[-1]] = effects
        for frame in frames[len(forced):]:
            path.append(
                _PathNode(
                    enabled=frame.enabled,
                    via=frame.chosen,
                    tried={frame.chosen: frame.effects},
                    sleep=frame.sleep,
                    backtrack=set() if dpor else set(frame.enabled),
                )
            )
        if dpor:
            # conflict analysis: each transition from this run adds a
            # backtrack point at the *latest* earlier node whose choice
            # it is dependent with — reordering independent transitions
            # provably reaches the same state, so no sibling is proposed
            # there at all. (Sleep sets still deduplicate the remainder.)
            # Only pairs involving this run's new suffix are new; the
            # branch node itself (len(forced) - 1) changed its via.
            for j in range(max(0, len(forced) - 1), len(path)):
                node_j = path[j]
                eff_j = node_j.effects_of(node_j.via)
                for i in range(j - 1, -1, -1):
                    node_i = path[i]
                    if _independent(
                        node_i.via, node_i.effects_of(node_i.via), node_j.via, eff_j
                    ):
                        continue
                    # every earlier dependent node gets the candidate,
                    # not just the latest: chains of conflicts (j depends
                    # on i2 depends on i1) need the reordering before i1
                    # too, and the cheap scan has no happens-before
                    # tracking to prove it redundant
                    if node_j.via in node_i.enabled:
                        node_i.backtrack.add(node_j.via)
                    else:
                        node_i.backtrack.update(node_i.enabled)
            # deliveries the canonical drain made after client-visible
            # quiescence still conflict with recorded transitions; their
            # edges are what lets the DFS pull a deferred message ahead
            # of the read/write it would have raced
            for choice_j, eff_j in outcome.post:
                for i in range(len(path) - 1, -1, -1):
                    node_i = path[i]
                    if _independent(
                        node_i.via, node_i.effects_of(node_i.via), choice_j, eff_j
                    ):
                        continue
                    if choice_j in node_i.enabled:
                        node_i.backtrack.add(choice_j)
                    else:
                        node_i.backtrack.update(node_i.enabled)
        if schedules + pruned >= budget:
            complete = False
            break
        # backtrack to the deepest state with an unexplored, unslept
        # choice from its backtrack set (enabled-order for determinism)
        target: Optional[Choice] = None
        while path:
            node = path[-1]
            slept = {c for c, _ in node.sleep}
            for candidate in node.enabled:
                if (
                    candidate in node.backtrack
                    and candidate not in node.tried
                    and candidate not in slept
                ):
                    target = candidate
                    break
            if target is not None:
                break
            path.pop()
        if target is None:
            break
        branch_sleep = list(path[-1].sleep) + [
            (c, eff) for c, eff in path[-1].tried.items() if eff is not None
        ]
        forced = [n.via for n in path[:-1]] + [target]
    return ExploreReport(
        scope=scope,
        mode=mode,
        schedules=schedules,
        pruned=pruned,
        decisions=decisions,
        max_depth=max_depth,
        complete=complete,
        counterexample=counterexample,
        elapsed=time.monotonic() - started,  # repro: lint-ok(no-wall-clock)
    )


# ----------------------------------------------------------------------
# replay + minimization
# ----------------------------------------------------------------------
@dataclasses.dataclass
class ReplayResult:
    """Outcome of re-running a saved schedule."""

    violations: Tuple[Violation, ...]
    signature: str
    reproduced: bool
    trace: Tuple[Choice, ...]
    types: Tuple[str, ...]


def replay_schedule(
    schedule: Schedule, strict: bool = True, on_clean_tree: bool = False
) -> ReplayResult:
    """Re-run a schedule and compare oracle outcomes.

    ``strict`` demands every recorded choice be enabled in recorded
    order (bit-for-bit reproduction on the same tree). With
    ``on_clean_tree`` the scope's mutations are stripped first — the
    clean tree takes different message paths, so replay drops to guided
    (best-effort) mode and ``reproduced`` reports whether the *original*
    violation signature recurred (it must not, once the bug is fixed).
    """
    scope = schedule.scope.without_mutations() if on_clean_tree else schedule.scope
    if on_clean_tree:
        strict = False
    runner = _ScheduleRunner(
        scope,
        forced=schedule.trace if strict else (),
        dpor=False,
        strict=strict,
        guided=None if strict else schedule.trace,
    )
    outcome = runner.run()
    return ReplayResult(
        violations=tuple(outcome.violations),
        signature=outcome.signature,
        reproduced=outcome.signature == schedule.signature,
        trace=tuple(outcome.trace),
        types=tuple(outcome.types),
    )


def _probe(
    scope: ExploreScope,
    forced: Sequence[Choice],
    signature: str,
    guided: bool = False,
) -> Optional[_RunOutcome]:
    """Run one minimization probe; the outcome if it reproduces the
    violation signature, else None."""
    runner = _ScheduleRunner(
        scope,
        forced=() if guided else forced,
        dpor=False,
        strict=not guided,
        guided=forced if guided else None,
    )
    try:
        outcome = runner.run()
    except ExploreError:
        return None
    if outcome.pruned or outcome.signature != signature:
        return None
    return outcome


def minimize_counterexample(
    scope: ExploreScope,
    counterexample: Counterexample,
    max_probes: int = 400,
) -> Schedule:
    """Shrink a violating trace to a minimal replayable schedule.

    Two phases: binary-search the shortest violating prefix (canonical
    completion supplies the tail), then classic ddmin over the remaining
    entries with guided (skip-if-disabled) replay. The winner is
    re-recorded under strict replay so the saved schedule is exactly the
    trace a verifier will see.
    """
    signature = counterexample.signature
    trace = list(counterexample.trace)
    probes = 0

    # Phase 1: shortest violating prefix.
    low, high = 0, len(trace)
    if _probe(scope, trace[:0], signature) is not None:
        high = 0
    while low < high and probes < max_probes:
        mid = (low + high) // 2
        probes += 1
        if _probe(scope, trace[:mid], signature) is not None:
            high = mid
        else:
            low = mid + 1
    best = trace[:high]

    # Phase 2: ddmin (guided) over the prefix entries.
    chunk = max(1, len(best) // 2)
    while chunk >= 1 and probes < max_probes:
        reduced = False
        start = 0
        while start < len(best) and probes < max_probes:
            candidate = best[:start] + best[start + chunk:]
            probes += 1
            if _probe(scope, candidate, signature, guided=True) is not None:
                best = candidate
                reduced = True
            else:
                start += chunk
        if not reduced:
            if chunk == 1:
                break
            chunk = max(1, chunk // 2)

    # Re-record under guided replay, then pin bit-for-bit under strict.
    final = _probe(scope, best, signature, guided=True)
    if final is None:
        final = _probe(scope, trace, signature)
    if final is None:
        raise ExploreError(
            "counterexample stopped reproducing during minimization "
            f"(scope {scope.name!r})"
        )
    strict_check = _probe(scope, final.trace, signature)
    if strict_check is None:
        raise ExploreError(
            "minimized schedule does not replay bit-for-bit "
            f"(scope {scope.name!r})"
        )
    return Schedule(
        scope=scope,
        trace=tuple(strict_check.trace),
        types=tuple(strict_check.types),
        signature=signature,
        violations=tuple(strict_check.violations),
    )


def save_counterexample(path: str, report: ExploreReport, minimize: bool = True) -> Schedule:
    """Minimize (optionally) and persist a report's counterexample."""
    if report.counterexample is None:
        raise ExploreError("report has no counterexample to save")
    if minimize:
        schedule = minimize_counterexample(report.scope, report.counterexample)
    else:
        schedule = Schedule(
            scope=report.scope,
            trace=report.counterexample.trace,
            types=report.counterexample.types,
            signature=report.counterexample.signature,
            violations=report.counterexample.violations,
        )
    save_schedule(path, schedule)
    return schedule


# ----------------------------------------------------------------------
# scenarios (the proving ground)
# ----------------------------------------------------------------------
def _chain_map(
    servers: Sequence[str], chain_length: int, count: int = 64
) -> Dict[str, Tuple[str, ...]]:
    """key -> chain over the candidate key universe ``k00..``, computed
    statically from the same ring the deployment will build."""
    view = RingView(
        epoch=1, site="dc0", servers=tuple(servers),
        chain_length=chain_length, virtual_nodes=_VNODES,
    )
    return {f"k{i:02d}": tuple(view.chain_for(f"k{i:02d}")) for i in range(count)}


def _pick(
    chains: Dict[str, Tuple[str, ...]],
    predicate: Callable[[str, Tuple[str, ...]], bool],
) -> str:
    for key in sorted(chains):
        if predicate(key, chains[key]):
            return key
    raise ExploreError("no candidate key satisfies the scenario's chain shape")


def _smallest_scope() -> ExploreScope:
    """The CI scope: 2 DCs x 2-node chains x 6 ops, clean tree.

    Exhaustively enumerable under DPOR within the explore-smoke budget;
    the naive comparison run establishes the pruning ratio. A's pause
    phases the workload: the first put's geo-replication races B's
    remote reads exhaustively, then the dependent second put and the
    session-guarantee reads run against the settled prefix — without
    the phase boundary the one-instant product space is ~2 orders of
    magnitude larger and no longer enumerable in CI time.
    """
    chains = _chain_map(["s0", "s1"], 2)
    key_x = _pick(chains, lambda k, c: c[0] == "s0")
    key_y = _pick(chains, lambda k, c: c[0] == "s1")
    return ExploreScope(
        name="smallest",
        sites=("dc0", "dc1"),
        servers_per_site=2,
        chain_length=2,
        ack_k=1,
        ops=(
            ExploreOp("A", "dc0", "put", key_x, 1),
            ExploreOp("A", "dc0", "pause", "", None, 0.01),
            ExploreOp("A", "dc0", "put", key_y, 2),
            ExploreOp("A", "dc0", "get", key_x),
            ExploreOp("B", "dc1", "get", key_y),
            ExploreOp("B", "dc1", "get", key_x),
            ExploreOp("B", "dc1", "get", key_y),
        ),
    )


def _split_brain_scope() -> ExploreScope:
    """PR 3's bug, re-injected. Crash the head of K before the run; a
    dependency wait then parks a put for K at the stand-in head; recover
    the old head mid-wait. On the clean tree the stand-in notices at
    apply time that the view moved on, rejects, and the client retries
    at the recovered head. The mutated tree skips that re-check: the
    deposed stand-in mints a version under the stale epoch and serves it
    downstream only — the recovered head never sees the write (replica
    divergence), and a concurrent client minting at the true head can
    produce the same (key, version) twice (duplicate-mint history).

    chain_length 3 with ack_k 2 puts the stand-in at the *ack* position
    of the new chain, so the stale-epoch write is client-acknowledged —
    dependency acks stay mid-chain (unstable), which keeps the
    dependency wait that opens the race window. The recover action is
    gated on the contested put's delivery (``after_put``): un-gated, the
    canonical path recovers the old head before the put is even issued,
    and the race sits a long chain of deviations away from canonical."""
    servers = ["s0", "s1", "s2", "s3"]
    chains = _chain_map(servers, 3)
    key_k = sorted(chains)[0]
    victim = chains[key_k][0]
    key_y = _pick(chains, lambda k, c: k != key_k and c != chains[key_k])
    return ExploreScope(
        name="split_brain_mint",
        sites=("dc0",),
        servers_per_site=4,
        chain_length=3,
        ack_k=2,
        ops=(
            ExploreOp("A", "dc0", "put", key_y, 10),
            ExploreOp("A", "dc0", "put", key_k, 11),
        ),
        pre_crash=(("dc0", victim),),
        actions=(FaultAction("recover", "dc0", victim, after_put=key_k),),
        # recovery can legitimately strand a dependency's stability (the
        # data survived but no transfer re-stabilises it); keep the
        # proceed-anyway escape hatch *shorter* than the client attempt
        # so those schedules still make progress instead of burning the
        # retry budget on replies that arrive after the client gave up
        overrides=(("dep_wait_timeout", 0.15), ("op_timeout", 1.0)),
        mutations=("split_brain_mint",),
        # membership changes mid-run legitimately strand *stability*;
        # value convergence must still hold at quiescence and is exactly
        # what the stale-epoch write breaks
        check_stability_convergence=False,
    )


def _drop_cascade_scope() -> ExploreScope:
    """chain_length 3: the mid-chain node must forward ChainStable
    upstream; the mutation drops that hop, so the head never learns the
    write is DC-stable — caught by the stability-convergence oracle."""
    return ExploreScope(
        name="drop_stable_cascade",
        sites=("dc0",),
        servers_per_site=3,
        chain_length=3,
        ack_k=1,
        ops=(
            ExploreOp("A", "dc0", "put", "k00", 1),
            ExploreOp("B", "dc0", "get", "k00"),
            ExploreOp("B", "dc0", "get", "k00"),
        ),
        mutations=("drop_stable_cascade",),
    )


def _gc_floor_scope() -> ExploreScope:
    """Seal a key via metadata GC, then write it again: the mutated
    stable floor over-promises by one version, so a dependent write's
    stability wait resolves instantly and readers see the dependent
    write before its dependency."""
    servers = ["s0", "s1", "s2"]
    chains = _chain_map(servers, 2)
    key_x = sorted(chains)[0]
    key_y = _pick(chains, lambda k, c: c != chains[key_x])
    return ExploreScope(
        name="gc_floor_off_by_one",
        sites=("dc0",),
        servers_per_site=3,
        chain_length=2,
        ack_k=1,
        ops=(
            ExploreOp("A", "dc0", "put", key_x, 1),
            ExploreOp("A", "dc0", "pause", delay=0.2),
            ExploreOp("A", "dc0", "put", key_x, 2),
            ExploreOp("A", "dc0", "put", key_y, 3),
            ExploreOp("B", "dc0", "pause", delay=0.2),
            ExploreOp("B", "dc0", "get", key_y),
            ExploreOp("B", "dc0", "get", key_x),
        ),
        overrides=(("metadata_gc", True), ("gc_interval", 0.05)),
        mutations=("gc_floor_off_by_one",),
        # the second write of key_x is deliberately left propagating in
        # the violating schedules; liveness oracles would double-report
        check_stability_convergence=False,
        check_convergence=False,
    )


def _ack_implies_stable_scope() -> ExploreScope:
    """Two keys sharing a head with different tails: the mutated head
    marks a write stable at ack time, so a dependent write on the other
    chain skips its wait and becomes visible first."""
    servers = ["s0", "s1", "s2"]
    chains = _chain_map(servers, 2)
    key_x = sorted(chains)[0]
    head = chains[key_x][0]
    key_y = _pick(
        chains,
        lambda k, c: c[0] == head and c[-1] != chains[key_x][-1],
    )
    return ExploreScope(
        name="ack_implies_stable",
        sites=("dc0",),
        servers_per_site=3,
        chain_length=2,
        ack_k=1,
        ops=(
            ExploreOp("A", "dc0", "put", key_x, 1),
            ExploreOp("A", "dc0", "put", key_y, 2),
            ExploreOp("B", "dc0", "get", key_y),
            ExploreOp("B", "dc0", "get", key_x),
        ),
        mutations=("ack_implies_stable",),
        check_stability_convergence=False,
        check_convergence=False,
    )


def _skip_dep_wait_scope() -> ExploreScope:
    """Two keys on different chains: the mutated head admits a
    dependent write without waiting for its dependency's stability."""
    servers = ["s0", "s1", "s2"]
    chains = _chain_map(servers, 2)
    key_x = sorted(chains)[0]
    key_y = _pick(chains, lambda k, c: c != chains[key_x])
    return ExploreScope(
        name="skip_dep_wait",
        sites=("dc0",),
        servers_per_site=3,
        chain_length=2,
        ack_k=1,
        ops=(
            ExploreOp("A", "dc0", "put", key_x, 1),
            ExploreOp("A", "dc0", "put", key_y, 2),
            ExploreOp("B", "dc0", "get", key_y),
            ExploreOp("B", "dc0", "get", key_x),
        ),
        mutations=("skip_dep_wait",),
        check_stability_convergence=False,
        check_convergence=False,
    )


def _batch_reorder_scope() -> ExploreScope:
    """Protocol batching on, chain length 1: three causally-chained
    writes coalesce into one RemoteUpdateBatch; the mutation reverses
    the batch, and same-key gating lets the newest write inject before
    the write it transitively depends on is visible remotely."""
    return ExploreScope(
        name="batch_reorder",
        sites=("dc0", "dc1"),
        servers_per_site=1,
        chain_length=1,
        ack_k=1,
        ops=(
            ExploreOp("A", "dc0", "put", "k00", 1),
            ExploreOp("A", "dc0", "put", "k01", 2),
            ExploreOp("A", "dc0", "put", "k01", 3),
            ExploreOp("B", "dc1", "pause", delay=0.002),
            ExploreOp("B", "dc1", "get", "k01"),
            ExploreOp("B", "dc1", "get", "k00"),
        ),
        overrides=(("protocol_batching", True), ("batch_flush_interval", 0.002)),
        mutations=("batch_reorder",),
        check_stability_convergence=False,
        check_convergence=False,
    )


def _stale_vector_scope() -> ExploreScope:
    """Clock plane: the mutated injection gate trusts the origin's ship
    vector (``dep_ts <= dc_ship[origin]``) instead of the local visible
    horizon. Two causally-chained writes on disjoint dc1 chains arrive
    in one ``ClockShip``, whose ``lst`` already covers both stamps — so
    the mutated gate admits the dependent write while its dependency's
    injection is still queued for a *different* chain head. The reader's
    pause is two vector intervals, landing on the very tick instant the
    ship fires (interval accumulation is exact float doubling), so both
    reads join the same drain phase as the racing injections: the
    explorer can apply the dependent write, serve both reads, and only
    then deliver the dependency — a causal-cut violation. The clean
    gate caps ``visible`` at ``just_below(oldest pending)``, holding the
    dependent write until its dependency tail-applies, whatever the
    schedule."""
    interval = 0.002
    chains = _chain_map(["s0", "s1"], 1)
    key_x = sorted(chains)[0]
    x_chain = set(chains[key_x])
    key_y = _pick(chains, lambda k, c: not x_chain.intersection(c))
    return ExploreScope(
        name="stale_stability_vector",
        sites=("dc0", "dc1"),
        servers_per_site=2,
        chain_length=1,
        ack_k=1,
        ops=(
            ExploreOp("A", "dc0", "put", key_x, 1),
            ExploreOp("A", "dc0", "put", key_y, 2),
            ExploreOp("B", "dc1", "pause", "", None, 2 * interval),
            ExploreOp("B", "dc1", "get", key_y),
            ExploreOp("B", "dc1", "get", key_x),
        ),
        overrides=(("stability", "clock"), ("stability_interval", interval)),
        mutations=("stale_stability_vector",),
        check_stability_convergence=False,
        check_convergence=False,
    )


#: scenario name -> factory. The mutation scenarios carry their mutation
#: in ``scope.mutations``; ``scope.without_mutations()`` is the clean
#: twin the unmutated tree must pass.
SCENARIOS: Dict[str, Callable[[], ExploreScope]] = {
    "smallest": _smallest_scope,
    "split_brain_mint": _split_brain_scope,
    "drop_stable_cascade": _drop_cascade_scope,
    "gc_floor_off_by_one": _gc_floor_scope,
    "ack_implies_stable": _ack_implies_stable_scope,
    "skip_dep_wait": _skip_dep_wait_scope,
    "batch_reorder": _batch_reorder_scope,
    "stale_stability_vector": _stale_vector_scope,
}

# every seeded mutation must have a proving-ground scenario
assert set(PROTOCOL_MUTATIONS) <= set(SCENARIOS)


def scenario_names() -> List[str]:
    return sorted(SCENARIOS)


def scenario(name: str) -> ExploreScope:
    factory = SCENARIOS.get(name)
    if factory is None:
        raise ExploreError(
            f"unknown scenario {name!r}; choose from {scenario_names()}"
        )
    return factory()
