"""Classic chain replication baseline (FAWN-KV style).

The paper's framing makes this baseline a *degenerate configuration* of
ChainReaction, and the reproduction keeps that framing executable:

- writes acknowledge only at the **tail** (``ack_k = R``), so every put
  pays the full chain before returning,
- reads are served only by the **tail** (``allow_prefix_reads=False``),
  giving per-key linearizability — and making the tail the read
  bottleneck ChainReaction's prefix reads remove.

With tail-only reads every observed version is by definition DC-stable,
so client dependency tables stay empty and no put ever waits on a
dependency: the protocol machinery reduces exactly to chain replication.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.config import ChainReactionConfig
from repro.core.datastore import ChainReactionStore
from repro.net.network import Network
from repro.sim.kernel import Simulator

__all__ = ["ChainReplicationStore", "chain_replication_config"]


def chain_replication_config(base: Optional[ChainReactionConfig] = None) -> ChainReactionConfig:
    """Rewrite a config into classic chain-replication mode."""
    base = base or ChainReactionConfig()
    return base.with_updates(
        ack_k=base.chain_length,
        allow_prefix_reads=False,
    )


class ChainReplicationStore(ChainReactionStore):
    """Chain replication: head writes, tail-acked, tail-only reads."""

    name = "chain"

    def __init__(
        self,
        config: Optional[ChainReactionConfig] = None,
        sim: Optional[Simulator] = None,
        network: Optional[Network] = None,
        local_sites: Optional[Sequence[str]] = None,
    ) -> None:
        super().__init__(
            chain_replication_config(config),
            sim=sim,
            network=network,
            local_sites=local_sites,
        )
