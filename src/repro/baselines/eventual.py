"""Eventually-consistent baseline (Dynamo-flavoured multi-master).

The contrast point for ChainReaction's throughput numbers: any replica
accepts a write and acknowledges immediately, replication is fully
asynchronous (including cross-DC), reads hit one random replica, and a
push-pull anti-entropy protocol repairs whatever direct replication
missed. No ordering is enforced anywhere, so it is fast — and the E10
consistency table shows the causal and session anomalies it serves.

Convergence still holds (it is *eventually* consistent) because every
replica applies writes through the convergent versioned store.
"""

from __future__ import annotations

import dataclasses
import random
from typing import Any, ClassVar, Dict, Iterator, Optional, Tuple

from repro.api import GetResult, PutResult
from repro.baselines.common import BaselineConfig, RingDeployment
from repro.cluster.client_base import RetryingSession
from repro.cluster.membership import RingView
from repro.cluster.server_base import RingServer
from repro.errors import TransientError
from repro.net.message import Message
from repro.net.network import Address, Network
from repro.sim.kernel import Simulator
from repro.sim.process import Future, spawn
from repro.sim.rng import derive_seed
from repro.storage.store import TOMBSTONE
from repro.storage.version import VersionVector

__all__ = ["EventualStore", "EventualServer", "EventualSession"]


@dataclasses.dataclass(frozen=True)
class Replicate(Message):
    """Asynchronous replication of one write to a peer replica.

    ``stamp`` is None when ``version`` is the write's original vector
    (the receiver derives the stamp); read repair and other merged-
    record paths set it explicitly.
    """

    type_name: ClassVar[str] = "ev-replicate"
    key: str = ""
    value: Any = None
    version: VersionVector = dataclasses.field(default_factory=VersionVector)
    stamp: Any = None


@dataclasses.dataclass(frozen=True)
class AeDigest(Message):
    """Anti-entropy round: sender's key→version digest."""

    type_name: ClassVar[str] = "ev-ae-digest"
    digest: Dict[str, VersionVector] = dataclasses.field(default_factory=dict)
    wants_reply: bool = True


@dataclasses.dataclass(frozen=True)
class AeRecords(Message):
    """Anti-entropy round: records the peer was missing."""

    type_name: ClassVar[str] = "ev-ae-records"
    records: Tuple = ()


class EventualServer(RingServer):
    """A replica that accepts any read or write and gossips repairs."""

    SERVICED_TYPES = frozenset(
        {"rpc-request", "ev-replicate", "ev-ae-digest", "ev-ae-records"}
    )

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        site: str,
        name: str,
        initial_view: RingView,
        config: BaselineConfig,
        deployment: "EventualStore",
    ) -> None:
        super().__init__(
            sim, network, site, name, initial_view, service_time=config.service_time
        )
        self.config = config
        self.deployment = deployment
        # derive_seed (not builtin hash()) keeps the anti-entropy stream
        # identical across PYTHONHASHSEED values.
        self._ae_rng = random.Random(
            derive_seed(config.seed, f"anti-entropy:{site}:{name}")
        )
        self.puts_served = 0
        self.gets_served = 0
        self.anti_entropy_rounds = 0
        self.set_timer(config.anti_entropy_interval, self._anti_entropy_tick)

    # ------------------------------------------------------------------
    # client operations
    # ------------------------------------------------------------------
    def rpc_put(self, payload: Tuple[str, Any, bool], src: Address) -> Dict[str, Any]:
        key, value, is_delete = payload
        stored_value = TOMBSTONE if is_delete else value
        version = self.store.version_of(key).increment(str(self.address))
        self.store.apply(key, stored_value, version, self.sim.now)
        self.puts_served += 1
        self._replicate(key, stored_value, version)
        return {"version": version}

    def rpc_get(self, key: str, src: Address) -> Dict[str, Any]:
        self.gets_served += 1
        record = self.store.get_record(key)
        if record is None:
            return {"value": None, "version": VersionVector()}
        return {
            "value": None if record.is_deleted else record.value,
            "version": record.version,
        }

    def _replicate(self, key: str, value: Any, version: VersionVector) -> None:
        """Fire-and-forget fan-out to every other replica, in every DC."""
        msg = Replicate(key=key, value=value, version=version)
        for site, view in self.deployment.all_views().items():
            for server in view.chain_for(key):
                if site == self.site and server == self.name:
                    continue
                self.send(view.address_of(server), msg)

    def on_ev_replicate(self, msg: Replicate, src: Address) -> None:
        self.store.apply(msg.key, msg.value, msg.version, self.sim.now, msg.stamp)

    # ------------------------------------------------------------------
    # anti-entropy
    # ------------------------------------------------------------------
    def _anti_entropy_tick(self) -> None:
        peer = self._pick_peer()
        if peer is not None:
            self.anti_entropy_rounds += 1
            self.send(peer, AeDigest(digest=self.store.digest(), wants_reply=True))
        self.set_timer(self.config.anti_entropy_interval, self._anti_entropy_tick)

    def _pick_peer(self) -> Address:
        """Mostly a local peer; occasionally a remote one (geo repair)."""
        views = self.deployment.all_views()
        local = [s for s in views[self.site].servers if s != self.name]
        remote_sites = [s for s in views if s != self.site]
        if remote_sites and self._ae_rng.random() < 0.2:
            site = self._ae_rng.choice(remote_sites)
            return views[site].address_of(self._ae_rng.choice(list(views[site].servers)))
        if not local:
            return None
        return views[self.site].address_of(self._ae_rng.choice(local))

    def on_ev_ae_digest(self, msg: AeDigest, src: Address) -> None:
        missing = self.store.records_newer_than(msg.digest)
        if missing:
            self.send(
                src,
                AeRecords(
                    records=tuple(
                        (r.key, r.value, r.version, r.stamp) for r in missing
                    )
                ),
            )
        if msg.wants_reply:
            self.send(src, AeDigest(digest=self.store.digest(), wants_reply=False))

    def on_ev_ae_records(self, msg: AeRecords, src: Address) -> None:
        for key, value, version, stamp in msg.records:
            self.store.apply(key, value, version, self.sim.now, stamp)


class EventualSession(RetryingSession):
    """Client of the eventual store: one random replica per operation."""

    def _pick_replica(self, key: str) -> Address:
        chain = self.view.chain_for(key)
        return self.view.address_of(self._rng.choice(chain))

    def get(self, key: str) -> Future:
        self._check_open()
        return spawn(self.sim, self._op_gen("get", key, None, False), name=f"get:{key}")

    def put(self, key: str, value: Any) -> Future:
        self._check_open()
        return spawn(self.sim, self._op_gen("put", key, value, False), name=f"put:{key}")

    def delete(self, key: str) -> Future:
        self._check_open()
        return spawn(self.sim, self._op_gen("put", key, None, True), name=f"del:{key}")

    def _op_gen(self, op: str, key: str, value: Any, is_delete: bool) -> Iterator[Any]:
        start = self.sim.now
        for attempt in self._op_attempts(start):
            target = self._pick_replica(key)
            try:
                if op == "get":
                    reply = yield self.call(target, "get", key, timeout=self.config.op_timeout)
                    return GetResult(
                        key=key,
                        value=reply["value"],
                        version=reply["version"],
                        stable=True,
                        served_by=target.node,
                    )
                reply = yield self.call(
                    target, "put", (key, value, is_delete), timeout=self.config.op_timeout
                )
                return PutResult(key=key, version=reply["version"], stable=True)
            except TransientError as exc:
                yield from self._backoff_and_refresh(attempt, exc)
        raise self._give_up(op, key)


class EventualStore(RingDeployment):
    """Deployment facade for the eventually-consistent baseline."""

    name = "eventual"

    def __init__(
        self,
        config: Optional[BaselineConfig] = None,
        sim: Optional[Simulator] = None,
        network: Optional[Network] = None,
    ) -> None:
        super().__init__(
            config or BaselineConfig(),
            server_factory=EventualServer,
            session_factory=EventualSession,
            sim=sim,
            network=network,
        )
