"""COPS-like baseline: causal+ via explicit per-write dependency checking.

COPS (Lloyd et al., SOSP'11) is the system ChainReaction positions
itself against. Keys are partitioned — exactly one replica per key per
datacenter (the ring head) — and the client library tracks a context of
versions it has observed. A put carries that context as its dependency
list; the local partition owner commits immediately (local operations
are always fast), and replicates the write to the key's owner in every
other DC, where it is applied only after each listed dependency is
already present — ``dep_check`` in COPS terms.

Contrast with ChainReaction: causality here is enforced *per replicated
write at the destination*, while ChainReaction enforces it *once at the
origin* via DC-stability and then lets reads fan out over R replicas.
"""

from __future__ import annotations

import dataclasses
from typing import Any, ClassVar, Dict, Iterator, List, Optional, Tuple

from repro.api import GetResult, PutResult
from repro.baselines.common import BaselineConfig, RingDeployment
from repro.cluster.client_base import RetryingSession
from repro.cluster.membership import RingView
from repro.cluster.server_base import RingServer
from repro.errors import NotResponsibleError, TransientError
from repro.net.message import Message
from repro.net.network import Address, Network
from repro.sim.kernel import Simulator
from repro.sim.process import Future, all_of, spawn
from repro.storage.store import TOMBSTONE
from repro.storage.version import VersionVector

__all__ = ["CopsStore", "CopsServer", "CopsSession"]

#: context entries carried per put — wire size for the metadata experiment
def context_size_bytes(context: Dict[str, VersionVector]) -> int:
    return 4 + sum(4 + len(k) + vv.size_bytes() for k, vv in context.items())


@dataclasses.dataclass(frozen=True)
class RemoteWrite(Message):
    """Cross-DC replication of one write with its dependency list."""

    type_name: ClassVar[str] = "cops-remote-write"
    key: str = ""
    value: Any = None
    version: VersionVector = dataclasses.field(default_factory=VersionVector)
    deps: Dict[str, VersionVector] = dataclasses.field(default_factory=dict)
    origin_site: str = ""
    origin_put_at: float = 0.0


class CopsServer(RingServer):
    """Partition owner: one authoritative copy per key per datacenter."""

    SERVICED_TYPES = frozenset({"rpc-request", "cops-remote-write"})

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        site: str,
        name: str,
        initial_view: RingView,
        config: BaselineConfig,
        deployment: "CopsStore",
    ) -> None:
        super().__init__(
            sim, network, site, name, initial_view, service_time=config.service_time
        )
        self.config = config
        self.deployment = deployment
        self._waiters: Dict[str, List[Tuple[VersionVector, Future]]] = {}
        self.puts_served = 0
        self.gets_served = 0
        self.remote_applies = 0
        self.dep_checks = 0
        self.visibility_samples: List[float] = []

    def _owner_of(self, key: str, view: RingView) -> str:
        return view.chain_for(key)[0]

    def _check_owner(self, key: str) -> None:
        if self._owner_of(key, self.view) != self.name:
            raise NotResponsibleError(f"{self.name} does not own {key!r}")

    # ------------------------------------------------------------------
    # client operations (always local, always fast)
    # ------------------------------------------------------------------
    def rpc_put(
        self, payload: Tuple[str, Any, bool, Dict[str, VersionVector]], src: Address
    ) -> Dict[str, Any]:
        key, value, is_delete, deps = payload
        self._check_owner(key)
        stored_value = TOMBSTONE if is_delete else value
        previous = self.store.version_of(key)
        version = previous.increment(self.site)
        # The same-key predecessor is an implicit dependency even when
        # the writing client never read the key: this write overwrites
        # it, so remote owners must not make it visible before the
        # predecessor (and, transitively, *its* dependencies) arrived.
        deps = dict(deps)
        if not previous.is_zero():
            existing = deps.get(key)
            deps[key] = previous if existing is None else existing.merge(previous)
        self._apply(key, stored_value, version)
        self.puts_served += 1
        msg = RemoteWrite(
            key=key,
            value=stored_value,
            version=version,
            deps=deps,
            origin_site=self.site,
            origin_put_at=self.sim.now,
        )
        for site, view in self.deployment.all_views().items():
            if site != self.site:
                self.send(view.address_of(self._owner_of(key, view)), msg)
        return {"version": version}

    def rpc_get(self, key: str, src: Address) -> Dict[str, Any]:
        self._check_owner(key)
        self.gets_served += 1
        record = self.store.get_record(key)
        if record is None:
            return {"value": None, "version": VersionVector()}
        return {
            "value": None if record.is_deleted else record.value,
            "version": record.version,
        }

    # ------------------------------------------------------------------
    # dependency checks and remote application
    # ------------------------------------------------------------------
    def rpc_dep_check(
        self, payload: Tuple[str, Dict[str, int]], src: Address
    ) -> Future:
        """Resolve once this owner holds a version dominating the request."""
        key, entries = payload
        self.dep_checks += 1
        wanted = VersionVector(entries)
        fut = Future(self.sim)
        if self.store.version_of(key).dominates(wanted):
            fut.set_result(True)
        else:
            self._waiters.setdefault(key, []).append((wanted, fut))
        return fut

    def _apply(self, key: str, value: Any, version: VersionVector) -> None:
        self.store.apply(key, value, version, self.sim.now)
        waiters = self._waiters.get(key)
        if not waiters:
            return
        current = self.store.version_of(key)
        remaining = []
        for wanted, fut in waiters:
            if current.dominates(wanted):
                fut.try_set_result(True)
            else:
                remaining.append((wanted, fut))
        if remaining:
            self._waiters[key] = remaining
        else:
            del self._waiters[key]

    def on_cops_remote_write(self, msg: RemoteWrite, src: Address) -> None:
        spawn(self.sim, self._apply_remote(msg), name=f"cops-remote:{msg.key}")

    def _apply_remote(self, msg: RemoteWrite) -> Iterator[Any]:
        if msg.deps:
            checks = []
            for dep_key, wanted in msg.deps.items():
                owner = self.view.address_of(self._owner_of(dep_key, self.view))
                if owner == self.address:
                    checks.append(self.rpc_dep_check((dep_key, wanted.entries()), owner))
                else:
                    checks.append(
                        self.call(
                            owner,
                            "dep_check",
                            (dep_key, wanted.entries()),
                            timeout=self.config.op_timeout * 5,
                        )
                    )
            yield all_of(self.sim, checks)
        self._apply(msg.key, msg.value, msg.version)
        self.remote_applies += 1
        self.visibility_samples.append(self.sim.now - msg.origin_put_at)


class CopsSession(RetryingSession):
    """COPS client library: context tracking with collapse-on-put."""

    def __init__(self, *args: Any, **kwargs: Any) -> None:
        super().__init__(*args, **kwargs)
        self._context: Dict[str, VersionVector] = {}

    def metadata_bytes(self) -> int:
        return context_size_bytes(self._context)

    def _owner(self, key: str) -> Address:
        return self.view.address_of(self.view.chain_for(key)[0])

    def get(self, key: str) -> Future:
        self._check_open()
        return spawn(self.sim, self._get_gen(key), name=f"get:{key}")

    def put(self, key: str, value: Any) -> Future:
        self._check_open()
        return spawn(self.sim, self._put_gen(key, value, False), name=f"put:{key}")

    def delete(self, key: str) -> Future:
        self._check_open()
        return spawn(self.sim, self._put_gen(key, None, True), name=f"del:{key}")

    def _get_gen(self, key: str) -> Iterator[Any]:
        start = self.sim.now
        for attempt in self._op_attempts(start):
            try:
                reply = yield self.call(
                    self._owner(key), "get", key, timeout=self.config.op_timeout
                )
            except TransientError as exc:
                yield from self._backoff_and_refresh(attempt, exc)
                continue
            version = reply["version"]
            if not version.is_zero():
                self._context[key] = self._context.get(key, VersionVector()).merge(version)
            return GetResult(
                key=key, value=reply["value"], version=version, stable=True
            )
        raise self._give_up("get", key)

    def _put_gen(self, key: str, value: Any, is_delete: bool) -> Iterator[Any]:
        # Include the same-key context version: remote owners must apply
        # this write only after the observed predecessor (and hence its
        # transitive dependencies) has arrived there.
        deps = dict(self._context)
        start = self.sim.now
        for attempt in self._op_attempts(start):
            try:
                reply = yield self.call(
                    self._owner(key),
                    "put",
                    (key, value, is_delete, deps),
                    timeout=self.config.op_timeout,
                )
            except TransientError as exc:
                yield from self._backoff_and_refresh(attempt, exc)
                continue
            version = reply["version"]
            # put_after semantics: the new write subsumes the context.
            self._context = {key: version}
            return PutResult(key=key, version=version, stable=True)
        raise self._give_up("delete" if is_delete else "put", key)


class CopsStore(RingDeployment):
    """Deployment facade for the COPS-like baseline.

    ``chain_length`` is forced to 1: COPS keeps exactly one copy per key
    per datacenter; fault tolerance comes from having multiple DCs.
    """

    name = "cops"

    def __init__(
        self,
        config: Optional[BaselineConfig] = None,
        sim: Optional[Simulator] = None,
        network: Optional[Network] = None,
    ) -> None:
        config = (config or BaselineConfig()).with_updates(
            chain_length=1, write_quorum=1, read_quorum=1
        )
        super().__init__(
            config,
            server_factory=CopsServer,
            session_factory=CopsSession,
            sim=sim,
            network=network,
        )

    def protocol_stats(self) -> Dict[str, Any]:
        stats = super().protocol_stats()
        servers = self.servers()
        stats["visibility_samples"] = [
            s for server in servers for s in server.visibility_samples
        ]
        stats["dep_checks"] = sum(server.dep_checks for server in servers)
        return stats
