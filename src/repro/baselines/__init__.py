"""Baseline protocols the paper compares against."""

from repro.baselines.chain import ChainReplicationStore, chain_replication_config
from repro.baselines.common import BaselineConfig, RingDeployment
from repro.baselines.cops import CopsStore
from repro.baselines.eventual import EventualStore
from repro.baselines.quorum import QuorumStore
from repro.baselines.registry import PROTOCOLS, build_store

__all__ = [
    "BaselineConfig",
    "RingDeployment",
    "ChainReplicationStore",
    "chain_replication_config",
    "EventualStore",
    "QuorumStore",
    "CopsStore",
    "PROTOCOLS",
    "build_store",
]
