"""Shared scaffolding for the baseline deployments.

Every baseline places keys with the same consistent-hash ring, runs one
cluster manager per site, and hands out sequential client sessions —
exactly like the ChainReaction deployment, so that benchmark comparisons
measure *protocol* differences, not harness differences.

:class:`BaselineConfig` carries the knobs the baselines share;
:class:`RingDeployment` assembles sim/network/managers/servers and
implements the :class:`~repro.api.Datastore` surface given two
factories (server and session).
"""

from __future__ import annotations

import dataclasses
import random
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.api import ClientSession, Datastore
from repro.cluster.membership import ClusterManager, RingView
from repro.cluster.server_base import RingServer
from repro.errors import ConfigError
from repro.net.latency import lan_latency, wan_latency
from repro.net.network import Network
from repro.sim.backend import new_simulator
from repro.sim.kernel import Simulator
from repro.sim.rng import RngRegistry
from repro.storage.version import VersionVector

__all__ = ["BaselineConfig", "RingDeployment"]


@dataclasses.dataclass(frozen=True)
class BaselineConfig:
    """Deployment knobs shared by every baseline protocol."""

    sites: Tuple[str, ...] = ("dc0",)
    servers_per_site: int = 6
    chain_length: int = 3
    op_timeout: float = 0.25
    client_retry_backoff: float = 0.02
    max_retries: int = 25
    backoff_multiplier: float = 2.0
    max_backoff: float = 0.5
    backoff_jitter: float = 0.1
    op_deadline: float = 0.0
    lan_median: float = 0.0003
    wan_median: float = 0.040
    heartbeat_interval: float = 0.05
    failure_timeout: float = 0.25
    service_time: float = 0.0001
    virtual_nodes: int = 64
    seed: int = 42
    # quorum-specific (ignored by the others)
    write_quorum: int = 2
    read_quorum: int = 2
    # eventual-specific
    anti_entropy_interval: float = 0.5

    def __post_init__(self) -> None:
        if not self.sites or len(set(self.sites)) != len(self.sites):
            raise ConfigError(f"invalid sites: {self.sites}")
        if self.chain_length < 1 or self.chain_length > self.servers_per_site:
            raise ConfigError(
                f"chain_length {self.chain_length} invalid for "
                f"{self.servers_per_site} servers"
            )
        if not 1 <= self.write_quorum <= self.chain_length:
            raise ConfigError(f"write_quorum {self.write_quorum} out of range")
        if not 1 <= self.read_quorum <= self.chain_length:
            raise ConfigError(f"read_quorum {self.read_quorum} out of range")

    @property
    def is_geo(self) -> bool:
        return len(self.sites) > 1

    def with_updates(self, **changes: object) -> "BaselineConfig":
        return dataclasses.replace(self, **changes)  # type: ignore[arg-type]


ServerFactory = Callable[..., RingServer]
SessionFactory = Callable[..., ClientSession]


class RingDeployment(Datastore):
    """Generic sim + network + managers + ring servers deployment."""

    name = "ring-deployment"

    def __init__(
        self,
        config: BaselineConfig,
        server_factory: ServerFactory,
        session_factory: SessionFactory,
        sim: Optional[Simulator] = None,
        network: Optional[Network] = None,
    ) -> None:
        self.config = config
        # Baselines have no kernel knob of their own; they run on
        # whatever backend is active (see repro.sim.backend).
        self.sim = sim or new_simulator()
        self.rng = RngRegistry(config.seed)
        self.network = network or Network(
            self.sim,
            rng=self.rng,
            lan=lan_latency(config.lan_median),
            wan=wan_latency(config.wan_median),
        )
        self.managers: Dict[str, ClusterManager] = {}
        self.nodes: Dict[str, List[RingServer]] = {}
        self._session_factory = session_factory
        self._sessions: List[ClientSession] = []
        self._session_seq = 0

        for site in config.sites:
            server_names = [f"s{i}" for i in range(config.servers_per_site)]
            manager = ClusterManager(
                self.sim,
                self.network,
                site=site,
                servers=server_names,
                chain_length=config.chain_length,
                heartbeat_interval=config.heartbeat_interval,
                failure_timeout=config.failure_timeout,
                virtual_nodes=config.virtual_nodes,
            )
            self.managers[site] = manager
            self.nodes[site] = [
                server_factory(
                    sim=self.sim,
                    network=self.network,
                    site=site,
                    name=name,
                    initial_view=manager.view,
                    config=config,
                    deployment=self,
                )
                for name in server_names
            ]

    # ------------------------------------------------------------------
    # Datastore surface
    # ------------------------------------------------------------------
    @property
    def sites(self) -> List[str]:
        return list(self.config.sites)

    def session(
        self, site: Optional[str] = None, session_id: Optional[str] = None
    ) -> ClientSession:
        site = site or self.config.sites[0]
        if site not in self.managers:
            raise ConfigError(f"unknown site {site!r}; have {self.sites}")
        self._session_seq += 1
        name = session_id or f"client{self._session_seq}"
        session = self._session_factory(
            sim=self.sim,
            network=self.network,
            site=site,
            name=name,
            initial_view=self.managers[site].view,
            config=self.config,
            rng=self.rng.stream(f"client:{site}:{name}"),
        )
        self._sessions.append(session)
        return session

    def servers(self, site: Optional[str] = None) -> List[RingServer]:
        if site is not None:
            return list(self.nodes[site])
        return [node for nodes in self.nodes.values() for node in nodes]

    def converged(self, key: str) -> bool:
        observed = set()
        for site, manager in self.managers.items():
            for server_name in manager.view.chain_for(key):
                node = self._node(site, server_name)
                record = node.store.get_record(key)
                if record is None:
                    observed.add((None, VersionVector()))
                else:
                    observed.add((record.value, record.version))
        return len(observed) == 1

    # ------------------------------------------------------------------
    # helpers shared with the core facade
    # ------------------------------------------------------------------
    def _node(self, site: str, name: str) -> RingServer:
        for node in self.nodes[site]:
            if node.name == name:
                return node
        raise ConfigError(f"no node {name!r} in {site!r}")

    def view_of(self, site: str) -> RingView:
        return self.managers[site].view

    def all_views(self) -> Dict[str, RingView]:
        return {site: mgr.view for site, mgr in self.managers.items()}

    def preload(self, data: Dict[str, Any]) -> None:
        """Install identical, converged records on every replica directly."""
        version = VersionVector({"preload": 1})
        for key, value in data.items():
            for site, manager in self.managers.items():
                for server_name in manager.view.chain_for(key):
                    node = self._node(site, server_name)
                    node.store.apply(key, value, version, self.sim.now)

    def run(self, until: Optional[float] = None) -> float:
        return self.sim.run(until=until)

    def protocol_stats(self) -> Dict[str, Any]:
        return {
            "messages_sent": self.network.stats.messages_sent,
            "bytes_sent": self.network.stats.bytes_sent,
            "cross_site_bytes": self.network.stats.cross_site_bytes,
        }

    def client_rng(self, session_name: str) -> random.Random:
        return self.rng.stream(f"client:{session_name}")
