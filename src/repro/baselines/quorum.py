"""Quorum-replicated baseline (Dynamo/Cassandra-style R/W quorums).

A client sends each operation to a random replica of the key, which
acts as coordinator: writes are applied locally and acknowledged after
``write_quorum`` replicas (including the coordinator) confirm; reads
gather ``read_quorum`` replica responses, return the newest version,
and asynchronously read-repair the stale replicas that answered.

With ``read_quorum + write_quorum > chain_length`` reads intersect
writes and sessions see their own writes; the E10 configuration uses
non-overlapping quorums to demonstrate the session anomalies the paper
contrasts against. Cross-DC replication is asynchronous (LOCAL_QUORUM
semantics), so causal anomalies across sites remain either way.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.api import GetResult, PutResult
from repro.baselines.common import BaselineConfig, RingDeployment
from repro.baselines.eventual import Replicate
from repro.cluster.client_base import RetryingSession
from repro.cluster.membership import RingView
from repro.cluster.server_base import RingServer
from repro.errors import TransientError
from repro.net.network import Address, Network
from repro.sim.kernel import Simulator
from repro.sim.process import Future, n_of, spawn
from repro.storage.store import TOMBSTONE
from repro.storage.version import VersionVector

__all__ = ["QuorumStore", "QuorumServer", "QuorumSession"]


class QuorumServer(RingServer):
    """Replica + per-request coordinator for quorum reads and writes."""

    SERVICED_TYPES = frozenset({"rpc-request", "ev-replicate"})

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        site: str,
        name: str,
        initial_view: RingView,
        config: BaselineConfig,
        deployment: "QuorumStore",
    ) -> None:
        super().__init__(
            sim, network, site, name, initial_view, service_time=config.service_time
        )
        self.config = config
        self.deployment = deployment
        self.puts_served = 0
        self.gets_served = 0
        self.read_repairs = 0

    # ------------------------------------------------------------------
    # coordinator roles
    # ------------------------------------------------------------------
    def rpc_put(self, payload: Tuple[str, Any, bool], src: Address) -> Future:
        return spawn(self.sim, self._coordinate_put(payload), name="q-put")

    def _coordinate_put(self, payload: Tuple[str, Any, bool]) -> Iterator[Any]:
        key, value, is_delete = payload
        stored_value = TOMBSTONE if is_delete else value
        version = self.store.version_of(key).increment(str(self.address))
        self.store.apply(key, stored_value, version, self.sim.now)
        self.puts_served += 1
        peers = self._local_peers(key)
        futures = [
            self.call(
                peer, "replica_write", (key, stored_value, version), timeout=self.config.op_timeout
            )
            for peer in peers
        ]
        needed = self.config.write_quorum - 1
        if needed > 0:
            yield n_of(self.sim, futures, min(needed, len(futures)))
        self._ship_remote(key, stored_value, version)
        return {"version": version}

    def rpc_get(self, key: str, src: Address) -> Future:
        return spawn(self.sim, self._coordinate_get(key), name="q-get")

    def _coordinate_get(self, key: str) -> Iterator[Any]:
        self.gets_served += 1
        peers = self._local_peers(key)
        futures = [
            self.call(peer, "replica_read", key, timeout=self.config.op_timeout)
            for peer in peers
        ]
        needed = self.config.read_quorum - 1
        replies: List[Tuple[Address, Dict[str, Any]]] = []
        if needed > 0:
            results = yield n_of(self.sim, futures, min(needed, len(futures)))
            replies = list(zip(peers, results))

        local = self.store.get_record(key)
        best_value = local.value if local is not None else None
        best_version = local.version if local is not None else VersionVector()
        best_stamp = local.stamp if local is not None else None
        for _peer, reply in replies:
            version = reply["version"]
            if version.total_order_key() > best_version.total_order_key():
                best_version = version
                best_value = reply["value"]
                best_stamp = reply["stamp"]

        self._read_repair(key, best_value, best_version, best_stamp, replies, local)
        visible = None if best_value is TOMBSTONE else best_value
        return {"value": visible, "version": best_version}

    def _read_repair(
        self,
        key: str,
        best_value: Any,
        best_version: VersionVector,
        best_stamp: Any,
        replies: List[Tuple[Address, Dict[str, Any]]],
        local_record: Any,
    ) -> None:
        """Asynchronously push the winning record to stale quorum members."""
        if best_version.is_zero():
            return
        repair = Replicate(key=key, value=best_value, version=best_version, stamp=best_stamp)
        if local_record is None or local_record.version != best_version:
            self.store.apply(key, best_value, best_version, self.sim.now, best_stamp)
        for peer, reply in replies:
            if reply["version"] != best_version:
                self.read_repairs += 1
                self.send(peer, repair)

    # ------------------------------------------------------------------
    # replica roles
    # ------------------------------------------------------------------
    def rpc_replica_write(
        self, payload: Tuple[str, Any, VersionVector], src: Address
    ) -> bool:
        key, value, version = payload
        self.store.apply(key, value, version, self.sim.now)
        return True

    def rpc_replica_read(self, key: str, src: Address) -> Dict[str, Any]:
        record = self.store.get_record(key)
        if record is None:
            return {"value": None, "version": VersionVector(), "stamp": None}
        return {"value": record.value, "version": record.version, "stamp": record.stamp}

    def on_ev_replicate(self, msg: Replicate, src: Address) -> None:
        self.store.apply(msg.key, msg.value, msg.version, self.sim.now, msg.stamp)

    # ------------------------------------------------------------------
    # placement helpers
    # ------------------------------------------------------------------
    def _local_peers(self, key: str) -> List[Address]:
        return [
            self.view.address_of(server)
            for server in self.view.chain_for(key)
            if server != self.name
        ]

    def _ship_remote(self, key: str, value: Any, version: VersionVector) -> None:
        """Asynchronous cross-DC replication (LOCAL_QUORUM semantics)."""
        msg = Replicate(key=key, value=value, version=version)
        for site, view in self.deployment.all_views().items():
            if site == self.site:
                continue
            for server in view.chain_for(key):
                self.send(view.address_of(server), msg)


class QuorumSession(RetryingSession):
    """Client of the quorum store: random coordinator per operation."""

    def _pick_coordinator(self, key: str) -> Address:
        return self.view.address_of(self._rng.choice(self.view.chain_for(key)))

    def get(self, key: str) -> Future:
        self._check_open()
        return spawn(self.sim, self._op_gen("get", key, None, False), name=f"get:{key}")

    def put(self, key: str, value: Any) -> Future:
        self._check_open()
        return spawn(self.sim, self._op_gen("put", key, value, False), name=f"put:{key}")

    def delete(self, key: str) -> Future:
        self._check_open()
        return spawn(self.sim, self._op_gen("put", key, None, True), name=f"del:{key}")

    def _op_gen(self, op: str, key: str, value: Any, is_delete: bool) -> Iterator[Any]:
        start = self.sim.now
        for attempt in self._op_attempts(start):
            target = self._pick_coordinator(key)
            try:
                if op == "get":
                    reply = yield self.call(target, "get", key, timeout=self.config.op_timeout)
                    return GetResult(
                        key=key,
                        value=reply["value"],
                        version=reply["version"],
                        stable=True,
                        served_by=target.node,
                    )
                reply = yield self.call(
                    target, "put", (key, value, is_delete), timeout=self.config.op_timeout
                )
                return PutResult(key=key, version=reply["version"], stable=True)
            except TransientError as exc:
                yield from self._backoff_and_refresh(attempt, exc)
        raise self._give_up(op, key)


class QuorumStore(RingDeployment):
    """Deployment facade for the quorum baseline."""

    name = "quorum"

    def __init__(
        self,
        config: Optional[BaselineConfig] = None,
        sim: Optional[Simulator] = None,
        network: Optional[Network] = None,
    ) -> None:
        super().__init__(
            config or BaselineConfig(),
            server_factory=QuorumServer,
            session_factory=QuorumSession,
            sim=sim,
            network=network,
        )
