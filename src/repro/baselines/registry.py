"""Protocol registry: build any datastore in the comparison by name.

The benchmark harness sweeps over protocol names; this module maps a
name plus a small set of shared deployment parameters onto the right
config type and facade, so every system in a figure runs on identically
sized clusters and identical link models.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.api import Datastore
from repro.baselines.chain import ChainReplicationStore
from repro.baselines.common import BaselineConfig
from repro.baselines.cops import CopsStore
from repro.baselines.eventual import EventualStore
from repro.baselines.quorum import QuorumStore
from repro.core.config import ChainReactionConfig
from repro.core.datastore import ChainReactionStore
from repro.errors import ConfigError

__all__ = ["PROTOCOLS", "build_store"]

#: Every comparable system, in the order figures list them.
PROTOCOLS: Tuple[str, ...] = ("chainreaction", "chain", "eventual", "quorum", "cops")


def build_store(
    protocol: str,
    sites: Tuple[str, ...] = ("dc0",),
    servers_per_site: int = 6,
    chain_length: int = 3,
    ack_k: int = 2,
    seed: int = 42,
    lan_median: float = 0.0003,
    wan_median: float = 0.040,
    write_quorum: Optional[int] = None,
    read_quorum: Optional[int] = None,
    overrides: Optional[Dict[str, object]] = None,
    local_sites: Optional[Tuple[str, ...]] = None,
) -> Datastore:
    """Instantiate a deployment of ``protocol`` with shared sizing.

    ``overrides`` passes through protocol-specific config fields (e.g.
    ``allow_prefix_reads`` for the ChainReaction ablations) and is
    applied last. ``local_sites`` builds only a shard of the deployment
    (the parallel engine's per-worker view); only the chain-family
    protocols shard — their cross-site traffic flows exclusively
    between geo-proxies, which is the boundary the engine traps.
    """
    overrides = dict(overrides or {})
    if protocol in ("chainreaction", "chain"):
        config = ChainReactionConfig(
            sites=tuple(sites),
            servers_per_site=servers_per_site,
            chain_length=chain_length,
            ack_k=min(ack_k, chain_length),
            seed=seed,
            lan_median=lan_median,
            wan_median=wan_median,
        )
        if overrides:
            config = config.with_updates(**overrides)
        if protocol == "chain":
            return ChainReplicationStore(config, local_sites=local_sites)
        return ChainReactionStore(config, local_sites=local_sites)
    if local_sites is not None:
        raise ConfigError(
            f"protocol {protocol!r} does not support sharded builds "
            "(local_sites); only chainreaction/chain do"
        )

    config = BaselineConfig(
        sites=tuple(sites),
        servers_per_site=servers_per_site,
        chain_length=chain_length,
        seed=seed,
        lan_median=lan_median,
        wan_median=wan_median,
        write_quorum=write_quorum or max(1, chain_length // 2 + 1),
        read_quorum=read_quorum or max(1, chain_length // 2 + 1),
    )
    if overrides:
        config = config.with_updates(**overrides)
    if protocol == "eventual":
        return EventualStore(config)
    if protocol == "quorum":
        return QuorumStore(config)
    if protocol == "cops":
        return CopsStore(config)
    raise ConfigError(f"unknown protocol {protocol!r}; choose from {PROTOCOLS}")
