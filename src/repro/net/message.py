"""Message base types and wire-size accounting.

The reproduction never serialises anything for real, but the paper's
metadata-overhead experiment (E8) needs byte-accurate accounting of what
each request carries. :func:`estimate_size` assigns every Python value a
wire size using fixed-width scalars and length-prefixed containers, so
two messages that would serialise to the same wire format get the same
size here.
"""

from __future__ import annotations

import dataclasses
from typing import Any, ClassVar

__all__ = ["Message", "estimate_size", "WIRE_HEADER_BYTES"]

#: Fixed per-message envelope: source + destination address, type tag,
#: and length prefix — roughly what a compact binary framing would use.
WIRE_HEADER_BYTES = 24

_SCALAR_SIZES = {
    bool: 1,
    int: 8,
    float: 8,
    type(None): 1,
}


def estimate_size(value: Any) -> int:
    """Estimated wire size in bytes of a Python value.

    Strings/bytes count their length plus a 4-byte length prefix;
    containers count a 4-byte length prefix plus their elements; objects
    exposing ``size_bytes()`` delegate to it; dataclasses count their
    fields. Scalars use fixed widths (int 8, float 8, bool 1, None 1).
    """
    scalar = _SCALAR_SIZES.get(type(value))
    if scalar is not None:
        return scalar
    if isinstance(value, (str, bytes)):
        return 4 + len(value)
    if isinstance(value, (list, tuple, set, frozenset)):
        return 4 + sum(estimate_size(item) for item in value)
    if isinstance(value, dict):
        return 4 + sum(estimate_size(k) + estimate_size(v) for k, v in value.items())
    size_fn = getattr(value, "size_bytes", None)
    if callable(size_fn):
        return size_fn()
    if dataclasses.is_dataclass(value):
        return sum(
            estimate_size(getattr(value, f.name)) for f in dataclasses.fields(value)
        )
    # Fallback for exotic types: charge a pointer-sized slot rather than
    # crashing accounting; protocols should not rely on this.
    return 8


@dataclasses.dataclass
class Message:
    """Base class for all protocol messages.

    Subclasses are plain dataclasses; ``size_bytes`` sums the envelope
    and every field. Override it only when a field should *not* count
    toward the wire size (e.g. simulation bookkeeping).
    """

    #: Human-readable tag used in network statistics.
    type_name: ClassVar[str] = "message"

    def size_bytes(self) -> int:
        body = sum(
            estimate_size(getattr(self, f.name)) for f in dataclasses.fields(self)
        )
        return WIRE_HEADER_BYTES + body
