"""Message base types and wire-size accounting.

The reproduction never serialises anything for real, but the paper's
metadata-overhead experiment (E8) needs byte-accurate accounting of what
each request carries. :func:`estimate_size` assigns every Python value a
wire size using fixed-width scalars and length-prefixed containers, so
two messages that would serialise to the same wire format get the same
size here.
"""

from __future__ import annotations

import dataclasses
from typing import Any, ClassVar, Dict, Tuple

__all__ = ["Message", "estimate_size", "WIRE_HEADER_BYTES"]

#: Fixed per-message envelope: source + destination address, type tag,
#: and length prefix — roughly what a compact binary framing would use.
WIRE_HEADER_BYTES = 24

_SCALAR_SIZES = {  # repro: lint-ok(module-mutable-state) — constant lookup table, never mutated
    bool: 1,
    int: 8,
    float: 8,
    type(None): 1,
}

#: Per-class cache of dataclass field names; ``dataclasses.fields()``
#: rebuilds a tuple of Field objects on every call, which shows up hot
#: when every message hop is sized. Keyed by class, filled lazily.
_FIELD_NAMES: Dict[type, Tuple[str, ...]] = {}  # repro: lint-ok(module-mutable-state) — per-process memo rebuilt identically from class definitions


def _field_names(cls: type) -> Tuple[str, ...]:
    names = _FIELD_NAMES.get(cls)
    if names is None:
        names = tuple(f.name for f in dataclasses.fields(cls))
        _FIELD_NAMES[cls] = names
    return names


def estimate_size(value: Any) -> int:
    """Estimated wire size in bytes of a Python value.

    Strings/bytes count their length plus a 4-byte length prefix;
    containers count a 4-byte length prefix plus their elements; objects
    exposing ``size_bytes()`` delegate to it; dataclasses count their
    fields. Scalars use fixed widths (int 8, float 8, bool 1, None 1).
    """
    scalar = _SCALAR_SIZES.get(type(value))
    if scalar is not None:
        return scalar
    if isinstance(value, (str, bytes)):
        return 4 + len(value)
    if isinstance(value, (list, tuple, set, frozenset)):
        return 4 + sum(estimate_size(item) for item in value)
    if isinstance(value, dict):
        return 4 + sum(estimate_size(k) + estimate_size(v) for k, v in value.items())
    size_fn = getattr(value, "size_bytes", None)
    if callable(size_fn):
        return size_fn()
    if dataclasses.is_dataclass(value):
        return sum(
            estimate_size(getattr(value, name)) for name in _field_names(type(value))
        )
    # Fallback for exotic types: charge a pointer-sized slot rather than
    # crashing accounting; protocols should not rely on this.
    return 8


@dataclasses.dataclass(frozen=True)
class Message:
    """Base class for all protocol messages.

    Subclasses are frozen dataclasses (``@dataclass(frozen=True)`` —
    the linter's ``frozen-message`` rule enforces it); ``size_bytes``
    sums the envelope and every field. Override it only when a field
    should *not* count toward the wire size (e.g. simulation
    bookkeeping).

    Subclasses whose instances are never mutated after being handed to
    the network may set ``memoize_size = True``: the first
    ``size_bytes()`` result is cached on the instance and returned
    verbatim afterwards. Immutability is what makes the cache — and
    ``copy_size_from`` — sound.
    """

    #: Human-readable tag used in network statistics.
    type_name: ClassVar[str] = "message"

    #: Opt-in per-instance size cache; see class docstring.
    memoize_size: ClassVar[bool] = False

    def size_bytes(self) -> int:
        if self.memoize_size:
            cached = self.__dict__.get("_size_memo")
            if cached is not None:
                return cached
        body = WIRE_HEADER_BYTES
        for name in _field_names(type(self)):
            body += estimate_size(getattr(self, name))
        if self.memoize_size:
            object.__setattr__(self, "_size_memo", body)
        return body

    def copy_size_from(self, other: "Message") -> "Message":
        """Carry ``other``'s memoized size onto this message.

        Only valid when the caller knows both messages serialise to the
        same number of bytes — e.g. a chain hop where the only fields
        that differ are fixed-width scalars. Returns ``self`` so the
        call can be chained at a send site. A no-op when ``other`` has
        not been sized yet (or does not memoize).
        """
        memo = other.__dict__.get("_size_memo")
        if memo is not None:
            object.__setattr__(self, "_size_memo", memo)
        return self
