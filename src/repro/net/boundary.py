"""Cross-shard message exchange for the parallel simulation engine.

When one logical experiment is sharded per datacenter, every
:meth:`Network.send` whose destination lives on another shard cannot be
delivered locally — the destination actor exists in a different worker
process. The :class:`ShardBoundary` traps such sends, finishes the
sender-side half of delivery (drop checks, stats accounting, latency
sampling, FIFO ordering — everything :meth:`Network.send` would have
done), and packages the result as a timestamped :class:`Envelope`. The
coordinator ferries envelopes between workers at each round barrier and
the receiving shard injects them into its own simulator.

Determinism contract: envelopes are injected in ``(deliver_at,
src_shard, seq)`` order, and only at round barriers where every local
event below the envelope's timestamp has already run (the conservative
window guarantees ``deliver_at >= window bound``). The merged execution
is therefore independent of worker count and pipe arrival order.

Envelopes cross process boundaries by pickling: ``Address`` and the
frozen ``Message`` dataclasses pickle structurally, and
``VersionVector.__reduce__`` re-interns vectors in the receiving
process's pool.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, FrozenSet, List, Tuple

from repro.errors import SimulationError
from repro.net.message import Message
from repro.net.network import _FIFO_EPSILON, Address, Network

__all__ = ["Envelope", "ShardBoundary"]


@dataclasses.dataclass(frozen=True)
class Envelope:
    """One cross-shard message, fully scheduled by the sender.

    ``deliver_at`` is final: the sender already sampled the WAN latency
    from its own RNG stream and applied the link's FIFO horizon, so the
    receiver schedules delivery verbatim. ``(deliver_at, src_shard,
    seq)`` is the stable injection sort key — ``seq`` is the sender
    boundary's own counter, so the triple is unique and identical no
    matter how the envelopes were batched in transit.
    """

    deliver_at: float
    src_shard: int
    seq: int
    src: Address
    dst: Address
    msg: Message

    def sort_key(self) -> Tuple[float, int, int]:
        return (self.deliver_at, self.src_shard, self.seq)


class ShardBoundary:
    """Sender/receiver endpoint for cross-shard traffic on one shard.

    Attached to the shard's :class:`Network` via
    :meth:`Network.attach_boundary`; ``send`` is called from the
    network's unknown-address branch so the intra-shard hot path pays
    nothing for the check.
    """

    def __init__(
        self,
        network: Network,
        shard_id: int,
        remote_sites: FrozenSet[str],
        lookahead: float,
    ) -> None:
        if lookahead <= 0:
            raise SimulationError(
                f"cross-shard lookahead must be positive, got {lookahead}"
            )
        self.network = network
        self.shard_id = shard_id
        self.remote_sites = frozenset(remote_sites)
        #: conservative promise: no envelope sent now may arrive anywhere
        #: before now + lookahead. Sampled delays already respect the
        #: link models' min_latency() floors; the clamp below turns that
        #: from a convention into an enforced invariant.
        self.lookahead = lookahead
        self._outbound: List[Envelope] = []
        self._seq = 0
        #: FIFO horizons for cross-shard links. The receiving network
        #: never sees these sends, so its own horizon table cannot order
        #: them; the sender's boundary does, mirroring Network.send.
        self._fifo_horizon: Dict[Tuple[Address, Address], float] = {}
        self.envelopes_sent = 0
        self.envelopes_injected = 0

    # ------------------------------------------------------------------
    # sender side
    # ------------------------------------------------------------------
    def send(self, src: Address, dst: Address, msg: Message) -> None:
        """Trap one cross-shard send; mirrors :meth:`Network.send`."""
        net = self.network
        if net._down or net._blocked or net._filters:
            if (
                src in net._down
                or dst in net._down
                or net._is_blocked(src, dst)
                or any(not keep(src, dst, msg) for keep in net._filters)
            ):
                net.stats.messages_dropped += 1
                return
        size = msg.size_bytes()
        model = net.latency_model(src, dst)
        net.stats.record(msg, size, cross_site=True)

        delay = model.sample(net._rng)
        if delay < self.lookahead:
            delay = self.lookahead
        deliver_at = net.sim.now + delay
        link = (src, dst)
        horizon = self._fifo_horizon.get(link, 0.0) + _FIFO_EPSILON
        if horizon > deliver_at:
            deliver_at = horizon
        self._fifo_horizon[link] = deliver_at

        self._seq += 1
        self._outbound.append(
            Envelope(
                deliver_at=deliver_at,
                src_shard=self.shard_id,
                seq=self._seq,
                src=src,
                dst=dst,
                msg=msg,
            )
        )
        self.envelopes_sent += 1

    def drain(self) -> List[Envelope]:
        """Take (and clear) the envelopes produced since the last round."""
        out = self._outbound
        self._outbound = []
        return out

    # ------------------------------------------------------------------
    # receiver side
    # ------------------------------------------------------------------
    def inject(self, envelopes: List[Envelope]) -> None:
        """Schedule a round's inbound envelopes on the local simulator.

        Must be called at a round barrier, with every envelope
        timestamped at or after the shard's executed horizon. Sorting by
        the envelope key before scheduling makes heap sequence numbers —
        and therefore same-instant delivery order — independent of how
        the coordinator batched or ordered the transfers. Delivery goes
        through ``Network._deliver`` so crash/partition state is
        re-checked at delivery time in the *receiving* shard.
        """
        if not envelopes:
            return
        net = self.network
        sim = net.sim
        for env in sorted(envelopes, key=Envelope.sort_key):
            if env.deliver_at < sim.now:
                raise SimulationError(
                    f"stale envelope: deliver_at={env.deliver_at} < now={sim.now} "
                    f"(lookahead violated by shard {env.src_shard})"
                )
            sim.post_at(env.deliver_at, net._deliver, env.src, env.dst, env.msg)
            self.envelopes_injected += 1
