"""Link latency models.

The paper's testbed has two qualitatively different links: intra-DC
(sub-millisecond, low variance) and inter-DC WAN (tens of milliseconds,
heavier tail). Each model is a distribution over one-way delivery
delays; the network samples one delay per message from the appropriate
model, so latency shapes — not just means — carry through to the
latency-CDF experiments (E3/E4).
"""

from __future__ import annotations

import math
import random
from typing import Optional

__all__ = [
    "LatencyModel",
    "FixedLatency",
    "UniformLatency",
    "NormalLatency",
    "LogNormalLatency",
    "ScaledLatency",
    "lan_latency",
    "wan_latency",
    "WAN_LATENCY_FLOOR",
]

#: How many sigmas below the median a log-normal sample may fall before
#: it is clamped. At 8 sigmas the clamp triggers with probability
#: ~6e-16 per draw — unobservable in any run this repository performs —
#: but it gives the distribution a hard floor, which the parallel
#: engine needs: conservative lookahead is only sound if ``sample()``
#: can never undercut ``min_latency()``.
_LOGNORMAL_FLOOR_SIGMAS = 8.0


class LatencyModel:
    """Distribution over one-way message delays (seconds)."""

    def sample(self, rng: random.Random) -> float:
        raise NotImplementedError

    def mean(self) -> float:
        """Expected delay; used for sanity checks and documentation."""
        raise NotImplementedError

    def min_latency(self) -> float:
        """Hard lower bound on ``sample()``: no draw is ever below this.

        The conservative parallel engine uses the smallest cross-site
        ``min_latency()`` as its lookahead — a message sent now cannot
        arrive at another shard sooner than this, so each shard may
        safely simulate that far past the horizon its peers promised.
        Models without a sharper bound inherit the trivial ``0.0``
        (which disables sharding rather than corrupting it).
        """
        return 0.0


class FixedLatency(LatencyModel):
    """Constant delay; useful for deterministic protocol tests."""

    def __init__(self, delay: float) -> None:
        if delay < 0:
            raise ValueError(f"latency must be non-negative, got {delay}")
        self.delay = delay

    def sample(self, rng: random.Random) -> float:
        return self.delay

    def mean(self) -> float:
        return self.delay

    def min_latency(self) -> float:
        return self.delay

    def __repr__(self) -> str:
        return f"FixedLatency({self.delay})"


class UniformLatency(LatencyModel):
    """Uniform delay in ``[low, high]``."""

    def __init__(self, low: float, high: float) -> None:
        if not 0 <= low <= high:
            raise ValueError(f"need 0 <= low <= high, got [{low}, {high}]")
        self.low = low
        self.high = high

    def sample(self, rng: random.Random) -> float:
        return rng.uniform(self.low, self.high)

    def mean(self) -> float:
        return (self.low + self.high) / 2.0

    def min_latency(self) -> float:
        return self.low

    def __repr__(self) -> str:
        return f"UniformLatency({self.low}, {self.high})"


class NormalLatency(LatencyModel):
    """Gaussian delay truncated below at ``floor`` (default: 10% of the mean)."""

    def __init__(self, mu: float, sigma: float, floor: Optional[float] = None) -> None:
        if mu <= 0 or sigma < 0:
            raise ValueError(f"need mu > 0 and sigma >= 0, got mu={mu}, sigma={sigma}")
        self.mu = mu
        self.sigma = sigma
        self.floor = mu * 0.1 if floor is None else floor

    def sample(self, rng: random.Random) -> float:
        return max(self.floor, rng.gauss(self.mu, self.sigma))

    def mean(self) -> float:
        return self.mu

    def min_latency(self) -> float:
        return self.floor

    def __repr__(self) -> str:
        return f"NormalLatency(mu={self.mu}, sigma={self.sigma})"


class LogNormalLatency(LatencyModel):
    """Log-normal delay — the classic heavy-ish tail of real networks.

    Parameterised by the *median* delay and sigma of the underlying
    normal, which is how network measurements are usually reported.
    """

    def __init__(self, median: float, sigma: float = 0.3) -> None:
        if median <= 0 or sigma < 0:
            raise ValueError(f"need median > 0, sigma >= 0, got {median}, {sigma}")
        self.median = median
        self.sigma = sigma
        self._mu = math.log(median)
        # A log-normal has no mathematical floor; clamp the far left tail
        # (P ~ 6e-16 per draw) so min_latency() is a true bound.
        self._floor = median * math.exp(-_LOGNORMAL_FLOOR_SIGMAS * sigma)

    def sample(self, rng: random.Random) -> float:
        draw = rng.lognormvariate(self._mu, self.sigma)
        return draw if draw >= self._floor else self._floor

    def mean(self) -> float:
        return math.exp(self._mu + self.sigma**2 / 2.0)

    def min_latency(self) -> float:
        return self._floor

    def __repr__(self) -> str:
        return f"LogNormalLatency(median={self.median}, sigma={self.sigma})"


class ScaledLatency(LatencyModel):
    """A base model slowed down by a constant factor.

    The fault injector's "slow link" degradation: one sample is drawn
    from the base model per message either way, so swapping a link to
    its scaled version mid-run changes delays without perturbing the
    RNG draw sequence — campaigns stay deterministic.
    """

    def __init__(self, base: LatencyModel, factor: float) -> None:
        if factor <= 0:
            raise ValueError(f"factor must be positive, got {factor}")
        self.base = base
        self.factor = factor

    def sample(self, rng: random.Random) -> float:
        return self.base.sample(rng) * self.factor

    def mean(self) -> float:
        return self.base.mean() * self.factor

    def min_latency(self) -> float:
        return self.base.min_latency() * self.factor

    def __repr__(self) -> str:
        return f"ScaledLatency({self.base!r}, x{self.factor})"


def lan_latency(median: float = 0.0003) -> LatencyModel:
    """Default intra-datacenter link: ~0.3 ms median, light tail."""
    return LogNormalLatency(median=median, sigma=0.2)


def wan_latency(median: float = 0.040) -> LatencyModel:
    """Default inter-datacenter link: ~40 ms median, heavier tail."""
    return LogNormalLatency(median=median, sigma=0.1)


#: ``wan_latency().min_latency()`` as a constant (~18 ms): the default
#: conservative lookahead for per-DC sharding, and the WAN delay floor
#: quoted by the protocol-plane metrics report.
WAN_LATENCY_FLOOR = 0.040 * math.exp(-_LOGNORMAL_FLOOR_SIGMAS * 0.1)
