"""The simulated network fabric.

Addresses are ``(site, node)`` pairs — a *site* is a datacenter. Links
within a site use the LAN latency model; links between sites use the WAN
model for that site pair. Delivery between any ordered pair of addresses
is FIFO (as over a TCP connection): a message handed to the network
later never overtakes one handed over earlier, even if its sampled
latency is smaller. Chain replication's correctness argument leans on
exactly this property.

Failure injection:

- ``set_down(addr)`` silently discards traffic to/from a crashed node,
- ``block(a, b)`` / ``heal()`` model network partitions at site or
  address granularity,
- ``add_filter(fn)`` installs an arbitrary drop predicate for targeted
  fault tests.
"""

from __future__ import annotations

import dataclasses
from collections import defaultdict
from typing import Any, Callable, Dict, FrozenSet, List, Optional, Set, Tuple, Union

from repro.errors import AddressUnknownError, NetworkError
from repro.net.latency import LatencyModel, lan_latency, wan_latency
from repro.net.message import Message
from repro.sim.kernel import Simulator
from repro.sim.rng import RngRegistry
from repro.storage.version import intern_str

__all__ = [
    "Address",
    "Network",
    "NetworkStats",
    "commutativity_fingerprint",
    "message_keys",
]

#: Minimum spacing enforced between FIFO deliveries on one link (seconds).
_FIFO_EPSILON = 1e-9

#: Every this many sends, drop FIFO-horizon entries that lie in the past
#: (they no longer constrain delivery and are dead weight on long runs
#: with many transient clients).
_HORIZON_SWEEP_INTERVAL = 4096

Handler = Callable[[Message, "Address"], None]


def message_keys(msg: Message) -> Tuple[str, ...]:
    """The datastore keys a message touches, in carried order.

    Single-key protocol messages expose ``key``; the coalesced batch
    messages carry ``entries`` ((key, version) pairs) or ``updates``
    (whole RemoteUpdates). Control-plane messages (heartbeats, view
    changes) touch no keys and return ``()``.
    """
    key = getattr(msg, "key", "")
    if key:
        return (key,)
    entries = getattr(msg, "entries", ())
    if entries:
        return tuple(k for k, _version in entries)
    updates = getattr(msg, "updates", ())
    if updates:
        return tuple(u.key for u in updates)
    return ()


def commutativity_fingerprint(
    src: "Address", dst: "Address", msg: Message
) -> Tuple[str, str, Tuple[str, ...]]:
    """DPOR independence fingerprint: ``(destination, type, keys)``.

    Delivering a message runs exactly one actor's handler, which mutates
    only that actor's state (plus fresh sends appended to per-link FIFO
    queues) — so two pending deliveries to *different* destinations
    commute: executing them in either order reaches the same state. The
    explorer's independence relation leans on the destination component;
    type and keys are carried for schedule reporting and refinement.
    """
    return (str(dst), msg.type_name, message_keys(msg))


@dataclasses.dataclass(frozen=True, order=True)
class Address:
    """Network address of an actor: a node name within a site (datacenter)."""

    site: str
    node: str

    def __post_init__(self) -> None:
        # Site/node names recur across every address, record, and
        # tracker entry; interning shares one string object apiece.
        object.__setattr__(self, "site", intern_str(self.site))
        object.__setattr__(self, "node", intern_str(self.node))

    def __str__(self) -> str:
        return f"{self.site}:{self.node}"

    def size_bytes(self) -> int:
        return 4 + len(self.site) + 4 + len(self.node)


@dataclasses.dataclass
class NetworkStats:
    """Counters of everything the fabric delivered or dropped."""

    messages_sent: int = 0
    bytes_sent: int = 0
    messages_dropped: int = 0
    by_type: Dict[str, int] = dataclasses.field(default_factory=lambda: defaultdict(int))
    bytes_by_type: Dict[str, int] = dataclasses.field(
        default_factory=lambda: defaultdict(int)
    )
    cross_site_messages: int = 0
    cross_site_bytes: int = 0

    def record(self, msg: Message, size: int, cross_site: bool) -> None:
        self.messages_sent += 1
        self.bytes_sent += size
        self.by_type[msg.type_name] += 1
        self.bytes_by_type[msg.type_name] += size
        if cross_site:
            self.cross_site_messages += 1
            self.cross_site_bytes += size

    def merge_from(self, other: "NetworkStats") -> None:
        """Accumulate another fabric's counters (the parallel engine
        merges one ``NetworkStats`` per shard, in site order)."""
        self.messages_sent += other.messages_sent
        self.bytes_sent += other.bytes_sent
        self.messages_dropped += other.messages_dropped
        for name, n in other.by_type.items():
            self.by_type[name] += n
        for name, n in other.bytes_by_type.items():
            self.bytes_by_type[name] += n
        self.cross_site_messages += other.cross_site_messages
        self.cross_site_bytes += other.cross_site_bytes

    def count_of(self, *type_names: str) -> int:
        """Messages sent whose type is any of ``type_names``.

        The protocol-plane perf report compares e.g. the unbatched
        ``chain-stable`` flow against ``chain-stable`` + ``bulk-stable``
        under batching; this saves every caller the by_type plumbing.
        """
        return sum(self.by_type.get(name, 0) for name in type_names)

    def bytes_of(self, *type_names: str) -> int:
        """Bytes sent across messages of any of ``type_names``."""
        return sum(self.bytes_by_type.get(name, 0) for name in type_names)


class Network:
    """Message fabric connecting actors over simulated links."""

    def __init__(
        self,
        sim: Simulator,
        rng: Optional[RngRegistry] = None,
        lan: Optional[LatencyModel] = None,
        wan: Optional[LatencyModel] = None,
    ) -> None:
        self.sim = sim
        self._rng = (rng or RngRegistry(0)).stream("network")
        self._lan = lan or lan_latency()
        self._wan = wan or wan_latency()
        self._site_links: Dict[FrozenSet[str], LatencyModel] = {}
        self._handlers: Dict[Address, Handler] = {}
        self._down: Set[Address] = set()
        self._blocked: Set[FrozenSet[str]] = set()
        self._filters: List[Callable[[Address, Address, Message], bool]] = []
        self._fifo_horizon: Dict[Tuple[Address, Address], float] = {}
        #: per-(src, dst) cache of (latency model, cross-site flag); sends
        #: on a warm link skip the frozenset build in latency_model().
        self._link_cache: Dict[Tuple[Address, Address], Tuple[LatencyModel, bool]] = {}
        self._sends_since_sweep = 0
        #: cross-shard trap (see repro.net.boundary); None on unsharded
        #: deployments, so the common case costs one attribute load on
        #: the unknown-address branch only.
        self._boundary = None
        #: explore-mode diversion (see repro.analysis.explore): a
        #: predicate-and-capture hook consulted after the drop checks;
        #: returning True means the hook queued the message itself and
        #: the latency model is bypassed for it. None in ordinary runs.
        self._divert: Optional[Callable[[Address, Address, Message], bool]] = None
        self.stats = NetworkStats()

    # ------------------------------------------------------------------
    # topology
    # ------------------------------------------------------------------
    def set_link(self, site_a: str, site_b: str, model: LatencyModel) -> None:
        """Override the latency model between two sites (or within one)."""
        self._site_links[frozenset((site_a, site_b))] = model
        self._link_cache.clear()

    def clear_link(self, site_a: str, site_b: str) -> None:
        """Drop a link override, restoring the default lan/wan model."""
        self._site_links.pop(frozenset((site_a, site_b)), None)
        self._link_cache.clear()

    def site_model(self, site_a: str, site_b: str) -> LatencyModel:
        """The latency model currently in force between two sites."""
        override = self._site_links.get(frozenset((site_a, site_b)))
        if override is not None:
            return override
        return self._lan if site_a == site_b else self._wan

    def latency_model(self, src: Address, dst: Address) -> LatencyModel:
        return self.site_model(src.site, dst.site)

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def set_divert(
        self, fn: Optional[Callable[[Address, Address, Message], bool]]
    ) -> None:
        """Install (or clear, with None) the explore-mode diversion hook.

        The hook sees every message that survived the drop checks. If it
        returns True it has taken ownership — no delivery is scheduled
        here; the owner later releases it through :meth:`inject_now`.
        """
        self._divert = fn

    def inject_now(self, src: Address, dst: Address, msg: Message) -> None:
        """Deliver a previously-diverted message at the current instant.

        Posts through the kernel so the delivery runs as an ordinary
        event; :meth:`_deliver` re-checks crash/partition state, so a
        message chosen for delivery after its destination crashed is
        still dropped.
        """
        self.sim.post_at(self.sim.now, self._deliver, src, dst, msg)

    def attach_boundary(self, boundary: Any) -> None:
        """Route sends to unregistered addresses in the boundary's remote
        sites through it (the sharded engine's cross-shard trap)."""
        self._boundary = boundary

    def register(self, address: Address, handler: Handler) -> None:
        if address in self._handlers:
            raise NetworkError(f"address {address} already registered")
        self._handlers[address] = handler
        self._down.discard(address)

    def unregister(self, address: Address) -> None:
        self._handlers.pop(address, None)

    def is_registered(self, address: Address) -> bool:
        return address in self._handlers

    # ------------------------------------------------------------------
    # failure injection
    # ------------------------------------------------------------------
    def set_down(self, address: Address, down: bool = True) -> None:
        """Crash (or un-crash) a node: traffic to and from it is discarded."""
        if down:
            self._down.add(address)
        else:
            self._down.discard(address)

    def is_down(self, address: Address) -> bool:
        return address in self._down

    def block(self, a: Union[str, Address], b: Union[str, Address]) -> None:
        """Partition two endpoints (site names or addresses), both directions."""
        self._blocked.add(frozenset((str(a), str(b))))

    def unblock(self, a: Union[str, Address], b: Union[str, Address]) -> None:
        self._blocked.discard(frozenset((str(a), str(b))))

    def heal(self) -> None:
        """Remove every partition (crashed nodes stay crashed)."""
        self._blocked.clear()

    def add_filter(self, fn: Callable[[Address, Address, Message], bool]) -> None:
        """Install a predicate; messages for which it returns False are dropped."""
        self._filters.append(fn)

    def clear_filters(self) -> None:
        self._filters.clear()

    def _is_blocked(self, src: Address, dst: Address) -> bool:
        if not self._blocked:
            return False
        candidates = (
            frozenset((str(src), str(dst))),
            frozenset((src.site, dst.site)),
            frozenset((str(src), dst.site)),
            frozenset((src.site, str(dst))),
        )
        return any(pair in self._blocked for pair in candidates)

    # ------------------------------------------------------------------
    # delivery
    # ------------------------------------------------------------------
    def send(self, src: Address, dst: Address, msg: Message) -> None:
        """Hand a message to the fabric for asynchronous FIFO delivery.

        Sending is always fire-and-forget; undeliverable messages are
        silently dropped (and counted), mirroring a real network where
        the sender cannot tell a slow peer from a dead one.
        """
        if dst not in self._handlers:
            boundary = self._boundary
            if boundary is not None and dst.site in boundary.remote_sites:
                boundary.send(src, dst, msg)
                return
            raise AddressUnknownError(f"no actor registered at {dst}")
        # Fast path: with no crashes, partitions, or filters active (the
        # overwhelmingly common case) the drop checks are a single truth
        # test. Sizing happens only after the drop checks so discarded
        # messages cost nothing (dropped bytes were never recorded).
        if self._down or self._blocked or self._filters:
            if (
                src in self._down
                or dst in self._down
                or self._is_blocked(src, dst)
                or any(not keep(src, dst, msg) for keep in self._filters)
            ):
                self.stats.messages_dropped += 1
                return
        size = msg.size_bytes()
        link = (src, dst)
        cached = self._link_cache.get(link)
        if cached is None:
            cached = (self.latency_model(src, dst), src.site != dst.site)
            self._link_cache[link] = cached
        model, cross_site = cached
        self.stats.record(msg, size, cross_site)

        if self._divert is not None and self._divert(src, dst, msg):
            # Explore mode owns this message's delivery order; the
            # latency model is deliberately bypassed (schedules quotient
            # out timing — only the order of deliveries matters).
            return
        delay = model.sample(self._rng)
        deliver_at = self.sim.now + delay
        horizon = self._fifo_horizon.get(link, 0.0) + _FIFO_EPSILON
        if horizon > deliver_at:
            deliver_at = horizon
        self._fifo_horizon[link] = deliver_at
        self._sends_since_sweep += 1
        if self._sends_since_sweep >= _HORIZON_SWEEP_INTERVAL:
            self._sweep_horizons()
        self.sim.post_at(deliver_at, self._deliver, src, dst, msg)

    def _sweep_horizons(self) -> None:
        """Drop FIFO horizons that can no longer delay a delivery."""
        self._sends_since_sweep = 0
        now = self.sim.now
        stale = [
            link
            for link, horizon in self._fifo_horizon.items()
            if horizon + _FIFO_EPSILON <= now
        ]
        for link in stale:
            del self._fifo_horizon[link]

    def _deliver(self, src: Address, dst: Address, msg: Message) -> None:
        # Conditions are re-checked at delivery time: a node that crashed
        # or got partitioned while the message was in flight never sees it.
        if src in self._down or dst in self._down or self._is_blocked(src, dst):
            self.stats.messages_dropped += 1
            return
        handler = self._handlers.get(dst)
        if handler is None:
            self.stats.messages_dropped += 1
            return
        handler(msg, src)
