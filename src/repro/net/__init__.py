"""Simulated network substrate: messages, latency models, fabric, actors."""

from repro.net.actor import Actor, RpcRequest, RpcResponse
from repro.net.boundary import Envelope, ShardBoundary
from repro.net.latency import (
    WAN_LATENCY_FLOOR,
    FixedLatency,
    LatencyModel,
    LogNormalLatency,
    NormalLatency,
    ScaledLatency,
    UniformLatency,
    lan_latency,
    wan_latency,
)
from repro.net.message import Message, estimate_size
from repro.net.network import Address, Network, NetworkStats

__all__ = [
    "Actor",
    "RpcRequest",
    "RpcResponse",
    "Message",
    "estimate_size",
    "Address",
    "Network",
    "NetworkStats",
    "LatencyModel",
    "FixedLatency",
    "UniformLatency",
    "NormalLatency",
    "LogNormalLatency",
    "ScaledLatency",
    "WAN_LATENCY_FLOOR",
    "lan_latency",
    "wan_latency",
    "Envelope",
    "ShardBoundary",
]
