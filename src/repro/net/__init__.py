"""Simulated network substrate: messages, latency models, fabric, actors."""

from repro.net.actor import Actor, RpcRequest, RpcResponse
from repro.net.latency import (
    FixedLatency,
    LatencyModel,
    LogNormalLatency,
    NormalLatency,
    UniformLatency,
    lan_latency,
    wan_latency,
)
from repro.net.message import Message, estimate_size
from repro.net.network import Address, Network, NetworkStats

__all__ = [
    "Actor",
    "RpcRequest",
    "RpcResponse",
    "Message",
    "estimate_size",
    "Address",
    "Network",
    "NetworkStats",
    "LatencyModel",
    "FixedLatency",
    "UniformLatency",
    "NormalLatency",
    "LogNormalLatency",
    "lan_latency",
    "wan_latency",
]
