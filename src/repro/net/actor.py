"""Actors: addressable event-driven participants in the simulation.

Every server, proxy, and client-library endpoint in the reproduction is
an :class:`Actor`. An actor reacts to messages through ``on_<type>``
handler methods (dispatched on the message's ``type_name``), owns timers
that die with it, and can be crashed and recovered for fault-injection
experiments.

A built-in request/response layer (:meth:`Actor.call` /
``rpc_<method>`` handlers) covers the client-facing paths where
sequential code wants a :class:`~repro.sim.process.Future` back.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, ClassVar, Dict, Optional, Set

from repro.errors import RemoteError, ReplicaUnavailable, ReproError, RequestTimeout
from repro.net.message import Message
from repro.net.network import Address, Network
from repro.sim.kernel import ScheduledEvent, Simulator
from repro.sim.process import Future

__all__ = ["Actor", "RpcRequest", "RpcResponse"]

#: Default RPC deadline. Generous relative to LAN latencies so that the
#: steady-state experiments never trip it; fault tests override it.
DEFAULT_RPC_TIMEOUT = 5.0


@dataclasses.dataclass(frozen=True)
class RpcRequest(Message):
    type_name: ClassVar[str] = "rpc-request"
    request_id: int = 0
    method: str = ""
    payload: Any = None


@dataclasses.dataclass(frozen=True)
class RpcResponse(Message):
    type_name: ClassVar[str] = "rpc-response"
    request_id: int = 0
    ok: bool = True
    payload: Any = None
    error: str = ""
    #: disposition of the remote failure (see repro.errors); carried on
    #: the wire so the caller's RemoteError keeps the retryable flag
    retryable: bool = True


class Actor:
    """Base class for all protocol participants.

    Subclasses implement message handlers named ``on_<type_name>`` with
    dashes replaced by underscores (e.g. ``type_name = "chain-ack"`` →
    ``def on_chain_ack(self, msg, src)``), and RPC handlers named
    ``rpc_<method>`` that return either a plain value or a Future.
    """

    #: message types whose handling consumes ``service_time`` (subclasses
    #: override; empty set = infinitely fast actor, e.g. clients)
    SERVICED_TYPES: ClassVar[frozenset] = frozenset()

    def __init__(self, sim: Simulator, network: Network, address: Address) -> None:
        self.sim = sim
        self.network = network
        self.address = address
        self.crashed = False
        #: per-message CPU cost; with SERVICED_TYPES this makes the actor
        #: a single-server queue, giving it finite capacity — the thing
        #: that lets saturation (and tail-read bottlenecks) exist at all
        self.service_time = 0.0
        self._busy_until = 0.0
        #: optional structured-trace collector (see repro.trace); the
        #: trace() helper is a no-op until one is attached
        self.tracer = None
        self._timers: Set[ScheduledEvent] = set()
        self._rpc_seq = 0
        self._rpc_pending: Dict[int, Future] = {}
        network.register(address, self._receive)

    # ------------------------------------------------------------------
    # messaging
    # ------------------------------------------------------------------
    def send(self, dst: Address, msg: Message) -> None:
        """Fire-and-forget send; no-op while crashed."""
        if self.crashed:
            return
        self.network.send(self.address, dst, msg)

    def trace(self, category: str, event: str, key: str = "", **fields: Any) -> None:
        """Record a structured protocol event if tracing is attached."""
        if self.tracer is not None:
            self.tracer.record(str(self.address), category, event, key, **fields)

    def service_cost(self, msg: Message) -> float:
        """CPU time consumed to handle ``msg``; 0 = free (control traffic)."""
        if self.service_time > 0 and msg.type_name in self.SERVICED_TYPES:
            return self.service_time
        return 0.0

    def _receive(self, msg: Message, src: Address) -> None:
        if self.crashed:
            return
        cost = self.service_cost(msg)
        if cost > 0:
            # Single-server queue: processing starts when the CPU frees
            # up and the result is visible after the service time.
            start = max(self.sim.now, self._busy_until)
            self._busy_until = start + cost
            # Released at scheduling time: the handle is dropped here,
            # never cancelled, so the kernel may pool it after firing.
            self.sim.schedule_at(self._busy_until, self._dispatch, msg, src).release()
            return
        self._dispatch(msg, src)

    def _dispatch(self, msg: Message, src: Address) -> None:
        if self.crashed:
            return
        if isinstance(msg, RpcRequest):
            self._handle_rpc_request(msg, src)
            return
        if isinstance(msg, RpcResponse):
            self._handle_rpc_response(msg)
            return
        handler = getattr(self, "on_" + msg.type_name.replace("-", "_"), None)
        if handler is None:
            self.on_unhandled(msg, src)
        else:
            handler(msg, src)

    def on_unhandled(self, msg: Message, src: Address) -> None:
        """Hook for messages with no matching handler; default: ignore."""

    # ------------------------------------------------------------------
    # timers
    # ------------------------------------------------------------------
    def set_timer(self, delay: float, callback: Callable[..., Any], *args: Any) -> ScheduledEvent:
        """Schedule a callback that is implicitly cancelled if this actor crashes."""
        handle: ScheduledEvent = self.sim.schedule(delay, self._fire_timer, None, callback, args)
        # Rebind args so the timer can remove itself from the live set.
        handle.args = (handle, callback, args)
        self._timers.add(handle)
        return handle

    def _fire_timer(self, handle: ScheduledEvent, callback: Callable[..., Any], args: tuple) -> None:
        self._timers.discard(handle)
        if self.crashed:
            return
        callback(*args)

    def cancel_timer(self, handle: ScheduledEvent) -> None:
        handle.cancel()
        self._timers.discard(handle)

    # ------------------------------------------------------------------
    # crash / recover
    # ------------------------------------------------------------------
    def crash(self) -> None:
        """Fail-stop: drop all state-machine timers and in-flight RPCs."""
        if self.crashed:
            return
        self.crashed = True
        self.network.set_down(self.address, True)
        # sorted(): cancellation order must not depend on set hash layout
        # (ScheduledEvent orders by (time, seq), a deterministic total order
        # the linter cannot see through the bare sorted() call).
        for timer in sorted(self._timers):  # repro: lint-ok(sort-tie-identity)
            timer.cancel()
        self._timers.clear()
        pending, self._rpc_pending = self._rpc_pending, {}
        for fut in pending.values():
            fut.try_set_exception(
                ReplicaUnavailable(f"{self.address} crashed with RPC in flight")
            )

    def recover(self) -> None:
        """Bring a crashed actor back; volatile protocol state is NOT restored
        here — subclasses override :meth:`on_recover` for their recovery logic."""
        if not self.crashed:
            return
        self.crashed = False
        self._busy_until = self.sim.now
        self.network.set_down(self.address, False)
        self.on_recover()

    def on_recover(self) -> None:
        """Hook invoked after the actor rejoins the network."""

    # ------------------------------------------------------------------
    # RPC
    # ------------------------------------------------------------------
    def call(
        self,
        dst: Address,
        method: str,
        payload: Any = None,
        timeout: float = DEFAULT_RPC_TIMEOUT,
    ) -> Future:
        """Invoke ``rpc_<method>`` on the actor at ``dst``.

        Resolves with the remote return value, or fails with
        :class:`RequestTimeout` / :class:`RemoteError`.
        """
        fut = Future(self.sim)
        if self.crashed:
            fut.set_exception(ReplicaUnavailable(f"{self.address} is crashed"))
            return fut
        self._rpc_seq += 1
        rid = self._rpc_seq
        self._rpc_pending[rid] = fut
        timer = self.set_timer(timeout, self._rpc_timeout, rid, method, dst)
        fut.add_callback(lambda _f: self.cancel_timer(timer))
        self.send(dst, RpcRequest(request_id=rid, method=method, payload=payload))
        return fut

    def _rpc_timeout(self, rid: int, method: str, dst: Address) -> None:
        fut = self._rpc_pending.pop(rid, None)
        if fut is not None:
            fut.try_set_exception(
                RequestTimeout(f"rpc {method!r} to {dst} timed out")
            )

    def _handle_rpc_request(self, msg: RpcRequest, src: Address) -> None:
        handler = getattr(self, "rpc_" + msg.method, None)
        if handler is None:
            self.send(
                src,
                RpcResponse(
                    request_id=msg.request_id,
                    ok=False,
                    error=f"no rpc handler {msg.method!r} on {type(self).__name__}",
                ),
            )
            return
        try:
            result = handler(msg.payload, src)
        except ReproError as exc:
            self.send(
                src,
                RpcResponse(
                    request_id=msg.request_id,
                    ok=False,
                    error=str(exc),
                    retryable=exc.retryable,
                ),
            )
            return
        if isinstance(result, Future):
            result.add_callback(
                lambda fut: self._reply_from_future(src, msg.request_id, fut)
            )
        else:
            self.send(src, RpcResponse(request_id=msg.request_id, ok=True, payload=result))

    def _reply_from_future(self, src: Address, request_id: int, fut: Future) -> None:
        if fut.failed():
            exc = fut.exception()
            self.send(
                src,
                RpcResponse(
                    request_id=request_id,
                    ok=False,
                    error=str(exc),
                    retryable=bool(getattr(exc, "retryable", True)),
                ),
            )
        else:
            self.send(
                src,
                RpcResponse(request_id=request_id, ok=True, payload=fut.result()),
            )

    def _handle_rpc_response(self, msg: RpcResponse) -> None:
        fut = self._rpc_pending.pop(msg.request_id, None)
        if fut is None:
            return  # late response after timeout; drop
        if msg.ok:
            fut.try_set_result(msg.payload)
        else:
            fut.try_set_exception(RemoteError(msg.error, retryable=msg.retryable))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "crashed" if self.crashed else "up"
        return f"<{type(self).__name__} {self.address} {state}>"
