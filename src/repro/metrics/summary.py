"""Plain-text rendering of benchmark tables and series.

The benchmark harness prints the same rows/series the paper's figures
plot; these helpers keep that output aligned and consistent across the
ten experiments.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

__all__ = ["render_table", "render_series", "format_number"]


def format_number(value: object, precision: int = 2) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        return f"{value:.{precision}f}"
    return str(value)


def render_table(headers: Sequence[str], rows: Iterable[Sequence[object]], title: str = "") -> str:
    """Fixed-width text table; numbers right-aligned, strings left-aligned."""
    str_rows: List[List[str]] = [[format_number(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(cells))

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt(list(headers)))
    lines.append(fmt(["-" * w for w in widths]))
    lines.extend(fmt(row) for row in str_rows)
    return "\n".join(lines)


def render_series(
    series: Sequence[Tuple[float, float]],
    x_label: str = "t",
    y_label: str = "value",
    title: str = "",
) -> str:
    """Two-column rendering of an (x, y) series."""
    return render_table([x_label, y_label], [(x, y) for x, y in series], title=title)
