"""Protocol-plane counters: batching effectiveness and metadata footprint.

These helpers aggregate the coalescer counters (``repro.core.batching``)
and the metadata-GC gauges that PR 4 added across a deployment's servers,
proxies, and client sessions. They are duck-typed (``Any``) rather than
importing the core classes, so the metrics package stays a leaf.

Two views matter for the perf report:

- **flow** — how many individual notifications the protocol *would*
  have sent versus how many batch messages actually hit the wire
  (``entries_enqueued`` / ``batches_flushed`` / ``messages_saved``);
- **footprint** — how much stability/dependency metadata is live right
  now (stable-map entries, sealed keys, client dep-table entries and
  bytes). With ``metadata_gc`` on, the footprint should plateau as the
  run grows; without it, it grows with the keyspace.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable

__all__ = [
    "STABILITY_MESSAGE_TYPES",
    "GLOBAL_STABILITY_MESSAGE_TYPES",
    "SHIPPING_MESSAGE_TYPES",
    "CLOCK_STABILITY_MESSAGE_TYPES",
    "coalescer_stats",
    "batching_stats",
    "link_floor_profile",
    "metadata_footprint",
    "placement_stats",
    "stability_plane_stats",
]

#: wire types carrying intra-DC stability notifications (notices plane)
STABILITY_MESSAGE_TYPES = ("chain-stable", "bulk-stable")
#: wire types carrying global-stability announcements (notices plane)
GLOBAL_STABILITY_MESSAGE_TYPES = ("global-stable-notice", "global-stable-batch")
#: wire types carrying geo-replicated update payloads ("clock-ship" is
#: the clock plane's batched carrier of the same RemoteUpdate payloads)
SHIPPING_MESSAGE_TYPES = ("remote-update", "remote-update-batch", "clock-ship")
#: wire types carrying the clock plane's stabilization control traffic;
#: the A/B comparison pits STABILITY + GLOBAL_STABILITY + global-ack
#: (the notices plane's per-write streams) against these periodic ones.
#: TailStable and the payload-shipping types are excluded from both
#: sides: they carry data, not stability metadata, and exist on both
#: planes.
CLOCK_STABILITY_MESSAGE_TYPES = (
    "tail-applied",
    "clock-report",
    "clock-tick",
    "stability-vector",
)


def coalescer_stats(coalescers: Iterable[Any]) -> Dict[str, int]:
    """Sum the counters of a set of coalescers (``None`` entries skipped)."""
    out = {
        "entries_enqueued": 0,
        "batches_flushed": 0,
        "eager_flushes": 0,
        "messages_saved": 0,
        "pending_entries": 0,
    }
    for c in coalescers:
        if c is None:
            continue
        out["entries_enqueued"] += c.entries_enqueued
        out["batches_flushed"] += c.batches_flushed
        out["eager_flushes"] += c.eager_flushes
        out["messages_saved"] += c.messages_saved()
        out["pending_entries"] += c.pending_entries()
    return out


def batching_stats(nodes: Iterable[Any], proxies: Iterable[Any]) -> Dict[str, Any]:
    """Batching counters split by stream: chain stability, geo, global."""
    proxy_list = list(proxies)
    return {
        "stability": coalescer_stats(n._stable_coalescer for n in nodes),
        "shipping": coalescer_stats(p._update_coalescer for p in proxy_list),
        "global": coalescer_stats(p._global_coalescer for p in proxy_list),
    }


def link_floor_profile(network: Any) -> Dict[str, float]:
    """Latency floors of a deployment's links, in seconds.

    ``LatencyModel.min_latency()`` bounds every future sample of a model
    from below; the smallest *cross-site* floor is exactly the
    conservative lookahead the sharded engine (:mod:`repro.sim.shard`)
    runs under, so a report carrying protocol counters can also record
    the horizon those numbers were obtained with. Link overrides
    (``Network.set_link``) participate: an experiment that tightens one
    WAN link tightens the reported lookahead too.
    """
    lan_floor = network._lan.min_latency()
    wan_floor = network._wan.min_latency()
    cross_floors = [wan_floor]
    for sites, model in network._site_links.items():
        if len(sites) == 2:
            cross_floors.append(model.min_latency())
    return {
        "lan_floor_s": lan_floor,
        "wan_floor_s": wan_floor,
        "cross_site_lookahead_s": min(cross_floors),
    }


def metadata_footprint(nodes: Iterable[Any], sessions: Iterable[Any]) -> Dict[str, int]:
    """Live metadata gauges: server stability maps and client dep tables.

    Since the PR 5 memory work the report also covers the pooled and
    interned structures backing that metadata — the version-vector
    intern pool and the allocated dependency-table column cells — so
    PR 4's plateau numbers stay comparable against the new layout
    (``dep_table_slots`` ≥ ``dep_table_entries``; the difference is
    unreclaimed holes awaiting compaction).
    """
    from repro.storage.version import intern_stats

    node_list = list(nodes)
    session_list = list(sessions)
    pool = intern_stats()
    dep_slots = 0
    for s in session_list:
        table = getattr(s, "_deps", None)
        column_slots = getattr(table, "column_slots", None)
        if column_slots is not None:
            dep_slots += column_slots()
    hlc_entries = 0
    hlc_skew_max = 0
    for n in node_list:
        plane = getattr(n, "plane", None)
        if plane is not None:
            hlc_entries += plane.hlc_entry_count()
            skew = plane.max_skew()
            if skew > hlc_skew_max:
                hlc_skew_max = skew
    return {
        "stable_map_entries": sum(n.metadata_entries() for n in node_list),
        "global_floor_entries": sum(n.global_floor_entries() for n in node_list),
        "keys_sealed": sum(n.keys_sealed for n in node_list),
        "entries_sealed": sum(
            n.stability.entries_sealed + n.global_stability.entries_sealed
            for n in node_list
        ),
        "dep_table_entries": sum(s.metadata_entries() for s in session_list),
        "dep_table_bytes": sum(s.metadata_bytes() for s in session_list),
        "dep_table_slots": dep_slots,
        "vv_intern_entries": pool["entries"],
        "vv_intern_capacity": pool["capacity"],
        "vv_intern_hits": pool["hits"],
        # clock-plane gauges (0 on the notices plane): per-key stamp map
        # size and the worst clock-vs-simulated-time skew seen, in µs
        "hlc_entries": hlc_entries,
        "hlc_skew_max_us": hlc_skew_max,
        # partial-replication client gauges (0 under full replication):
        # operations routed to a remote owner DC instead of served here
        "forwarded_gets": sum(
            getattr(s, "forwarded_gets", 0) for s in session_list
        ),
        "forwarded_puts": sum(
            getattr(s, "forwarded_puts", 0) for s in session_list
        ),
    }


def placement_stats(store: Any) -> Dict[str, Any]:
    """Partial-replication gauges for one deployment (per local site).

    ``owned_shards`` and ``records_held`` expose the per-DC memory
    census the replication-degree A/B compares; the forwarded-operation
    counters and ``dep_table_slots`` bound the extra metadata partial
    replication introduces (remote routing plus ``fwd_deps`` merges).
    Under full replication the catalog is None and the dict collapses to
    the degenerate summary.
    """
    config = store.config
    catalog = config.placement()
    if catalog is None:
        return {
            "partial": False,
            "replication_degree": len(config.sites),
            "num_shards": config.num_shards,
        }
    per_site: Dict[str, Dict[str, int]] = {}
    for site in store.local_sites:
        nodes = store.nodes.get(site, [])
        proxy = store.proxies.get(site)
        site_sessions = [s for s in store._sessions if s.site == site]
        dep_slots = 0
        for s in site_sessions:
            table = getattr(s, "_deps", None)
            column_slots = getattr(table, "column_slots", None)
            if column_slots is not None:
                dep_slots += column_slots()
        per_site[site] = {
            "owned_shards": len(catalog.owned_shards(site)),
            "records_held": sum(len(n.store) for n in nodes),
            "forwarded_gets_served": getattr(proxy, "forwarded_gets_served", 0),
            "forwarded_get_bytes": getattr(proxy, "forwarded_get_bytes", 0),
            "forwarded_puts_served": getattr(proxy, "forwarded_puts_served", 0),
            "dep_table_slots": dep_slots,
        }
    return {
        "partial": True,
        "replication_degree": catalog.replication_degree,
        "num_shards": catalog.num_shards,
        "sites": per_site,
    }


def stability_plane_stats(store: Any) -> Dict[str, Any]:
    """Plane-aware stabilization-traffic gauges for one deployment.

    ``stability_messages`` / ``stability_bytes`` count the plane's
    control traffic under one definition on both planes — everything
    sent *only* to establish stability (per-write notices and acks on
    the notices plane; floor reports, ticks and vectors on the clock
    plane). Data-bearing messages (TailStable, remote-update shipping)
    are excluded on both sides so the A/B isolates the metadata plane.
    """
    net = store.network.stats
    config = store.config
    plane = config.stability
    if plane == "clock":
        types = CLOCK_STABILITY_MESSAGE_TYPES
    else:
        types = STABILITY_MESSAGE_TYPES + GLOBAL_STABILITY_MESSAGE_TYPES + (
            "global-ack",
        )
    out: Dict[str, Any] = {
        "plane": plane,
        "stability_messages": net.count_of(*types),
        "stability_bytes": net.bytes_of(*types),
        "vector_bytes": net.bytes_of("stability-vector"),
        "tick_bytes": net.bytes_of("clock-tick"),
        "report_bytes": net.bytes_of("clock-report"),
    }
    elapsed = store.sim.now
    intervals = elapsed / config.stability_interval if elapsed > 0 else 0.0
    out["vector_bytes_per_interval"] = (
        out["vector_bytes"] / intervals if intervals else 0.0
    )
    cut_lags = []
    for proxy in getattr(store, "proxies", {}).values():
        clock = getattr(proxy, "_clock", None)
        if clock is not None:
            cut_lags.append(clock.cut_lag())
    for agent in getattr(store, "clock_agents", {}).values():
        cut_lags.append(agent.cut_lag())
    out["cut_lag_max_s"] = max(cut_lags) if cut_lags else 0.0
    return out
