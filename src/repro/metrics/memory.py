"""Memory accounting: tracemalloc peaks and a live-object census.

Two complementary views of a deployment's memory:

- :class:`TracedPeak` / :func:`traced_call` measure what a block of
  code *allocated* — ``tracemalloc`` traced current/peak bytes, the
  peak-RSS proxy the scale benchmark gates on. Python-level accounting
  (it sees every object the interpreter allocates) rather than true
  RSS, but deterministic and machine-independent.
- :func:`memory_census` walks a live datastore and counts what is
  *retained*, subsystem by subsystem, using the same ``size_bytes``
  wire-size protocol the network accounting uses — so "bytes of
  records" here means the payload bytes those structures pin, not
  interpreter overhead. The census also surfaces the PR 5 pooled
  structures: the version-vector intern pool, dependency-table column
  cells, and the simulator's recycled event handles.

Everything is duck-typed (``getattr``) so the census degrades
gracefully across protocols — subsystems a deployment lacks simply
report zero.
"""

from __future__ import annotations

import tracemalloc
from typing import Any, Callable, Dict, Tuple

from repro.storage.version import intern_stats

__all__ = ["TracedPeak", "traced_call", "memory_census", "census_totals"]


class TracedPeak:
    """Context manager capturing tracemalloc current/peak for a block.

    Nest-safe: if tracing is already on, the block piggybacks on the
    outer trace (peak is reset so the reading is block-local) and does
    not stop it on exit.
    """

    __slots__ = ("current_bytes", "peak_bytes", "_owns_trace")

    def __init__(self) -> None:
        self.current_bytes = 0
        self.peak_bytes = 0
        self._owns_trace = False

    def __enter__(self) -> "TracedPeak":
        self._owns_trace = not tracemalloc.is_tracing()
        if self._owns_trace:
            tracemalloc.start()
        else:
            tracemalloc.reset_peak()
        return self

    def __exit__(self, *exc: Any) -> None:
        self.current_bytes, self.peak_bytes = tracemalloc.get_traced_memory()
        if self._owns_trace:
            tracemalloc.stop()


def traced_call(fn: Callable[[], Any]) -> Tuple[Any, int, int]:
    """Run ``fn`` under tracemalloc; returns (result, current, peak) bytes."""
    with TracedPeak() as trace:
        result = fn()
    return result, trace.current_bytes, trace.peak_bytes


def _census_nodes(nodes: Any) -> Dict[str, Dict[str, int]]:
    rec_objects = rec_bytes = 0
    stab_entries = stab_bytes = 0
    record_dep_entries = 0
    log_entries = log_bytes = 0
    for node in nodes:
        store = getattr(node, "store", None)
        if store is not None and hasattr(store, "all_records"):
            for rec in store.all_records():
                rec_objects += 1
                rec_bytes += rec.size_bytes()
            log = getattr(store, "log", None)
            if log is not None:
                log_entries += len(log)
                log_bytes += getattr(log, "bytes_written", 0)
        for tracker_name in ("stability", "global_stability"):
            tracker = getattr(node, tracker_name, None)
            if tracker is None or not hasattr(tracker, "tracked_keys"):
                continue
            for key in tracker.tracked_keys():
                version = tracker.raw_entry(key)
                stab_entries += 1
                stab_bytes += 4 + len(key) + (version.size_bytes() if version else 0)
        record_deps = getattr(node, "_record_deps", None)
        if record_deps:
            record_dep_entries += sum(len(deps) for deps in record_deps.values())
    return {
        "records": {"objects": rec_objects, "bytes": rec_bytes},
        "stability": {"objects": stab_entries, "bytes": stab_bytes},
        "record_deps": {"objects": record_dep_entries, "bytes": 0},
        "durable_log": {"objects": log_entries, "bytes": log_bytes},
    }


def memory_census(store: Any) -> Dict[str, Dict[str, int]]:
    """Per-subsystem live object/byte census of a deployment.

    ``bytes`` are wire-protocol sizes (the ``size_bytes`` protocol);
    ``objects`` are live entry counts. Gauge-only subsystems (intern
    pool, event pool) report their own stat dicts.
    """
    servers = getattr(store, "servers", None)
    nodes = list(servers()) if callable(servers) else []
    census = _census_nodes(nodes)

    dep_entries = dep_bytes = dep_slots = 0
    for session in list(getattr(store, "_sessions", ())):
        table = getattr(session, "_deps", None)
        if table is None:
            continue
        dep_entries += len(table)
        size_fn = getattr(table, "size_bytes", None)
        if size_fn is not None:
            dep_bytes += size_fn()
        column_slots = getattr(table, "column_slots", None)
        if column_slots is not None:
            dep_slots += column_slots()
    census["dep_tables"] = {
        "objects": dep_entries,
        "bytes": dep_bytes,
        "column_slots": dep_slots,
    }

    census["vv_intern_pool"] = intern_stats()
    sim = getattr(store, "sim", None)
    pool_stats = getattr(sim, "event_pool_stats", None)
    if pool_stats is not None:
        census["event_pool"] = pool_stats()
    return census


def census_totals(census: Dict[str, Dict[str, int]]) -> Dict[str, int]:
    """Sum the object/byte columns of a census (gauge sections excluded)."""
    objects = 0
    payload_bytes = 0
    for name, row in census.items():
        if name in ("vv_intern_pool", "event_pool"):
            continue
        objects += row.get("objects", 0)
        payload_bytes += row.get("bytes", 0)
    return {"objects": objects, "bytes": payload_bytes}
