"""Latency sample collection.

A :class:`LatencyReservoir` keeps up to ``capacity`` samples using
Vitter's reservoir sampling, so percentile estimates stay unbiased on
arbitrarily long runs with bounded memory — while short runs (below the
cap) are exact. All latencies in this repository are virtual-time
seconds.
"""

from __future__ import annotations

import math
import random
from typing import List, Sequence, Tuple

__all__ = ["LatencyReservoir"]


class LatencyReservoir:
    """Bounded, unbiased sample of a latency stream.

    Slotted: long benchmark runs keep one reservoir per metric series
    and samples are raw floats in a list — no per-sample objects.
    """

    __slots__ = (
        "_capacity",
        "_rng",
        "_samples",
        "_sorted",
        "_dirty",
        "count",
        "total",
        "min",
        "max",
    )

    def __init__(self, capacity: int = 50_000, *, seed: int):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        # The seed is required and validated: an implicit
        # random.Random(None) would OS-seed the eviction choices and make
        # long-run percentiles irreproducible.
        if not isinstance(seed, int) or isinstance(seed, bool):
            raise ValueError(f"seed must be an explicit int, got {seed!r}")
        self._capacity = capacity
        self._rng = random.Random(seed)
        self._samples: List[float] = []
        self._sorted: List[float] = []
        self._dirty = False
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    def add(self, sample: float) -> None:
        self.count += 1
        self.total += sample
        if sample < self.min:
            self.min = sample
        if sample > self.max:
            self.max = sample
        if len(self._samples) < self._capacity:
            self._samples.append(sample)
            self._dirty = True
        else:
            slot = self._rng.randrange(self.count)
            if slot < self._capacity:
                self._samples[slot] = sample
                self._dirty = True

    def extend(self, samples: Sequence[float]) -> None:
        for sample in samples:
            self.add(sample)

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------
    def _ensure_sorted(self) -> List[float]:
        if self._dirty:
            self._sorted = sorted(self._samples)
            self._dirty = False
        return self._sorted

    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, p: float) -> float:
        """Linear-interpolated percentile, ``p`` in [0, 100]."""
        if not 0 <= p <= 100:
            raise ValueError(f"percentile must be in [0, 100], got {p}")
        data = self._ensure_sorted()
        if not data:
            return 0.0
        if len(data) == 1:
            return data[0]
        rank = (p / 100.0) * (len(data) - 1)
        lo = int(rank)
        hi = min(lo + 1, len(data) - 1)
        frac = rank - lo
        return data[lo] * (1 - frac) + data[hi] * frac

    def median(self) -> float:
        return self.percentile(50)

    def cdf(self, points: int = 100) -> List[Tuple[float, float]]:
        """(latency, cumulative fraction) pairs for CDF plots/tables."""
        data = self._ensure_sorted()
        if not data:
            return []
        out = []
        for i in range(1, points + 1):
            frac = i / points
            idx = min(int(frac * len(data)) - 1, len(data) - 1)
            idx = max(idx, 0)
            out.append((data[idx], frac))
        return out

    def summary(self) -> dict:
        """The per-figure latency row: count/mean/percentiles, in ms."""
        to_ms = 1000.0
        return {
            "count": self.count,
            "mean_ms": self.mean() * to_ms,
            "p50_ms": self.percentile(50) * to_ms,
            "p95_ms": self.percentile(95) * to_ms,
            "p99_ms": self.percentile(99) * to_ms,
            "max_ms": (self.max if self.count else 0.0) * to_ms,
        }
