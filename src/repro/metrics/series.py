"""Time-bucketed event series — throughput timelines.

The fault-tolerance experiment (E9) reports throughput *over time*
around a failure; :class:`ThroughputTimeline` buckets operation
completions into fixed windows so the dip and recovery are visible as a
series.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Tuple

__all__ = ["ThroughputTimeline"]


class ThroughputTimeline:
    """Counts events per fixed-width time bucket."""

    def __init__(self, bucket_width: float = 0.1):
        if bucket_width <= 0:
            raise ValueError(f"bucket_width must be positive, got {bucket_width}")
        self.bucket_width = bucket_width
        self._counts: Dict[int, int] = defaultdict(int)

    def record(self, time: float, n: int = 1) -> None:
        self._counts[int(time / self.bucket_width)] += n

    def total(self) -> int:
        return sum(self._counts.values())

    def series(self) -> List[Tuple[float, float]]:
        """(bucket start time, ops/sec) pairs, gaps filled with zeros."""
        if not self._counts:
            return []
        first = min(self._counts)
        last = max(self._counts)
        return [
            (b * self.bucket_width, self._counts.get(b, 0) / self.bucket_width)
            for b in range(first, last + 1)
        ]

    def rate_between(self, start: float, end: float) -> float:
        """Average ops/sec over [start, end)."""
        if end <= start:
            raise ValueError(f"need start < end, got [{start}, {end})")
        total = sum(
            n
            for bucket, n in self._counts.items()
            if start <= bucket * self.bucket_width < end
        )
        return total / (end - start)

    def min_rate(self) -> float:
        """Lowest bucket rate — the depth of a failure dip."""
        series = self.series()
        return min(rate for _t, rate in series) if series else 0.0
