"""Measurement utilities: latency reservoirs, throughput timelines, rendering."""

from repro.metrics.memory import TracedPeak, census_totals, memory_census, traced_call
from repro.metrics.protocol import (
    batching_stats,
    coalescer_stats,
    link_floor_profile,
    metadata_footprint,
)
from repro.metrics.reservoir import LatencyReservoir
from repro.metrics.series import ThroughputTimeline
from repro.metrics.summary import format_number, render_series, render_table

__all__ = [
    "LatencyReservoir",
    "ThroughputTimeline",
    "render_table",
    "render_series",
    "format_number",
    "batching_stats",
    "coalescer_stats",
    "link_floor_profile",
    "metadata_footprint",
    "TracedPeak",
    "traced_call",
    "memory_census",
    "census_totals",
]
