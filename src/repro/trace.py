"""Structured protocol tracing (Dapper-lite).

Debugging a distributed protocol means reconstructing *which replica did
what, when, and why*. A :class:`Tracer` collects structured events from
every actor in a deployment into one bounded, time-ordered buffer that
can be filtered by key, node, or category and rendered as a readable
timeline.

Tracing is opt-in and zero-cost when off: actors call
:meth:`~repro.net.actor.Actor.trace`, which is a no-op until a tracer is
attached (``ChainReactionStore(..., tracer=Tracer(sim))`` or
``store.attach_tracer()``).

Example::

    store = ChainReactionStore(config)
    tracer = store.attach_tracer()
    ... run a workload ...
    print(tracer.format(key="user001"))   # the life of one key
"""

from __future__ import annotations

import dataclasses
from collections import Counter, deque
from typing import Any, Deque, Dict, Iterable, List, Optional

from repro.sim.kernel import Simulator

__all__ = ["TraceEvent", "Tracer"]


@dataclasses.dataclass(frozen=True)
class TraceEvent:
    """One protocol event."""

    t: float
    actor: str
    category: str
    event: str
    key: str = ""
    fields: tuple = ()

    def format(self) -> str:
        details = " ".join(f"{name}={value}" for name, value in self.fields)
        key_part = f" key={self.key}" if self.key else ""
        return (
            f"{self.t*1000:10.3f}ms  {self.actor:14s} "
            f"[{self.category}] {self.event}{key_part} {details}".rstrip()
        )


class Tracer:
    """Bounded collector of :class:`TraceEvent` from a whole deployment."""

    def __init__(self, sim: Simulator, capacity: int = 100_000):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self._events: Deque[TraceEvent] = deque(maxlen=capacity)
        self.dropped = 0
        self._capacity = capacity

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def record(
        self,
        actor: str,
        category: str,
        event: str,
        key: str = "",
        **fields: Any,
    ) -> None:
        if len(self._events) == self._capacity:
            self.dropped += 1
        self._events.append(
            TraceEvent(
                t=self.sim.now,
                actor=actor,
                category=category,
                event=event,
                key=key,
                fields=tuple(sorted(fields.items())),
            )
        )

    # ------------------------------------------------------------------
    # querying
    # ------------------------------------------------------------------
    def events(
        self,
        key: Optional[str] = None,
        category: Optional[str] = None,
        actor: Optional[str] = None,
        since: float = 0.0,
    ) -> List[TraceEvent]:
        """Events matching every given filter, in time order."""
        return [
            ev
            for ev in self._events
            if ev.t >= since
            and (key is None or ev.key == key)
            and (category is None or ev.category == category)
            and (actor is None or ev.actor == actor)
        ]

    def __len__(self) -> int:
        return len(self._events)

    def counts(self) -> Dict[str, int]:
        """Event counts per (category, event) — a protocol activity summary."""
        return dict(Counter(f"{ev.category}:{ev.event}" for ev in self._events))

    def format(
        self,
        key: Optional[str] = None,
        category: Optional[str] = None,
        actor: Optional[str] = None,
        last: Optional[int] = None,
    ) -> str:
        """Readable timeline of the matching events."""
        matching = self.events(key=key, category=category, actor=actor)
        if last is not None:
            matching = matching[-last:]
        return "\n".join(ev.format() for ev in matching)

    def clear(self) -> None:
        self._events.clear()
        self.dropped = 0
