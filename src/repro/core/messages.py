"""Wire messages of the ChainReaction protocol.

Three planes:

- **client plane** — ``PutRequest`` travels from a client session to a
  chain head; ``PutReply`` returns *directly* from whichever chain
  position acknowledges (the k-th server), saving the back-hop that a
  conventional RPC would pay. Reads use the actor RPC layer (single
  round-trip to one chosen server) and so have no message types here.
- **chain plane** — ``ChainPut`` carries a write down the chain;
  ``ChainStable`` carries the tail's stability notification back up.
- **geo plane** — ``RemoteUpdate`` ships a DC-stable write to the other
  datacenters; ``GlobalAck`` flows back to the origin so it can declare
  the write globally stable.

With ``config.protocol_batching`` the metadata plane coalesces:
``BulkStable`` replaces per-write ``ChainStable`` hops,
``RemoteUpdateBatch`` carries a flush window's worth of ``RemoteUpdate``
payloads to one peer DC, and ``GlobalStableBatch`` replaces the
``GlobalStableNotice`` fan-out. Batches hold (key, version) entries or
whole updates in buffering order; receivers process them left to right,
so per-link FIFO semantics carry over unchanged.

``DepEntry`` is the unit of the client library's causality metadata:
the version of an object the session observed and the deepest chain
position known to hold it.

With ``config.stability == "clock"`` the notice cascade above is
replaced by the **clock plane**: writes carry an ``hlc`` stamp (the
field defaults to the zero-size :data:`repro.sim.hlc.NO_HLC` sentinel,
so the notices plane's wire bytes are untouched), tails report
per-write ``TailApplied`` retirements to their head, servers report
low-stamp floors via ``ClockReport``, the site agent broadcasts one
``StabilityVector`` per interval per peer, ships DC-stable writes in
``ClockShip`` batches, and drives local visibility with ``ClockTick``.
"""

from __future__ import annotations

import dataclasses
from typing import Any, ClassVar, Dict, Optional, Tuple

from repro.net.message import Message
from repro.net.network import Address
from repro.sim.hlc import NO_HLC, HLCStamp
from repro.storage.version import VersionVector

__all__ = [
    "DepEntry",
    "Deps",
    "deps_size_bytes",
    "PutRequest",
    "PutReply",
    "ChainPut",
    "ChainStable",
    "BulkStable",
    "TailStable",
    "RemoteUpdate",
    "RemoteUpdateBatch",
    "GlobalAck",
    "GlobalStableNotice",
    "GlobalStableBatch",
    "StateTransfer",
    "TransferDone",
    "TailApplied",
    "ClockReport",
    "ClockTick",
    "StabilityVector",
    "ClockShip",
]

#: (key, version) pairs as carried by the coalesced stability messages.
StableEntries = Tuple[Tuple[str, VersionVector], ...]


class DepEntry:
    """One tracked causal dependency: (version seen, chain index holding it).

    Hand-rolled slotted class (py3.9-safe): sessions hold one per
    tracked key and every ``PutRequest`` snapshot references them, so
    the dataclass ``__dict__`` was pure overhead at scale. Value
    semantics (eq/hash by fields) match the old frozen dataclass.
    """

    __slots__ = ("version", "index", "hlc")

    def __init__(
        self,
        version: VersionVector,
        index: int,
        hlc: Optional[HLCStamp] = None,
    ) -> None:
        self.version = version
        self.index = index
        #: the write's HLC stamp when the clock plane is on, else None
        self.hlc = hlc

    def size_bytes(self) -> int:
        size = self.version.size_bytes() + 4
        if self.hlc is not None:
            size += self.hlc.size_bytes()
        return size

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DepEntry):
            return NotImplemented
        return (
            self.version == other.version
            and self.index == other.index
            and self.hlc == other.hlc
        )

    def __hash__(self) -> int:
        return hash((self.version, self.index, self.hlc))

    def __repr__(self) -> str:
        return (
            f"DepEntry(version={self.version!r}, index={self.index!r}"
            + (f", hlc={self.hlc!r})" if self.hlc is not None else ")")
        )


#: Any mapping of key → DepEntry. ``PutRequest.deps`` carries either a
#: plain dict or a frozen :class:`repro.storage.deptable.DepSnapshot`;
#: both satisfy the Mapping protocol and size identically on the wire.
Deps = Dict[str, DepEntry]


def deps_size_bytes(deps: "Deps") -> int:
    """Wire size of a dependency map as carried on a PutRequest.

    Duck-typed over ``items()`` so dep-table snapshots account
    byte-identically to the dicts they replaced.
    """
    return 4 + sum(4 + len(k) + d.size_bytes() for k, d in deps.items())


@dataclasses.dataclass(frozen=True)
class PutRequest(Message):
    """Client → chain head. Carries the session's unstable dependencies."""

    type_name: ClassVar[str] = "put-request"
    memoize_size: ClassVar[bool] = True
    request_id: int = 0
    key: str = ""
    value: Any = None
    deps: Deps = dataclasses.field(default_factory=dict)
    reply_to: Optional[Address] = None
    is_delete: bool = False


@dataclasses.dataclass(frozen=True)
class PutReply(Message):
    """k-th chain server → client, acknowledging the write."""

    type_name: ClassVar[str] = "put-reply"
    request_id: int = 0
    key: str = ""
    version: VersionVector = dataclasses.field(default_factory=VersionVector)
    index: int = 0
    chain_len: int = 1
    ok: bool = True
    error: str = ""
    #: HLC stamp of the write (clock plane); NO_HLC costs zero bytes
    hlc: Any = NO_HLC


@dataclasses.dataclass(frozen=True)
class ChainPut(Message):
    """Propagation of a write down the chain (head → ... → tail)."""

    type_name: ClassVar[str] = "chain-put"
    memoize_size: ClassVar[bool] = True
    key: str = ""
    value: Any = None
    version: VersionVector = dataclasses.field(default_factory=VersionVector)
    origin_site: str = ""
    deps: Deps = dataclasses.field(default_factory=dict)
    #: chain position the message is being delivered to (head sends 1, ...)
    position: int = 0
    #: acknowledge the client once the server at ``ack_index`` applies
    ack_index: int = -1
    request_id: int = 0
    reply_to: Optional[Address] = None
    #: virtual time the originating client issued the put (geo metrics)
    origin_put_at: float = 0.0
    #: HLC stamp minted by the head (clock plane); NO_HLC costs zero bytes
    hlc: Any = NO_HLC


@dataclasses.dataclass(frozen=True)
class ChainStable(Message):
    """Tail → ... → head: this version is now DC-stable."""

    type_name: ClassVar[str] = "chain-stable"
    key: str = ""
    version: VersionVector = dataclasses.field(default_factory=VersionVector)
    position: int = 0


@dataclasses.dataclass(frozen=True)
class BulkStable(Message):
    """Coalesced ``ChainStable``: one flush window of stability entries.

    Sent tail → upstream (and re-coalesced hop by hop) when
    ``protocol_batching`` is on. Entries appear in buffering order and
    carry the merged stable version per key.
    """

    type_name: ClassVar[str] = "bulk-stable"
    memoize_size: ClassVar[bool] = True
    entries: "StableEntries" = ()


@dataclasses.dataclass(frozen=True)
class TailStable(Message):
    """Chain tail → local geo-proxy: a write just became DC-stable here.

    For locally-originated writes the proxy ships it to the other DCs;
    for remote-originated writes the proxy reports a :class:`GlobalAck`
    back to the origin.
    """

    type_name: ClassVar[str] = "tail-stable"
    memoize_size: ClassVar[bool] = True
    key: str = ""
    value: Any = None
    version: VersionVector = dataclasses.field(default_factory=VersionVector)
    #: arbitration stamp of the surviving write (None = derive from version)
    stamp: Any = None
    deps: Deps = dataclasses.field(default_factory=dict)
    origin_site: str = ""
    origin_put_at: float = 0.0
    #: HLC stamp of the write (clock plane); NO_HLC costs zero bytes
    hlc: Any = NO_HLC


@dataclasses.dataclass(frozen=True)
class RemoteUpdate(Message):
    """Origin geo-proxy → remote geo-proxy: ship a DC-stable write."""

    type_name: ClassVar[str] = "remote-update"
    memoize_size: ClassVar[bool] = True
    key: str = ""
    value: Any = None
    version: VersionVector = dataclasses.field(default_factory=VersionVector)
    #: arbitration stamp of the surviving write (None = derive from version)
    stamp: Any = None
    deps: Deps = dataclasses.field(default_factory=dict)
    origin_site: str = ""
    origin_put_at: float = 0.0
    #: HLC stamp of the write (clock plane); NO_HLC costs zero bytes
    hlc: Any = NO_HLC


@dataclasses.dataclass(frozen=True)
class RemoteUpdateBatch(Message):
    """Coalesced geo shipping: one flush window of ``RemoteUpdate``s for
    one peer DC, applied in order on receipt (``protocol_batching``)."""

    type_name: ClassVar[str] = "remote-update-batch"
    memoize_size: ClassVar[bool] = True
    updates: Tuple[RemoteUpdate, ...] = ()


@dataclasses.dataclass(frozen=True)
class GlobalAck(Message):
    """Remote geo-proxy → origin geo-proxy: the write is DC-stable here."""

    type_name: ClassVar[str] = "global-ack"
    key: str = ""
    version: VersionVector = dataclasses.field(default_factory=VersionVector)
    site: str = ""


@dataclasses.dataclass(frozen=True)
class GlobalStableNotice(Message):
    """Origin geo-proxy → peer proxies → chain members: globally stable.

    A version acknowledged DC-stable by *every* datacenter can be pruned
    from client dependency tables — servers learn it from this notice
    and report it on reads.
    """

    type_name: ClassVar[str] = "global-stable-notice"
    memoize_size: ClassVar[bool] = True
    key: str = ""
    version: VersionVector = dataclasses.field(default_factory=VersionVector)
    #: True on the proxy→proxy hop; the receiving proxy fans out locally.
    fan_out: bool = False


@dataclasses.dataclass(frozen=True)
class GlobalStableBatch(Message):
    """Coalesced ``GlobalStableNotice``: a flush window of globally
    stable (key, version) entries (``protocol_batching``).

    With ``fan_out`` set (the proxy → proxy hop) the receiving proxy
    regroups the entries per local chain member and forwards one batch
    to each; without it the batch is terminal at a storage server.
    """

    type_name: ClassVar[str] = "global-stable-batch"
    memoize_size: ClassVar[bool] = True
    entries: "StableEntries" = ()
    fan_out: bool = False


@dataclasses.dataclass(frozen=True)
class StateTransfer(Message):
    """Chain repair: records (with stability) pushed to a chain member."""

    type_name: ClassVar[str] = "state-transfer"
    memoize_size: ClassVar[bool] = True
    #: (key, value, version, stable_version, stamp) tuples
    records: Tuple = ()
    epoch: int = 0


@dataclasses.dataclass(frozen=True)
class TransferDone(Message):
    """Chain repair: sender finished streaming state for this epoch."""

    type_name: ClassVar[str] = "transfer-done"
    epoch: int = 0
    sender: str = ""


# --------------------------------------------------------------------------
# clock plane (config.stability == "clock")
# --------------------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class TailApplied(Message):
    """Chain tail → chain head: a locally-originated write reached the
    tail, so the head can retire it from its in-flight low-stamp set."""

    type_name: ClassVar[str] = "tail-applied"
    key: str = ""
    hlc: Any = NO_HLC


@dataclasses.dataclass(frozen=True)
class ClockReport(Message):
    """Storage server → site clock agent, once per stability interval:
    the server's low-stamp floor (min in-flight stamp, else its clock).
    No write this server heads will ever be stamped ≤ ``floor``."""

    type_name: ClassVar[str] = "clock-report"
    server: str = ""
    floor: Any = NO_HLC


@dataclasses.dataclass(frozen=True)
class ClockTick(Message):
    """Site clock agent → local servers, once per stability interval.

    ``dc_lst``: every write received by this DC with stamp ≤ dc_lst is
    tail-applied at every local replica (drives dep-waits + stability
    answers).  ``cut``: the global-stabilization cut — min over all DC
    vectors (drives global-stability answers + dep pruning)."""

    type_name: ClassVar[str] = "clock-tick"
    dc_lst: Any = NO_HLC
    cut: Any = NO_HLC


@dataclasses.dataclass(frozen=True)
class StabilityVector(Message):
    """Geo-proxy → peer proxies, once per stability interval.

    ``ship_lst``: this site has shipped every local write stamped ≤
    ship_lst (receivers use it to bound what can still arrive).
    ``visible``: every write *anywhere* stamped ≤ visible is
    tail-applied at this site — the site's contribution to the cut."""

    type_name: ClassVar[str] = "stability-vector"
    site: str = ""
    ship_lst: Any = NO_HLC
    visible: Any = NO_HLC


@dataclasses.dataclass(frozen=True)
class ClockShip(Message):
    """Geo-proxy → peer proxy: stamp-ordered batch of DC-stable local
    writes, plus the origin's ship horizon (``lst``).  Replaces the
    notices plane's per-write ``RemoteUpdate`` fan-out; the per-link
    FIFO guarantees the batch lands before any vector claiming its
    stamps."""

    type_name: ClassVar[str] = "clock-ship"
    memoize_size: ClassVar[bool] = True
    origin_site: str = ""
    lst: Any = NO_HLC
    updates: Tuple[RemoteUpdate, ...] = ()
