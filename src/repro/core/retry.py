"""Client-side retry policy: bounded attempts, deadlines, seeded backoff.

Every client session retries transient failures (timeouts, unreachable
or mid-sync replicas) under one :class:`RetryPolicy`:

- **bounded attempts** — at most ``max_attempts`` tries per operation;
- **a per-operation deadline** — optional wall on total (virtual) time
  an operation may spend across all attempts, so a client stuck behind
  a dead chain gives up predictably instead of burning its whole
  attempt budget at max backoff;
- **exponential backoff with deterministic jitter** — attempt ``i``
  sleeps ``min(max_backoff, base * multiplier**i)``, scaled by a jitter
  factor drawn from the session's *seeded* RNG stream. Same seed ⇒ same
  retry schedule, which is what keeps fault campaigns bit-reproducible
  (see ``python -m repro sanitize`` / ``python -m repro faults``).

The policy is derived from the deployment config
(:meth:`RetryPolicy.from_config`), so the existing ``max_retries`` /
``client_retry_backoff`` / ``op_timeout`` knobs keep their meaning and
the new ``backoff_multiplier`` / ``max_backoff`` / ``backoff_jitter`` /
``op_deadline`` fields refine it.
"""

from __future__ import annotations

import dataclasses
import random
from typing import Any, List

from repro.errors import ConfigError

__all__ = ["RetryPolicy"]


@dataclasses.dataclass(frozen=True)
class RetryPolicy:
    """Retry/backoff parameters for one client session.

    Attributes:
        max_attempts: attempts per operation before it fails.
        base_backoff: sleep before the second attempt (seconds).
        backoff_multiplier: growth factor per attempt (1.0 = constant).
        max_backoff: cap on a single backoff sleep (seconds).
        jitter: symmetric jitter fraction; each sleep is scaled by a
            factor uniform in ``[1 - jitter, 1 + jitter]`` drawn from
            the session's seeded RNG. 0 disables jitter.
        deadline: per-operation budget across all attempts (virtual
            seconds); 0 disables the deadline.
    """

    max_attempts: int = 25
    base_backoff: float = 0.02
    backoff_multiplier: float = 2.0
    max_backoff: float = 0.5
    jitter: float = 0.1
    deadline: float = 0.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigError("max_attempts must be >= 1")
        if self.base_backoff < 0 or self.max_backoff <= 0:
            raise ConfigError("backoff durations must be positive")
        if self.backoff_multiplier < 1.0:
            raise ConfigError("backoff_multiplier must be >= 1.0")
        if not 0.0 <= self.jitter < 1.0:
            raise ConfigError("jitter must be in [0, 1)")
        if self.deadline < 0:
            raise ConfigError("deadline must be >= 0 (0 = disabled)")

    @classmethod
    def from_config(cls, config: Any) -> "RetryPolicy":
        """Build the policy a deployment config implies.

        Reads the shared client knobs present on both
        :class:`~repro.core.config.ChainReactionConfig` and
        :class:`~repro.baselines.common.BaselineConfig`.
        """
        return cls(
            max_attempts=config.max_retries,
            base_backoff=config.client_retry_backoff,
            backoff_multiplier=getattr(config, "backoff_multiplier", 2.0),
            max_backoff=getattr(config, "max_backoff", 0.5),
            jitter=getattr(config, "backoff_jitter", 0.1),
            deadline=getattr(config, "op_deadline", 0.0),
        )

    # ------------------------------------------------------------------
    def backoff(self, attempt: int, rng: random.Random) -> float:
        """Sleep before retrying after failed attempt number ``attempt``.

        Deterministic given the RNG state: the jitter factor is the only
        random input, and it comes from the caller's seeded stream.
        """
        raw = min(self.max_backoff, self.base_backoff * self.backoff_multiplier ** attempt)
        if self.jitter and raw > 0.0:
            raw *= 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
        return raw

    def schedule(self, rng: random.Random, attempts: int = 0) -> List[float]:
        """The full backoff schedule a session would follow (for tests
        and docs); consumes ``attempts`` draws from ``rng``."""
        n = attempts or self.max_attempts - 1
        return [self.backoff(i, rng) for i in range(n)]

    def out_of_time(self, start: float, now: float) -> bool:
        """True once the per-operation deadline (if any) has passed."""
        return bool(self.deadline) and (now - start) >= self.deadline
