"""Deployment facade: build and operate a ChainReaction cluster.

:class:`ChainReactionStore` wires together everything a deployment
needs — one simulator, one network, and per site a cluster manager, the
storage servers, and a geo-proxy — and exposes the protocol-agnostic
:class:`~repro.api.Datastore` surface that workloads, checkers, and
benchmarks run against.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, List, Optional, Sequence

from repro.api import (
    CAP_CLOCK_STABILITY,
    CAP_COMPILED_KERNEL,
    CAP_DEGRADED_READS,
    CAP_DURABLE_STORAGE,
    CAP_SNAPSHOT_READS,
    CAP_STABILITY,
    CAP_TRACING,
    Datastore,
)

if TYPE_CHECKING:
    from repro.trace import Tracer
from repro.cluster.membership import ClusterManager
from repro.core.client import ChainClientSession
from repro.core.clockplane import ClockAgent
from repro.core.config import ChainReactionConfig
from repro.core.geo import GeoProxy
from repro.core.node import ChainNode
from repro.errors import ConfigError
from repro.metrics.protocol import (
    GLOBAL_STABILITY_MESSAGE_TYPES,
    SHIPPING_MESSAGE_TYPES,
    STABILITY_MESSAGE_TYPES,
    batching_stats,
    metadata_footprint,
    placement_stats,
    stability_plane_stats,
)
from repro.net.latency import lan_latency, wan_latency
from repro.net.network import Network
from repro.sim.backend import activate_kernel, new_simulator
from repro.sim.kernel import Simulator
from repro.sim.rng import RngRegistry
from repro.storage.merge import ConflictResolver
from repro.storage.version import VersionVector, intern_str

__all__ = ["ChainReactionStore"]


class ChainReactionStore(Datastore):  # repro: lint-ok(slots) — one per deployment; attach_tracer sets attributes dynamically
    """A running ChainReaction deployment on a discrete-event simulator."""

    name = "chainreaction"

    def __init__(
        self,
        config: Optional[ChainReactionConfig] = None,
        sim: Optional[Simulator] = None,
        network: Optional[Network] = None,
        resolver: Optional[ConflictResolver] = None,
        local_sites: Optional[Sequence[str]] = None,
    ) -> None:
        self.config = config or ChainReactionConfig()
        # A shard of a parallel run builds actors only for the sites it
        # owns; config.sites keeps the full topology so geo-proxies
        # still know their (remote) peers. Default: own everything.
        if local_sites is None:
            self.local_sites = tuple(self.config.sites)
        else:
            unknown = [s for s in local_sites if s not in self.config.sites]
            if unknown:
                raise ConfigError(
                    f"local_sites {unknown} not in topology {self.config.sites}"
                )
            self.local_sites = tuple(local_sites)
        caps = {CAP_SNAPSHOT_READS, CAP_STABILITY, CAP_TRACING}
        if self.config.degraded_reads:
            caps.add(CAP_DEGRADED_READS)
        if self.config.durable_storage:
            caps.add(CAP_DURABLE_STORAGE)
        if self.config.stability == "clock":
            caps.add(CAP_CLOCK_STABILITY)
        # Resolve + activate the kernel backend before any simulator or
        # actor exists; bit-identical semantics, so this is a speed knob
        # (validated at config construction, enforced here).
        if activate_kernel(self.config.kernel) == "compiled":
            caps.add(CAP_COMPILED_KERNEL)
        self.capabilities = frozenset(caps)
        self.sim = sim or new_simulator()
        self.rng = RngRegistry(self.config.seed)
        self.network = network or Network(
            self.sim,
            rng=self.rng,
            lan=lan_latency(self.config.lan_median),
            wan=wan_latency(self.config.wan_median),
        )
        self.managers: Dict[str, ClusterManager] = {}
        self.nodes: Dict[str, List[ChainNode]] = {}
        self.proxies: Dict[str, GeoProxy] = {}
        #: single-site clock-plane agents (geo sites host the role on
        #: their proxy instead)
        self.clock_agents: Dict[str, ClockAgent] = {}
        self._sessions: List[ChainClientSession] = []
        self._session_seq = 0
        self._resolver = resolver

        for site in self.local_sites:
            server_names = [f"s{i}" for i in range(self.config.servers_per_site)]
            manager = ClusterManager(
                self.sim,
                self.network,
                site=site,
                servers=server_names,
                chain_length=self.config.chain_length,
                heartbeat_interval=self.config.heartbeat_interval,
                failure_timeout=self.config.failure_timeout,
                virtual_nodes=self.config.virtual_nodes,
            )
            self.managers[site] = manager
            self.nodes[site] = [
                ChainNode(
                    self.sim,
                    self.network,
                    site=site,
                    name=name,
                    initial_view=manager.view,
                    config=self.config,
                    resolver=resolver,
                )
                for name in server_names
            ]
            if self.config.is_geo:
                proxy = GeoProxy(
                    self.sim,
                    self.network,
                    site=site,
                    all_sites=self.config.sites,
                    initial_view=manager.view,
                    config=self.config,
                )
                manager.add_view_listener(proxy.set_view)
                self.proxies[site] = proxy
            elif self.config.stability == "clock":
                agent = ClockAgent(
                    self.sim,
                    self.network,
                    site=site,
                    initial_view=manager.view,
                    config=self.config,
                )
                manager.add_view_listener(agent.set_view)
                self.clock_agents[site] = agent

    # ------------------------------------------------------------------
    # Datastore surface
    # ------------------------------------------------------------------
    @property
    def sites(self) -> List[str]:
        return list(self.config.sites)

    def session(
        self, site: Optional[str] = None, session_id: Optional[str] = None
    ) -> ChainClientSession:
        site = site or self.config.sites[0]
        if site not in self.managers:
            raise ConfigError(f"unknown site {site!r}; have {self.sites}")
        self._session_seq += 1
        name = session_id or f"client{self._session_seq}"
        session = ChainClientSession(
            self.sim,
            self.network,
            site=site,
            name=name,
            initial_view=self.managers[site].view,
            config=self.config,
            rng=self.rng.stream(f"client:{site}:{name}"),
        )
        session.tracer = getattr(self, "_tracer", None)
        self._sessions.append(session)
        return session

    def servers(self, site: Optional[str] = None) -> List[ChainNode]:
        if site is not None:
            return list(self.nodes[site])
        return [node for nodes in self.nodes.values() for node in nodes]

    def converged(self, key: str) -> bool:
        """True when every replica of ``key``, in every owner DC, holds the
        same (value, version) — including tombstones. Under full
        replication every DC is an owner."""
        placement = self.config.placement()
        observed = set()
        for site, manager in self.managers.items():
            if placement is not None and not placement.owns(site, key):
                continue
            for server_name in manager.view.chain_for(key):
                node = self._node(site, server_name)
                record = node.store.get_record(key)
                if record is None:
                    observed.add((None, VersionVector()))
                else:
                    observed.add((record.value, record.version))
        return len(observed) == 1

    # ------------------------------------------------------------------
    # harness helpers
    # ------------------------------------------------------------------
    def _node(self, site: str, name: str) -> ChainNode:
        for node in self.nodes[site]:
            if node.name == name:
                return node
        raise ConfigError(f"no node {name!r} in {site!r}")

    def preload(self, data: Dict[str, Any]) -> None:
        """Install records on every replica directly (skipping the protocol)
        and mark them DC-stable — the benchmark warm-up path.

        All owner sites receive identical, already-stable state, exactly
        what a long-converged deployment would hold; under partial
        replication non-owner sites hold nothing (the per-DC memory win
        the census in ``bench_pr10_partial`` measures).
        """
        version = VersionVector({"preload": 1})
        placement = self.config.placement()
        # The clock plane needs no tracker writes: a record without an
        # HLC stamp is stable by construction (predates every stamp).
        track = self.config.stability != "clock"
        for key, value in data.items():
            key = intern_str(key)
            for site, manager in self.managers.items():
                if placement is not None and not placement.owns(site, key):
                    continue
                for server_name in manager.view.chain_for(key):
                    node = self._node(site, server_name)
                    node.store.apply(key, value, version, self.sim.now)
                    if track:
                        node.stability.record(key, version)
                        node.global_stability.record(key, version)
                    node._refresh_stable_record(key)

    def attach_tracer(self, capacity: int = 100_000) -> Tracer:
        """Attach a structured-trace collector to every actor in the
        deployment (servers, managers, proxies, and future sessions);
        returns the :class:`~repro.trace.Tracer`."""
        from repro.trace import Tracer

        tracer = Tracer(self.sim, capacity=capacity)
        for node in self.servers():
            node.tracer = tracer
        for manager in self.managers.values():
            manager.tracer = tracer
        for proxy in self.proxies.values():
            proxy.tracer = tracer
        for session in self._sessions:
            session.tracer = tracer
        self._tracer = tracer
        return tracer

    def run(self, until: Optional[float] = None) -> float:
        """Advance the simulation (convenience passthrough)."""
        return self.sim.run(until=until)

    def protocol_stats(self) -> Dict[str, Any]:
        """Aggregated protocol counters across all servers and proxies."""
        nodes = self.servers()
        stats: Dict[str, Any] = {
            "puts_served": sum(n.puts_served for n in nodes),
            "gets_served": sum(n.gets_served for n in nodes),
            "remote_applies": sum(n.remote_applies for n in nodes),
            "dep_waits": sum(n.dep_waits for n in nodes),
            "dep_wait_timeouts": sum(n.dep_wait_timeouts for n in nodes),
            "rejected_ops": sum(n.rejected_ops for n in nodes),
            "conflicts_resolved": sum(n.store.conflicts_resolved for n in nodes),
            "messages_sent": self.network.stats.messages_sent,
            "bytes_sent": self.network.stats.bytes_sent,
            "cross_site_bytes": self.network.stats.cross_site_bytes,
        }
        if self.proxies:
            stats["updates_shipped"] = sum(p.updates_shipped for p in self.proxies.values())
            stats["updates_applied"] = sum(p.updates_applied for p in self.proxies.values())
            stats["visibility_samples"] = [
                s for p in self.proxies.values() for s in p.visibility_samples
            ]
            stats["global_stability_samples"] = [
                s for p in self.proxies.values() for s in p.global_stability_samples
            ]
        net = self.network.stats
        stats["stability_messages"] = net.count_of(*STABILITY_MESSAGE_TYPES)
        stats["global_stability_messages"] = net.count_of(*GLOBAL_STABILITY_MESSAGE_TYPES)
        stats["shipping_messages"] = net.count_of(*SHIPPING_MESSAGE_TYPES)
        stats["metadata"] = metadata_footprint(nodes, self._sessions)
        stats["placement"] = placement_stats(self)
        stats["stability_plane"] = stability_plane_stats(self)
        if self.config.protocol_batching:
            stats["batching"] = batching_stats(nodes, self.proxies.values())
        return stats
