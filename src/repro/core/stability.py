"""DC-stability bookkeeping.

A version is **DC-stable** once the chain tail has applied it: every
chain position then holds it, so it can be read from any replica and can
safely anchor causal dependencies. Each server tracks, per key, the
highest stable version it has learnt of (stability notifications flow
tail → head), and parks *waiters* — futures belonging to puts or remote
updates whose dependencies have not stabilised yet.

The stable version per key only ever grows (vector merge), so waiters
resolve exactly once and in stability order.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.sim.kernel import Simulator
from repro.sim.process import Future
from repro.storage.version import VersionVector

__all__ = ["StabilityTracker"]


class StabilityTracker:
    """Per-server map of key → highest DC-stable version, with waiters."""

    def __init__(self) -> None:
        self._stable: Dict[str, VersionVector] = {}
        self._waiters: Dict[str, List[Tuple[VersionVector, Future]]] = {}
        self.notifications = 0

    def stable_version(self, key: str) -> VersionVector:
        return self._stable.get(key, VersionVector())

    def is_stable(self, key: str, version: VersionVector) -> bool:
        return self.stable_version(key).dominates(version)

    def record(self, key: str, version: VersionVector) -> None:
        """Note that ``version`` of ``key`` is DC-stable; wake waiters."""
        merged = self.stable_version(key).merge(version)
        self._stable[key] = merged
        self.notifications += 1
        waiters = self._waiters.get(key)
        if not waiters:
            return
        still_waiting = []
        for wanted, fut in waiters:
            if merged.dominates(wanted):
                fut.try_set_result(True)
            else:
                still_waiting.append((wanted, fut))
        if still_waiting:
            self._waiters[key] = still_waiting
        else:
            del self._waiters[key]

    def wait(self, sim: Simulator, key: str, version: VersionVector) -> Future:
        """A future resolving (to True) once ``version`` is DC-stable."""
        fut = Future(sim)
        if self.is_stable(key, version):
            fut.set_result(True)
        else:
            self._waiters.setdefault(key, []).append((version, fut))
        return fut

    def pending_waiters(self) -> int:
        return sum(len(ws) for ws in self._waiters.values())

    def snapshot(self) -> Dict[str, VersionVector]:
        """Copy of the stable map — used for chain-repair state transfer."""
        return dict(self._stable)
