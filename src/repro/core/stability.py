"""DC-stability bookkeeping.

A version is **DC-stable** once the chain tail has applied it: every
chain position then holds it, so it can be read from any replica and can
safely anchor causal dependencies. Each server tracks, per key, the
highest stable version it has learnt of (stability notifications flow
tail → head), and parks *waiters* — futures belonging to puts or remote
updates whose dependencies have not stabilised yet.

The stable version per key only ever grows (vector merge), so waiters
resolve exactly once and in stability order.

Metadata GC (``config.metadata_gc``) adds *sealing*: a key whose newest
record is fully stable needs no tracker entry — the record the server
already stores (its ``_stable_records`` slot) answers every stability
query exactly. The owning server installs that lookup as the tracker's
**floor** (:meth:`set_floor`) and then drops sealed entries
(:meth:`drop_entry`); ``stable_version`` falls through to the floor for
keys with no live entry, and a later ``record`` re-creates the entry
merged with the floor. The floor must only ever report versions that
are genuinely stable — sealing is a representation change, not a
semantic one.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.sim.kernel import Simulator
from repro.sim.process import Future
from repro.storage.version import VersionVector

__all__ = ["StabilityTracker"]

_ZERO = VersionVector()


class StabilityTracker:  # repro: lint-ok(slots) — invariant monitor rebinds .record per instance
    """Per-server map of key → highest DC-stable version, with waiters.

    Entry payloads are interned :class:`VersionVector` instances, so a
    tracker over a million keys stores a million dict slots pointing at
    a handful of shared vectors — the per-entry cost is the dict slot.
    """

    def __init__(self) -> None:
        self._stable: Dict[str, VersionVector] = {}
        self._waiters: Dict[str, List[Tuple[VersionVector, Future]]] = {}
        #: O(1) mirror of the parked-future count (kept in record/wait)
        self._waiter_count = 0
        #: stable floor for keys without a live entry (sealing; see above)
        self._floor: Optional[Callable[[str], VersionVector]] = None
        self.notifications = 0
        self.entries_sealed = 0

    def set_floor(self, floor: Callable[[str], VersionVector]) -> None:
        """Install the sealed-key fallback used by :meth:`stable_version`."""
        self._floor = floor

    def stable_version(self, key: str) -> VersionVector:
        version = self._stable.get(key)
        if version is not None:
            return version
        if self._floor is not None:
            return self._floor(key)
        return _ZERO

    def is_stable(self, key: str, version: VersionVector) -> bool:
        return self.stable_version(key).dominates(version)

    def record(self, key: str, version: VersionVector) -> None:
        """Note that ``version`` of ``key`` is DC-stable; wake waiters."""
        merged = self.stable_version(key).merge(version)
        self._stable[key] = merged
        self.notifications += 1
        waiters = self._waiters.get(key)
        if not waiters:
            return
        still_waiting = []
        for wanted, fut in waiters:
            if merged.dominates(wanted):
                fut.try_set_result(True)
                self._waiter_count -= 1
            else:
                still_waiting.append((wanted, fut))
        if still_waiting:
            self._waiters[key] = still_waiting
        else:
            del self._waiters[key]

    def wait(self, sim: Simulator, key: str, version: VersionVector) -> Future:
        """A future resolving (to True) once ``version`` is DC-stable."""
        fut = Future(sim)
        if self.is_stable(key, version):
            fut.set_result(True)
        else:
            self._waiters.setdefault(key, []).append((version, fut))
            self._waiter_count += 1
        return fut

    def pending_waiters(self) -> int:
        return self._waiter_count

    def has_waiters(self, key: str) -> bool:
        return key in self._waiters

    # ------------------------------------------------------------------
    # sealing (metadata GC)
    # ------------------------------------------------------------------
    def drop_entry(self, key: str) -> bool:
        """Seal ``key``: forget its live entry, relying on the floor.

        The caller must have verified that the floor dominates the
        entry being dropped (otherwise ``stable_version`` would move
        backwards) and that the key has no parked waiters.
        """
        if key in self._waiters or key not in self._stable:
            return False
        del self._stable[key]
        self.entries_sealed += 1
        return True

    def tracked_keys(self) -> List[str]:
        """Keys with a live entry, in insertion order (GC scan input)."""
        return list(self._stable)

    def entry_count(self) -> int:
        return len(self._stable)

    def raw_entry(self, key: str) -> Optional[VersionVector]:
        """The live entry itself, None when sealed/unknown (GC predicate)."""
        return self._stable.get(key)

    def snapshot(self) -> Dict[str, VersionVector]:
        """Copy of the stable map — used for chain-repair state transfer."""
        return dict(self._stable)
