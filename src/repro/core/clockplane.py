"""The clock stability plane: HLC stamps + periodic stability vectors.

``ChainReactionConfig.stability == "clock"`` replaces every per-write
stability notification with clock arithmetic (the Okapi / deferred-
update-stabilization design from the related work):

- The chain **head** stamps each locally admitted put with a
  :class:`~repro.sim.hlc.HybridClock` value and keeps the stamp in an
  in-flight set until the **tail** reports back one tiny
  ``TailApplied`` (the only remaining per-write control message, and it
  is chain-local).
- Every server reports a **low-stamp floor** to its site's clock agent
  once per ``stability_interval``: no write it heads will ever be
  stamped at or below the floor.  ``min`` over the floors is the site's
  *local stability timestamp* (LST): every local write stamped ≤ LST is
  tail-applied in this DC.
- The **geo-proxy** hosts the agent in multi-site deployments.  It
  ships DC-stable local writes in stamp-ordered ``ClockShip`` batches
  bounded by the LST, and broadcasts one ``StabilityVector`` per peer
  per interval carrying ``(ship_lst, visible)``.  ``visible`` is the
  site's applied horizon: ``min(local LST, just-below the oldest
  received-but-not-yet-applied remote update, min over peers'
  ship_lst)`` — the last term covers writes that exist remotely but
  have not arrived here.  Because the ship batch is flushed before the
  vector on the same FIFO link, a peer that trusts a vector has already
  received every update the vector covers.
- The **global-stabilization cut** is ``min`` over every site's
  ``visible``.  A write is globally stable — prunable from dependency
  tables — exactly when the cut passes its stamp.  ``ClockTick``
  messages push ``(visible, cut)`` to the local servers, waking parked
  dependency waits and answering read-stability queries; no tracker
  entries, cascades, acks or notices exist on this plane.

Remote updates are injected strictly in stamp order once the site's
``visible`` horizon passes their dependencies' stamps (dependencies
always carry smaller stamps than their dependents, so ordered injection
cannot deadlock).  Liveness under crashes is timeout-based: in-flight
head entries and pending-injection entries are dropped after
``2 * sync_timeout`` (chain repair re-stabilises stranded writes), and
floors from servers silent for ``2 * failure_timeout`` are ignored.
"""

from __future__ import annotations

import dataclasses
from collections import deque
from heapq import heappop, heappush
from typing import TYPE_CHECKING, Any, Deque, Dict, Iterator, List, Optional, Set, Tuple

from repro.cluster.membership import RingView
from repro.core.config import ChainReactionConfig
from repro.core.messages import (
    ClockReport,
    ClockShip,
    ClockTick,
    Deps,
    PutRequest,
    RemoteUpdate,
    StabilityVector,
    TailApplied,
    TailStable,
)
from repro.core.stability_plane import StabilityPlane
from repro.errors import RequestTimeout
from repro.net.actor import Actor
from repro.net.network import Address, Network
from repro.sim.hlc import HLC_ZERO, NO_HLC, HLCStamp, HybridClock, just_below
from repro.sim.kernel import Simulator
from repro.sim.process import Future, spawn, with_timeout
from repro.storage.version import VersionVector

if TYPE_CHECKING:
    from repro.core.geo import GeoProxy
    from repro.core.node import ChainNode

__all__ = ["ClockNodePlane", "ClockAgent", "GeoClockCore", "FloorTable"]

_GEOPROXY = "geoproxy"
_CLOCKAGENT = "clockagent"

#: stamp key tuple — unique total order (see repro.sim.hlc)
_Key = Tuple[int, int, str]


class FloorTable:
    """Per-site table of server low-stamp floors.

    ``local_lst`` is ``min`` over the *current view's* servers; a server
    that has never reported pins the LST at zero (conservative), and one
    silent past ``stale_after`` is presumed crashed and skipped (chain
    repair re-homes its writes).
    """

    __slots__ = ("_floors", "stale_after")

    def __init__(self, stale_after: float) -> None:
        self._floors: Dict[str, Tuple[HLCStamp, float]] = {}
        self.stale_after = stale_after

    def update(self, server: str, floor: HLCStamp, now: float) -> None:
        cur = self._floors.get(server)
        if cur is None or floor > cur[0]:
            self._floors[server] = (floor, now)
        else:
            self._floors[server] = (cur[0], now)

    def local_lst(self, servers: Tuple[str, ...], now: float) -> HLCStamp:
        lst: Optional[HLCStamp] = None
        for server in servers:
            got = self._floors.get(server)
            if got is None:
                return HLC_ZERO
            floor, heard = got
            if now - heard > self.stale_after:
                continue
            if lst is None or floor < lst:
                lst = floor
        return lst if lst is not None else HLC_ZERO


class ClockNodePlane(StabilityPlane):
    """Node-side clock plane: stamping, floors, parked waits, answers."""

    __slots__ = (
        "clock",
        "lst",
        "cut",
        "_inflight",
        "_inflight_heap",
        "_waiters",
        "_wait_seq",
        "_apply_waiters",
        "_hlc_of",
        "_deps_fifo",
        "_interval",
        "_agent",
        "_inflight_timeout",
        "_prune_deps",
    )

    name = "clock"

    def __init__(self, node: "ChainNode") -> None:
        super().__init__(node)
        config = node.config
        self.clock = HybridClock(node.sim, f"{node.site}:{node.name}")
        #: the site's applied horizon (from ClockTick); monotone
        self.lst = HLC_ZERO
        #: the global-stabilization cut (from ClockTick); monotone
        self.cut = HLC_ZERO
        #: stamp-key → (stamp, key, minted_at): local puts this head
        #: stamped whose TailApplied has not come back yet
        self._inflight: Dict[_Key, Tuple[HLCStamp, str, float]] = {}
        self._inflight_heap: List[_Key] = []
        #: parked dependency waits: (stamp-key, seq, future)
        self._waiters: List[Tuple[_Key, int, Future]] = []
        self._wait_seq = 0
        #: wait_stable callers parked until the version arrives here
        self._apply_waiters: Dict[str, List[Tuple[VersionVector, Future]]] = {}
        #: newest applied stamp per key — the record-stability answer
        self._hlc_of: Dict[str, HLCStamp] = {}
        #: (stamp, key) in apply order, pruned as the cut passes —
        #: bounds ``_record_deps`` like metadata_gc sealing does
        self._deps_fifo: Deque[Tuple[HLCStamp, str]] = deque()
        self._interval = config.stability_interval
        self._agent = Address(
            node.site, _GEOPROXY if config.is_geo else _CLOCKAGENT
        )
        self._inflight_timeout = 2.0 * config.sync_timeout
        # Dropping a globally-stable record's dependency list leans on
        # the causal-delivery gate (same argument as sealing, DESIGN
        # §7.8) — disabled under the E10 ablation.
        self._prune_deps = (not config.is_geo) or config.geo_causal_delivery
        node.set_timer(self._interval, self._report_tick)

    # -- dependency waits ----------------------------------------------
    def unresolved_deps(self, msg: PutRequest) -> List[Tuple[str, Any]]:
        lst = self.lst
        node = self.node
        placement = node.placement
        return [
            (dep_key, entry)
            for dep_key, entry in msg.deps.items()
            # Same-key deps are ordered by the chain itself; deps with
            # no stamp predate the clock plane and cannot be waited on.
            # Non-owned shards (partial replication) are skipped for the
            # same reason as on the notices plane: not locally checkable,
            # covered by primary-owner forwarding plus ``fwd_deps``.
            if dep_key != msg.key
            and entry.hlc is not None
            and entry.hlc > lst
            and (placement is None or placement.owns(node.site, dep_key))
        ]

    def spawn_dep_wait(self, dep_key: str, entry: Any) -> Future:
        # Same RPC loop as the notices plane: ask the dependency's tail.
        # The tail answers from clock state (apply == DC-stable at the
        # tail) instead of the stability tracker, so the wait resolves a
        # LAN hop after the chain commits — not a vector interval later.
        node = self.node
        return spawn(
            node.sim, node._wait_dep(dep_key, entry.version), name=f"dep:{dep_key}"
        )

    def wait_stable(self, key: str, version: VersionVector) -> Future:
        node = self.node
        fut = Future(node.sim)
        record = node.store.get_record(key)
        if record is not None and record.version.dominates(version):
            ts = self._hlc_of.get(key)
            if ts is None or ts <= self.lst or self._is_tail(key):
                fut.try_set_result(True)
            else:
                self._park(ts, fut)
            return fut
        # Not applied here yet: note_applied re-evaluates on arrival.
        self._apply_waiters.setdefault(key, []).append((version, fut))
        return fut

    def _is_tail(self, key: str) -> bool:
        return self.node.chain_for(key)[-1] == self.node.name

    def _park(self, ts: HLCStamp, fut: Future) -> None:
        self._wait_seq += 1
        heappush(self._waiters, (ts.key(), self._wait_seq, fut))

    # -- write metadata ------------------------------------------------
    def stamp_put(self, msg: PutRequest) -> Any:
        clock = self.clock
        for entry in msg.deps.values():
            if entry.hlc is not None:
                clock.observe(entry.hlc)
        ts = clock.stamp()
        self._inflight[ts.key()] = (ts, msg.key, self.node.sim.now)
        heappush(self._inflight_heap, ts.key())
        return ts

    def observe(self, hlc: Any) -> None:
        self.clock.observe(hlc)

    def note_applied(self, key: str, hlc: Any) -> None:
        if isinstance(hlc, HLCStamp):
            self.clock.observe(hlc)
            cur = self._hlc_of.get(key)
            if cur is None or hlc > cur:
                self._hlc_of[key] = hlc
                if self._prune_deps:
                    self._deps_fifo.append((hlc, key))
        if self._apply_waiters:
            self._wake_apply_waiters(key)

    def _wake_apply_waiters(self, key: str) -> None:
        waiters = self._apply_waiters.pop(key, None)
        if not waiters:
            return
        record = self.node.store.get_record(key)
        applied = record.version if record is not None else None
        still: List[Tuple[VersionVector, Future]] = []
        for version, fut in waiters:
            if applied is not None and applied.dominates(version):
                ts = self._hlc_of.get(key)
                if ts is None or ts <= self.lst or self._is_tail(key):
                    fut.try_set_result(True)
                else:
                    self._park(ts, fut)
            else:
                still.append((version, fut))
        if still:
            self._apply_waiters[key] = still

    def retire(self, ts: HLCStamp) -> None:
        # Unknown stamps are ignored: repair can route a TailApplied to
        # a head that never stamped the write (or already timed it out).
        self._inflight.pop(ts.key(), None)

    # -- visibility questions ------------------------------------------
    def record_is_stable(self, key: str, version: VersionVector) -> bool:
        ts = self._hlc_of.get(key)
        if ts is None:
            # No clock-stamped write ever landed here: preloaded or
            # repair-transferred legacy state, stable by construction.
            return True
        if ts <= self.lst:
            return True
        # The tail applying a write *is* DC-stability on this plane.
        # (chain_for, not is_tail: the latter raises for keys whose
        # chain a view change moved away while the record lingers here.)
        return self.node.chain_for(key)[-1] == self.node.name

    def record_is_global(
        self, key: str, version: VersionVector, dc_stable: bool
    ) -> bool:
        ts = self._hlc_of.get(key)
        if ts is None:
            return True
        return ts <= self.cut

    def annotate_read(self, reply: dict, key: str) -> None:
        # Clients thread the stamp into their dependency metadata so a
        # dependent put can name the exact stamp to wait on.
        reply["hlc"] = self._hlc_of.get(key)

    # -- tail completion -----------------------------------------------
    def tail_stabilise(
        self,
        key: str,
        value: Any,
        version: VersionVector,
        deps: Deps,
        origin_site: str,
        origin_put_at: float,
        chain: List[str],
        stamp: Any,
        hlc: Any,
    ) -> None:
        node = self.node
        node._refresh_stable_record(key)
        node.trace("stability", "dc-stable", key, version=str(version))
        ts = hlc if isinstance(hlc, HLCStamp) else None
        if ts is not None:
            self.clock.observe(ts)
            if origin_site == node.site:
                if chain[0] == node.name:
                    self.retire(ts)
                else:
                    node.send(
                        node.view.address_of(chain[0]),
                        TailApplied(key=key, hlc=ts),
                    )
        if node.config.is_geo:
            node.send(
                Address(node.site, _GEOPROXY),
                TailStable(
                    key=key,
                    value=value,
                    version=version,
                    stamp=stamp,
                    deps=deps,
                    origin_site=origin_site,
                    origin_put_at=origin_put_at,
                    hlc=ts if ts is not None else NO_HLC,
                ),
            )

    # -- chain repair --------------------------------------------------
    def needs_restabilise(self, key: str, version: VersionVector) -> bool:
        ts = self._hlc_of.get(key)
        return ts is not None and ts > self.cut

    def transfer_record(self, record: Any, stable_version: VersionVector) -> Tuple:
        ts = self._hlc_of.get(record.key)
        return (
            record.key,
            record.value,
            record.version,
            stable_version,
            record.stamp,
            ts if ts is not None else NO_HLC,
        )

    def transfer_hlc(self, key: str) -> Any:
        ts = self._hlc_of.get(key)
        return ts if ts is not None else NO_HLC

    # -- control loop --------------------------------------------------
    def on_clock_tick(self, msg: ClockTick) -> None:
        if isinstance(msg.dc_lst, HLCStamp) and msg.dc_lst > self.lst:
            self.lst = msg.dc_lst
        if isinstance(msg.cut, HLCStamp) and msg.cut > self.cut:
            self.cut = msg.cut
        lst_key = self.lst.key()
        waiters = self._waiters
        while waiters and waiters[0][0] <= lst_key:
            _, _, fut = heappop(waiters)
            fut.try_set_result(True)
        if self._prune_deps:
            fifo = self._deps_fifo
            cut = self.cut
            record_deps = self.node._record_deps
            while fifo and fifo[0][0] <= cut:
                ts, key = fifo.popleft()
                # Only prune if no newer write superseded this one —
                # the newer write's own fifo entry covers the key.
                if self._hlc_of.get(key) == ts:
                    record_deps.pop(key, None)
                    # A stamp at or below the cut is globally stable:
                    # stamp-less records answer "stable" everywhere, so
                    # the per-key map stays bounded by in-flight writes.
                    del self._hlc_of[key]

    def on_tail_applied(self, msg: TailApplied) -> None:
        if isinstance(msg.hlc, HLCStamp):
            self.clock.observe(msg.hlc)
            self.retire(msg.hlc)

    def _floor(self) -> HLCStamp:
        heap = self._inflight_heap
        inflight = self._inflight
        while heap and heap[0] not in inflight:
            heappop(heap)
        if heap:
            return just_below(inflight[heap[0]][0])
        return self.clock.peek()

    def _report_tick(self) -> None:
        node = self.node
        now = node.sim.now
        if self._inflight:
            # A crashed tail (or a deposed head) can orphan an entry;
            # repair re-stabilises the write, so drop it after the
            # repair window rather than pinning the floor forever.
            cutoff = now - self._inflight_timeout
            stale = [k for k, rec in self._inflight.items() if rec[2] < cutoff]
            for k in stale:
                del self._inflight[k]
        node.send(self._agent, ClockReport(server=node.name, floor=self._floor()))
        node.set_timer(self._interval, self._report_tick)

    def on_recover(self) -> None:
        # The crash cancelled the report timer; floors resume from the
        # retained clock state (monotone, so peers saw nothing newer).
        self.node.set_timer(self._interval, self._report_tick)

    def hlc_entry_count(self) -> int:
        return len(self._hlc_of)

    def max_skew(self) -> int:
        return self.clock.max_skew

    def pending_dep_entries(self) -> int:
        return len(self._deps_fifo)


class ClockAgent(Actor):  # repro: lint-ok(slots) — unslotted Actor base keeps the __dict__; one instance per site
    """Single-site clock agent: aggregates floors, drives ClockTicks.

    In geo deployments the :class:`~repro.core.geo.GeoProxy` hosts this
    role instead (via :class:`GeoClockCore`) so floor aggregation and
    WAN shipping share one actor without extra LAN chatter.
    """

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        site: str,
        initial_view: RingView,
        config: ChainReactionConfig,
    ) -> None:
        super().__init__(sim, network, Address(site, _CLOCKAGENT))
        self.site = site
        self.config = config
        self.view = initial_view
        self._floors = FloorTable(2.0 * config.failure_timeout)
        self._lst = HLC_ZERO
        self.ticks_sent = 0
        self.set_timer(config.stability_interval, self._tick)

    def set_view(self, view: RingView) -> None:
        if view.epoch > self.view.epoch:
            self.view = view

    def on_clock_report(self, msg: ClockReport, src: Address) -> None:
        if isinstance(msg.floor, HLCStamp):
            self._floors.update(msg.server, msg.floor, self.sim.now)

    @property
    def lst(self) -> HLCStamp:
        return self._lst

    @property
    def cut(self) -> HLCStamp:
        # One site: local stability is global stability.
        return self._lst

    def cut_lag(self) -> float:
        """Seconds between now and the cut's physical component."""
        return max(0.0, self.sim.now - self._lst.physical / 1_000_000)

    def _tick(self) -> None:
        lst = self._floors.local_lst(self.view.servers, self.sim.now)
        if lst > self._lst:
            self._lst = lst
        tick = ClockTick(dc_lst=self._lst, cut=self._lst)
        for server in self.view.servers:
            self.send(self.view.address_of(server), tick)
            self.ticks_sent += 1
            # Per-server copies share one frozen instance; the network
            # sizes it once per send (fixed-width fields, cheap).
            tick = ClockTick(dc_lst=self._lst, cut=self._lst)
        self.set_timer(self.config.stability_interval, self._tick)

    def on_recover(self) -> None:
        self.set_timer(self.config.stability_interval, self._tick)
        super().on_recover()


class GeoClockCore:
    """Clock-plane brain hosted by each site's :class:`GeoProxy`.

    Owns floor aggregation, the stamp-ordered ship buffer, the pending
    (received-but-not-applied) set, peer horizons, the cut, and the
    strictly stamp-ordered remote-injection queue.  The proxy delegates
    all clock-plane message handling here.
    """

    __slots__ = (
        "proxy",
        "interval",
        "_floors",
        "dc_ship",
        "dc_visible",
        "cut",
        "node_lst",
        "_ship_buf",
        "_ship_seq",
        "_shipped",
        "_pending_in",
        "_inject_heap",
        "_global_fifo",
        "_pending_timeout",
        "vectors_sent",
        "ships_sent",
        "ticks_sent",
    )

    def __init__(self, proxy: "GeoProxy") -> None:
        self.proxy = proxy
        config = proxy.config
        self.interval = config.stability_interval
        self._floors = FloorTable(2.0 * config.failure_timeout)
        #: per-peer ship horizon: everything a peer stamped ≤ this has arrived
        self.dc_ship: Dict[str, HLCStamp] = {p.site: HLC_ZERO for p in proxy._peers}
        #: per-peer visible horizon (their StabilityVector.visible)
        self.dc_visible: Dict[str, HLCStamp] = {
            p.site: HLC_ZERO for p in proxy._peers
        }
        #: the global-stabilization cut (monotone)
        self.cut = HLC_ZERO
        #: last visible horizon pushed to local servers (monotone)
        self.node_lst = HLC_ZERO
        #: DC-stable local writes not yet covered by the ship horizon
        self._ship_buf: List[Tuple[_Key, RemoteUpdate]] = []
        self._ship_seq = 0
        #: duplicate-ship suppression (repair re-announcements)
        self._shipped: Set[_Key] = set()
        #: stamp-key → (stamp, received_at): remote updates received but
        #: not yet tail-applied locally — they cap ``visible``
        self._pending_in: Dict[_Key, Tuple[HLCStamp, float]] = {}
        #: received remote updates awaiting the admission gate
        self._inject_heap: List[Tuple[_Key, RemoteUpdate]] = []
        #: (stamp, origin_put_at) of shipped local writes, stamp order —
        #: drained as the cut passes for global-stability latency samples
        self._global_fifo: Deque[Tuple[HLCStamp, float]] = deque()
        self._pending_timeout = 2.0 * config.sync_timeout
        self.vectors_sent = 0
        self.ships_sent = 0
        self.ticks_sent = 0
        proxy.set_timer(self.interval, self._tick)

    # -- inbound control -----------------------------------------------
    def on_clock_report(self, msg: ClockReport) -> None:
        if isinstance(msg.floor, HLCStamp):
            self._floors.update(msg.server, msg.floor, self.proxy.sim.now)

    def on_stability_vector(self, msg: StabilityVector) -> None:
        if isinstance(msg.ship_lst, HLCStamp):
            cur = self.dc_ship.get(msg.site, HLC_ZERO)
            if msg.ship_lst > cur:
                self.dc_ship[msg.site] = msg.ship_lst
        if isinstance(msg.visible, HLCStamp):
            cur = self.dc_visible.get(msg.site, HLC_ZERO)
            if msg.visible > cur:
                self.dc_visible[msg.site] = msg.visible
        self._reeval_injections()

    def on_clock_ship(self, msg: ClockShip) -> None:
        now = self.proxy.sim.now
        if isinstance(msg.lst, HLCStamp):
            cur = self.dc_ship.get(msg.origin_site, HLC_ZERO)
            if msg.lst > cur:
                self.dc_ship[msg.origin_site] = msg.lst
        for update in msg.updates:
            ts = update.hlc
            if not isinstance(ts, HLCStamp):
                continue
            key = ts.key()
            self._pending_in[key] = (ts, now)
            heappush(self._inject_heap, (key, update))
        self._reeval_injections()

    def on_tail_stable(self, msg: TailStable) -> None:
        proxy = self.proxy
        ts = msg.hlc if isinstance(msg.hlc, HLCStamp) else None
        if msg.origin_site != proxy.site:
            # A remote update finished the local chain: it no longer
            # caps our visible horizon (no GlobalAck on this plane —
            # the cut replaces the ack round).
            if ts is not None:
                self._pending_in.pop(ts.key(), None)
            self._reeval_injections()
            return
        if ts is None:
            return
        key = ts.key()
        if key in self._shipped:
            # Repair re-stabilisation can re-announce a version.
            proxy.duplicate_ships += 1
            return
        self._shipped.add(key)
        proxy.trace("geo", "ship", msg.key, version=str(msg.version))
        update = RemoteUpdate(
            key=msg.key,
            value=msg.value,
            version=msg.version,
            stamp=msg.stamp,
            deps=msg.deps,
            origin_site=proxy.site,
            origin_put_at=msg.origin_put_at,
            hlc=ts,
        )
        heappush(self._ship_buf, (key, update))
        self._global_fifo.append((ts, msg.origin_put_at))

    # -- horizons ------------------------------------------------------
    def _local_lst(self, now: float) -> HLCStamp:
        return self._floors.local_lst(self.proxy.view.servers, now)

    def _visible(self, now: float) -> HLCStamp:
        """Every write *anywhere* stamped ≤ visible is tail-applied here.

        Three caps: local floors (local writes), the oldest pending
        remote injection (received, mid-chain), and the peers' ship
        horizons (writes that have not even arrived yet).
        """
        visible = self._local_lst(now)
        if self._pending_in:
            oldest: Optional[HLCStamp] = None
            for ts, _at in self._pending_in.values():
                if oldest is None or ts < oldest:
                    oldest = ts
            assert oldest is not None
            below = just_below(oldest)
            if below < visible:
                visible = below
        for horizon in self.dc_ship.values():
            if horizon < visible:
                visible = horizon
        return visible

    # -- remote injection ----------------------------------------------
    def _max_dep_ts(self, update: RemoteUpdate) -> Optional[HLCStamp]:
        worst: Optional[HLCStamp] = None
        catalog = self.proxy._catalog
        site = self.proxy.site
        for dep_key, entry in update.deps.items():
            # Same-key order is enforced by stamp-ordered issuance plus
            # the proxy's per-key gate chain. Non-owned shards (partial
            # replication) never arrive here and are not waited on —
            # ships are pruned at the origin, but hand-built updates may
            # still carry such entries.
            if dep_key == update.key or entry.hlc is None:
                continue
            if catalog is not None and not catalog.owns(site, dep_key):
                continue
            if worst is None or entry.hlc > worst:
                worst = entry.hlc
        return worst

    def _admissible(self, update: RemoteUpdate, visible: HLCStamp) -> bool:
        dep_ts = self._max_dep_ts(update)
        if dep_ts is None:
            return True
        if "stale_stability_vector" in self.proxy.config.mutations:
            # MUTATION (proving ground): trust the origin's stability
            # vector over local application state. The origin's ship
            # horizon proves the dependency was stable *at the origin*
            # and has *arrived* here — not that it has finished
            # propagating down the local chain. A dependent write can
            # then become readable at its tail while its dependency is
            # still mid-chain: a causal-cut violation.
            return dep_ts <= self.dc_ship.get(update.origin_site, HLC_ZERO)
        return dep_ts <= visible

    def _reeval_injections(self) -> None:
        if not self._inject_heap:
            return
        proxy = self.proxy
        visible = self._visible(proxy.sim.now)
        heap = self._inject_heap
        while heap:
            _key, update = heap[0]
            if not self._admissible(update, visible):
                # Strict stamp order: dependencies always carry smaller
                # stamps than dependents, so the blocked minimum cannot
                # be waiting on anything queued behind it.
                break
            heappop(heap)
            proxy._inject_clock(update)

    # -- the per-interval control tick ---------------------------------
    def _tick(self) -> None:
        proxy = self.proxy
        now = proxy.sim.now
        local = self._local_lst(now)
        if self._pending_in:
            # An injection orphaned by a crash would cap visible forever;
            # repair re-stabilises the write, so lazily drop it after
            # the repair window.
            cutoff = now - self._pending_timeout
            stale = [k for k, rec in self._pending_in.items() if rec[1] < cutoff]
            for k in stale:
                del self._pending_in[k]
        # 1. Ship everything at or below the local LST, stamp-ordered,
        #    one batch per peer — then the vector on the same FIFO link.
        local_key = local.key()
        batch: List[RemoteUpdate] = []
        while self._ship_buf and self._ship_buf[0][0] <= local_key:
            batch.append(heappop(self._ship_buf)[1])
        if batch and proxy._peers:
            catalog = proxy._catalog
            if catalog is None:
                updates = tuple(batch)
                first: Optional[ClockShip] = None
                for peer in proxy._peers:
                    ship = ClockShip(origin_site=proxy.site, lst=local, updates=updates)
                    if first is None:
                        first = ship
                    else:
                        ship.copy_size_from(first)
                    proxy.send(peer, ship)
                    self.ships_sent += 1
            else:
                # Partial replication: each peer receives only the batch
                # entries for shards it owns, with per-destination dep
                # pruning. An empty share sends nothing — the stability
                # vector broadcast below advances the peer's ship
                # horizon to ``local`` on the same FIFO link, so its
                # visible arithmetic never waits on unsent updates.
                for peer in proxy._peers:
                    share: List[RemoteUpdate] = []
                    for update in batch:
                        if not catalog.owns(peer.site, update.key):
                            continue
                        deps = proxy._prune_deps(update.deps, peer.site)
                        if deps is not update.deps:
                            update = dataclasses.replace(update, deps=deps)
                        share.append(update)
                    if not share:
                        continue
                    proxy.send(
                        peer,
                        ClockShip(
                            origin_site=proxy.site, lst=local, updates=tuple(share)
                        ),
                    )
                    self.ships_sent += 1
            proxy.updates_shipped += len(batch)
        visible = self._visible(now)
        # 2. Broadcast the site's stability vector.
        for peer in proxy._peers:
            proxy.send(
                peer,
                StabilityVector(site=proxy.site, ship_lst=local, visible=visible),
            )
            self.vectors_sent += 1
        # 3. Advance the cut: min over every site's visible horizon.
        cut = visible
        for horizon in self.dc_visible.values():
            if horizon < cut:
                cut = horizon
        if cut > self.cut:
            self.cut = cut
        if visible > self.node_lst:
            self.node_lst = visible
        # 4. Drive the local servers.
        for server in proxy.view.servers:
            proxy.send(
                proxy.view.address_of(server),
                ClockTick(dc_lst=self.node_lst, cut=self.cut),
            )
            self.ticks_sent += 1
        # 5. Global-stability latency samples: the cut passed these writes.
        fifo = self._global_fifo
        while fifo and fifo[0][0] <= self.cut:
            _ts, origin_put_at = fifo.popleft()
            proxy.global_stability_samples.append(now - origin_put_at)
        # 6. Globally stable writes need no duplicate-ship suppression
        #    any more (a post-repair re-announcement re-ships, and the
        #    receiver's store drops the dominated duplicate) — pruning
        #    keeps the set sized to in-flight writes, not history.
        if self._shipped:
            cut_key = self.cut.key()
            dead = [k for k in sorted(self._shipped) if k <= cut_key]
            for k in dead:
                self._shipped.discard(k)
        self._reeval_injections()
        proxy.set_timer(self.interval, self._tick)

    def cut_lag(self) -> float:
        """Seconds between now and the cut's physical component."""
        return max(0.0, self.proxy.sim.now - self.cut.physical / 1_000_000)

    def on_recover(self) -> None:
        self.proxy.set_timer(self.interval, self._tick)
