"""Columnar client dependency table with copy-on-write snapshots.

The client session used to keep ``key → DepEntry`` in a plain dict and
copy the whole dict at the start of every put. At million-key scale
that costs one boxed ``DepEntry`` (+ its dict slot) per tracked key and
one full dict copy per write. This module stores the same mapping as
three parallel columns — keys, versions, chain indices — with a
``key → column slot`` index on the side:

- reads pull scalars straight out of the columns
  (:meth:`DepTable.version_for` / :meth:`DepTable.index_for`), no entry
  object materialised;
- a put takes a :class:`DepSnapshot` — an immutable view over the live
  column lists. The table marks itself *shared* and copies its columns
  only if a later mutation would overwrite a cell the snapshot can see
  (appends are invisible to the snapshot, which is bounded by its
  creation-time length, so the common observe-after-put path never
  copies);
- wire-size accounting (:meth:`DepSnapshot.size_bytes`) reproduces
  :func:`repro.core.messages.deps_size_bytes` over the columns
  byte-for-byte, so ``PutRequest`` sizing is identical to the dict days.

Mutation semantics mirror a dict exactly (update-in-place keeps a key's
iteration position, delete + re-add moves it to the end), so trace
output and ``_record_deps`` merges on the server are order-identical.

``LegacyDepTable`` is the pre-change representation, kept for the
baseline arm of ``python -m repro perf --scale``; swap it in with
:func:`set_dep_table_factory`.
"""

from __future__ import annotations

from typing import (
    Any,
    Callable,
    Dict,
    ItemsView,
    Iterator,
    KeysView,
    List,
    Optional,
    Tuple,
    ValuesView,
)

from repro.core.messages import DepEntry, deps_size_bytes
from repro.sim.hlc import HLCStamp
from repro.storage.version import VersionVector

__all__ = [
    "DepTable",
    "DepSnapshot",
    "LegacyDepTable",
    "make_dep_table",
    "set_dep_table_factory",
]

#: Compact the columns once holes outnumber live entries past this size.
_COMPACT_MIN = 32


class DepTable:
    """Flat column-store of the session's causal dependencies."""

    __slots__ = (
        "_keys", "_versions", "_indices", "_hlcs", "_slots", "_live", "_shared"
    )

    def __init__(self) -> None:
        self._keys: List[Optional[str]] = []
        self._versions: List[VersionVector] = []
        self._indices: List[int] = []
        #: HLC stamp column (clock plane); None cells cost zero wire bytes
        self._hlcs: List[Optional[HLCStamp]] = []
        self._slots: Dict[str, int] = {}
        self._live = 0
        self._shared = False

    # ------------------------------------------------------------------
    # scalar reads (no entry objects)
    # ------------------------------------------------------------------
    def version_for(self, key: str) -> Optional[VersionVector]:
        slot = self._slots.get(key)
        return self._versions[slot] if slot is not None else None

    def index_for(self, key: str) -> Optional[int]:
        slot = self._slots.get(key)
        return self._indices[slot] if slot is not None else None

    def __contains__(self, key: str) -> bool:
        return key in self._slots

    def __len__(self) -> int:
        return self._live

    # ------------------------------------------------------------------
    # dict-compatible entry API (tests / invariant monitor)
    # ------------------------------------------------------------------
    def get(self, key: str, default: Optional[DepEntry] = None) -> Optional[DepEntry]:
        slot = self._slots.get(key)
        if slot is None:
            return default
        return DepEntry(self._versions[slot], self._indices[slot], self._hlcs[slot])

    def __getitem__(self, key: str) -> DepEntry:
        slot = self._slots.get(key)
        if slot is None:
            raise KeyError(key)
        return DepEntry(self._versions[slot], self._indices[slot], self._hlcs[slot])

    def __setitem__(self, key: str, entry: DepEntry) -> None:
        self.set(key, entry.version, entry.index, entry.hlc)

    def set(
        self,
        key: str,
        version: VersionVector,
        index: int,
        hlc: Optional[HLCStamp] = None,
    ) -> None:
        """Insert or update without boxing a :class:`DepEntry`."""
        slot = self._slots.get(key)
        if slot is not None:
            if self._shared:
                self._unshare()
            self._versions[slot] = version
            self._indices[slot] = index
            self._hlcs[slot] = hlc
            return
        # Appends never touch cells an outstanding snapshot can see.
        self._slots[key] = len(self._keys)
        self._keys.append(key)
        self._versions.append(version)
        self._indices.append(index)
        self._hlcs.append(hlc)
        self._live += 1

    def pop(self, key: str, default: Any = None) -> Any:
        slot = self._slots.pop(key, None)
        if slot is None:
            return default
        if self._shared:
            self._unshare()
        entry = DepEntry(self._versions[slot], self._indices[slot], self._hlcs[slot])
        self._keys[slot] = None  # hole; skipped on iteration
        self._live -= 1
        holes = len(self._keys) - self._live
        if holes > self._live and len(self._keys) >= _COMPACT_MIN:
            self._compact()
        return entry

    def clear(self) -> None:
        # Fresh columns: an outstanding snapshot keeps the old ones.
        self._keys = []
        self._versions = []
        self._indices = []
        self._hlcs = []
        self._slots.clear()
        self._live = 0
        self._shared = False

    def __iter__(self) -> Iterator[str]:
        return (k for k in self._keys if k is not None)

    def keys(self) -> Iterator[str]:
        return iter(self)

    def items(self) -> Iterator[Tuple[str, DepEntry]]:
        for slot, key in enumerate(self._keys):
            if key is not None:
                yield key, DepEntry(
                    self._versions[slot], self._indices[slot], self._hlcs[slot]
                )

    def as_dict(self) -> Dict[str, DepEntry]:
        """Materialised copy — test/introspection surface only."""
        return dict(self.items())

    # ------------------------------------------------------------------
    # snapshots & sizing
    # ------------------------------------------------------------------
    def snapshot(self) -> "DepSnapshot":
        """Immutable view of the current entries (rides on a put)."""
        if len(self._keys) != self._live:
            self._compact()
        self._shared = True
        return DepSnapshot(
            self._keys, self._versions, self._indices, self._hlcs, self._live
        )

    def size_bytes(self) -> int:
        """Wire size, identical to ``deps_size_bytes`` over a dict."""
        total = 4
        versions = self._versions
        hlcs = self._hlcs
        for slot, key in enumerate(self._keys):
            if key is not None:
                total += 8 + len(key) + versions[slot].size_bytes()
                stamp = hlcs[slot]
                if stamp is not None:
                    total += stamp.size_bytes()
        return total

    def column_slots(self) -> int:
        """Allocated column cells including holes (census gauge)."""
        return len(self._keys)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _unshare(self) -> None:
        self._keys = list(self._keys)
        self._versions = list(self._versions)
        self._indices = list(self._indices)
        self._hlcs = list(self._hlcs)
        self._shared = False

    def _compact(self) -> None:
        keys: List[Optional[str]] = []
        versions: List[VersionVector] = []
        indices: List[int] = []
        hlcs: List[Optional[HLCStamp]] = []
        slots: Dict[str, int] = {}
        for slot, key in enumerate(self._keys):
            if key is not None:
                slots[key] = len(keys)
                keys.append(key)
                versions.append(self._versions[slot])
                indices.append(self._indices[slot])
                hlcs.append(self._hlcs[slot])
        self._keys = keys
        self._versions = versions
        self._indices = indices
        self._hlcs = hlcs
        self._slots = slots
        self._shared = False


class DepSnapshot:
    """Frozen Mapping-compatible view over a table's columns.

    Bounded by the column length at creation time, so appends to the
    live table stay invisible; any in-place mutation copies the columns
    first (see :meth:`DepTable.set` / :meth:`DepTable.pop`). Protocol
    access (``dict()``, ``items()``) materialises one cached dict of
    :class:`DepEntry` lazily — sizing never materialises anything.
    """

    __slots__ = ("_keys", "_versions", "_indices", "_hlcs", "_count", "_dict")

    def __init__(
        self,
        keys: List[Optional[str]],
        versions: List[VersionVector],
        indices: List[int],
        hlcs: List[Optional[HLCStamp]],
        count: int,
    ) -> None:
        self._keys = keys
        self._versions = versions
        self._indices = indices
        self._hlcs = hlcs
        self._count = count
        self._dict: Optional[Dict[str, DepEntry]] = None

    def _materialize(self) -> Dict[str, DepEntry]:
        mapping = self._dict
        if mapping is None:
            mapping = {}
            for slot in range(self._count):
                key = self._keys[slot]
                if key is not None:
                    mapping[key] = DepEntry(
                        self._versions[slot], self._indices[slot], self._hlcs[slot]
                    )
            self._dict = mapping
        return mapping

    def __len__(self) -> int:
        return self._count

    def __iter__(self) -> Iterator[str]:
        return iter(self._materialize())

    def __contains__(self, key: object) -> bool:
        return key in self._materialize()

    def __getitem__(self, key: str) -> DepEntry:
        return self._materialize()[key]

    def get(self, key: str, default: Optional[DepEntry] = None) -> Optional[DepEntry]:
        return self._materialize().get(key, default)

    def keys(self) -> "KeysView[str]":
        return self._materialize().keys()

    def values(self) -> "ValuesView[DepEntry]":
        return self._materialize().values()

    def items(self) -> "ItemsView[str, DepEntry]":
        return self._materialize().items()

    def __eq__(self, other: object) -> bool:
        if isinstance(other, DepSnapshot):
            return self._materialize() == other._materialize()
        if isinstance(other, dict):
            return self._materialize() == other
        return NotImplemented

    def size_bytes(self) -> int:
        """Wire size — must match ``deps_size_bytes`` of the dict form."""
        total = 4
        versions = self._versions
        hlcs = self._hlcs
        for slot in range(self._count):
            key = self._keys[slot]
            if key is not None:
                total += 8 + len(key) + versions[slot].size_bytes()
                stamp = hlcs[slot]
                if stamp is not None:
                    total += stamp.size_bytes()
        return total

    def __repr__(self) -> str:
        return f"DepSnapshot({self._materialize()!r})"


class LegacyDepTable(dict):
    """The pre-columnar representation: a dict of boxed ``DepEntry``.

    Kept as the baseline arm of the scale benchmark so the memory
    comparison runs both layouts through identical protocol code. The
    accessor surface matches :class:`DepTable`.
    """

    def version_for(self, key: str) -> Optional[VersionVector]:
        entry = self.get(key)
        return entry.version if entry is not None else None

    def index_for(self, key: str) -> Optional[int]:
        entry = self.get(key)
        return entry.index if entry is not None else None

    def set(
        self,
        key: str,
        version: VersionVector,
        index: int,
        hlc: Optional[HLCStamp] = None,
    ) -> None:
        self[key] = DepEntry(version, index, hlc)

    def snapshot(self) -> Dict[str, DepEntry]:
        return dict(self)

    def as_dict(self) -> Dict[str, DepEntry]:
        return dict(self)

    def size_bytes(self) -> int:
        return deps_size_bytes(self)

    def column_slots(self) -> int:
        return len(self)


_dep_table_factory: Callable[[], Any] = DepTable


def make_dep_table() -> Any:
    """Build a session dependency table via the active factory."""
    return _dep_table_factory()


def set_dep_table_factory(factory: Callable[[], Any]) -> Callable[[], Any]:
    """Swap the table implementation (scale-bench hook); returns the old one."""
    global _dep_table_factory
    previous = _dep_table_factory
    _dep_table_factory = factory
    return previous
