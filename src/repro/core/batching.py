"""Metadata-plane coalescing: per-destination buffers with flush timers.

The batching layer (``config.protocol_batching``) routes three message
streams through coalescers instead of the wire:

- stability notifications (tail → upstream ``BulkStable`` hops),
- global-stability fan-out (``GlobalStableBatch``),
- geo shipping (``RemoteUpdateBatch`` per peer DC).

A coalescer keeps one buffer per destination address. The first entry
buffered arms a single simulator timer ``flush_interval`` out; when it
fires, every destination's buffer is flushed as one message. A buffer
that reaches ``max_entries`` first is flushed eagerly on its own, so a
hot destination cannot grow an unbounded batch while waiting for the
window to close.

Everything is deterministic: buffers are plain dicts (insertion
ordered), flushes walk them in that order, and the only clock involved
is the simulator's. Crash recovery must call :meth:`Coalescer.reset` —
the actor's crash cancelled the armed timer, and the buffered entries
belong to the pre-crash lifetime.

Counters on each coalescer feed the ``protocol_stats()`` /
``repro perf --protocol`` report: ``entries_enqueued`` is what the
unbatched protocol would have sent as individual messages,
``batches_flushed`` is what actually hit the wire, and the difference
is the message count the batching layer saved.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional, Tuple

from repro.net.network import Address
from repro.sim.kernel import ScheduledEvent
from repro.storage.version import VersionVector

__all__ = ["Coalescer", "StabilityCoalescer", "UpdateCoalescer"]


class Coalescer:
    """Base: per-destination buffers, one shared flush timer, counters."""

    __slots__ = (
        "actor",
        "flush_interval",
        "max_entries",
        "_pending",
        "_timer",
        "entries_enqueued",
        "batches_flushed",
        "eager_flushes",
    )

    def __init__(self, actor: Any, flush_interval: float, max_entries: int) -> None:
        #: the owning actor supplies timers and sends the flushed batches
        self.actor = actor
        self.flush_interval = flush_interval
        self.max_entries = max_entries
        self._pending: Dict[Address, Any] = {}
        self._timer: Optional[ScheduledEvent] = None
        self.entries_enqueued = 0
        self.batches_flushed = 0
        self.eager_flushes = 0

    # ------------------------------------------------------------------
    # flush machinery
    # ------------------------------------------------------------------
    def _arm(self) -> None:
        if self._timer is None:
            self._timer = self.actor.set_timer(self.flush_interval, self._on_timer)

    def _on_timer(self) -> None:
        self._timer = None
        self.flush_all()

    def flush_all(self) -> None:
        """Flush every destination's buffer, in buffering order."""
        if not self._pending:
            return
        pending, self._pending = self._pending, {}
        for dst, bucket in pending.items():
            self.batches_flushed += 1
            self._emit(dst, bucket)

    def _flush_destination(self, dst: Address) -> None:
        bucket = self._pending.pop(dst, None)
        if bucket is not None:
            self.batches_flushed += 1
            self.eager_flushes += 1
            self._emit(dst, bucket)

    def _emit(self, dst: Address, bucket: Any) -> None:
        raise NotImplementedError

    # ------------------------------------------------------------------
    # lifecycle / introspection
    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Crash recovery: drop buffers; the armed timer died with the actor."""
        self._pending.clear()
        self._timer = None

    def pending_entries(self) -> int:
        return sum(len(bucket) for bucket in self._pending.values())

    def messages_saved(self) -> int:
        """Individual sends the protocol skipped thanks to coalescing."""
        return max(0, self.entries_enqueued - self.batches_flushed)


class StabilityCoalescer(Coalescer):
    """Coalesces (key, version) stability entries per destination.

    Same-key entries for one destination merge (pointwise max), so a
    flush carries each key at most once — the bulk of the ≥5x message
    reduction on write-heavy keys comes from exactly this dedup.
    """

    __slots__ = ("_emit_entries",)

    def __init__(
        self,
        actor: Any,
        flush_interval: float,
        max_entries: int,
        emit: Callable[[Address, Tuple[Tuple[str, VersionVector], ...]], None],
    ) -> None:
        super().__init__(actor, flush_interval, max_entries)
        self._emit_entries = emit

    def add(self, dst: Address, key: str, version: VersionVector) -> None:
        bucket = self._pending.get(dst)
        if bucket is None:
            bucket = self._pending[dst] = {}
        have = bucket.get(key)
        bucket[key] = version if have is None else have.merge(version)
        self.entries_enqueued += 1
        if len(bucket) >= self.max_entries:
            self._flush_destination(dst)
        else:
            self._arm()

    def _emit(self, dst: Address, bucket: Any) -> None:
        self._emit_entries(dst, tuple(bucket.items()))


class UpdateCoalescer(Coalescer):
    """Coalesces whole payload messages per destination, order preserved.

    No dedup: successive same-key updates must all be injected at the
    receiver (in order) for the gate-chain causality argument to hold.
    """

    __slots__ = ("_emit_updates",)

    def __init__(
        self,
        actor: Any,
        flush_interval: float,
        max_entries: int,
        emit: Callable[[Address, Tuple[Any, ...]], None],
    ) -> None:
        super().__init__(actor, flush_interval, max_entries)
        self._emit_updates = emit

    def add(self, dst: Address, update: Any) -> None:
        bucket = self._pending.get(dst)
        if bucket is None:
            bucket = self._pending[dst] = []
        bucket.append(update)
        self.entries_enqueued += 1
        if len(bucket) >= self.max_entries:
            self._flush_destination(dst)
        else:
            self._arm()

    def _emit(self, dst: Address, bucket: Any) -> None:
        self._emit_updates(dst, tuple(bucket))
