"""The ChainReaction client library.

This is where causal+ becomes cheap: instead of shipping dependency
graphs with every operation (COPS-style), the client keeps a small table
of **unstable** versions it has observed — ``key → (version, deepest
chain index known to hold it)`` — and

- routes each read to a chain position guaranteed to hold everything
  the session depends on (any position for keys with no entry, i.e.
  whose observed versions are DC-stable),
- attaches the table to each put so the head can hold the write until
  those versions stabilise,
- **collapses** the table to just the new write after a put succeeds:
  the write transitively covers everything before it.

Entries disappear as soon as a read reports the version stable, so in
steady state the table stays tiny — the effect measured by experiment E8.

Robustness (the E9/fault-campaign story) lives in the retry layer the
session inherits from :class:`~repro.cluster.client_base.RetryingSession`:
bounded attempts under a per-operation deadline, seeded-jitter
exponential backoff, and ring-view re-resolution between attempts. On
top of that this client adds a **degraded read mode**: when the chain
prefix that is guaranteed to hold a session's observed version stays
unreachable, the session probes the remaining replicas and — rather
than raising — returns whatever version they serve, flagged
``GetResult.degraded=True`` (the returned value may predate versions
the session has already seen). Campaign drivers account such reads
separately; disable with ``config.degraded_reads=False``.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Iterator, List, Optional, Tuple

from repro.api import GetResult, PutResult, SnapshotResult
from repro.cluster.client_base import RetryingSession
from repro.core.deptable import make_dep_table
from repro.core.messages import DepEntry, PutReply, PutRequest
from repro.errors import ReproError, RequestTimeout, TransientError
from repro.net.network import Address
from repro.sim.hlc import hlc_or_none
from repro.sim.process import Future, all_of, spawn, with_timeout
from repro.storage.version import intern_str

__all__ = ["ChainClientSession"]


class ChainClientSession(RetryingSession):  # repro: lint-ok(slots) — unslotted Actor base keeps the __dict__; one instance per client
    """One sequential client of a ChainReaction deployment."""

    def __init__(self, *args: Any, **kwargs: Any) -> None:
        super().__init__(*args, **kwargs)
        #: columnar key → (version, chain index) table; see repro.core.deptable
        self._deps = make_dep_table()
        self._pending_puts: Dict[int, Future] = {}
        self._request_seq = 0
        #: shard→owners map under partial replication; None = full
        #: replication, where every key is served by the local site
        self._placement = self.config.placement()
        #: per-attempt deadline for forwarded ops: one WAN round trip on
        #: top of the owner site's own service budget
        self._forward_timeout = (
            self.config.op_timeout + 4 * self.config.wan_median
        )
        # observability: forwarded-operation counters + latency samples
        self.forwarded_gets = 0
        self.forwarded_puts = 0
        self.forward_latency_samples: List[float] = []

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def get(self, key: str) -> Future:
        self._check_open()
        # Interned at every API boundary: records, dep-table columns,
        # and stability entries all end up holding this exact object.
        key = intern_str(key)
        return spawn(self.sim, self._get_gen(key), name=f"get:{key}")

    def put(self, key: str, value: Any) -> Future:
        self._check_open()
        key = intern_str(key)
        return spawn(self.sim, self._put_gen(key, value, False), name=f"put:{key}")

    def delete(self, key: str) -> Future:
        self._check_open()
        key = intern_str(key)
        return spawn(self.sim, self._put_gen(key, None, True), name=f"del:{key}")

    def metadata_bytes(self) -> int:
        return self._deps.size_bytes()

    def metadata_entries(self) -> int:
        return len(self._deps)

    def dependency_table(self) -> Dict[str, DepEntry]:
        """Copy of the session's current causality metadata (for tests/E8)."""
        return self._deps.as_dict()

    def _fail_pending(self, exc: ReproError) -> None:
        pending, self._pending_puts = self._pending_puts, {}
        for fut in pending.values():
            fut.try_set_exception(exc)

    # ------------------------------------------------------------------
    # partial replication: owner routing
    # ------------------------------------------------------------------
    def _forward_owners(self, key: str) -> Optional[Tuple[str, ...]]:
        """Owner sites to forward ``key``'s operations to, or None when
        the local site replicates the shard (including full replication,
        where the catalog itself is None)."""
        if self._placement is None or self._placement.owns(self.site, key):
            return None
        return self._placement.owners_for(key)

    def _merge_forward_deps(self, reply: Dict[str, Any]) -> None:
        """Adopt the dependency list riding on a forwarded read.

        The serving DC admitted the write against *its* stability, not
        ours; each entry becomes a session dependency (at conservative
        chain index 0) so follow-up local reads dominance-check against
        versions that may still be in flight towards this site.
        """
        fwd = reply.get("fwd_deps")
        if not fwd:
            return
        for dep_key, entry in fwd.items():
            have = self._deps.version_for(dep_key)
            if have is None or entry.version.dominates(have):
                self._deps.set(dep_key, entry.version, 0, entry.hlc)

    def _forward_get_gen(self, key: str, owners: Tuple[str, ...]) -> Iterator[Any]:
        """Read a non-locally-owned key via an owner DC's proxy.

        Sticky to the primary owner — the chain every write of the shard
        serialises through, whose head is never behind. After
        ``degraded_read_after`` failed attempts the session rotates
        through backup owners; a backup may trail the primary, so a
        non-dominating answer from one is served flagged degraded (PR 3
        taxonomy) rather than retried forever.
        """
        start = self.sim.now
        for attempt in self._op_attempts(start):
            failover = (
                self.config.degraded_reads
                and attempt >= self.config.degraded_read_after
                and len(owners) > 1
            )
            site = owners[attempt % len(owners)] if failover else owners[0]
            proxy = Address(site, "geoproxy")
            sent_at = self.sim.now
            try:
                reply = yield self.call(
                    proxy, "forward_get", key, timeout=self._forward_timeout
                )
            except TransientError as exc:
                yield from self._backoff_and_refresh(attempt, exc)
                continue
            self.forwarded_gets += 1
            self.forward_latency_samples.append(self.sim.now - sent_at)
            version = reply["version"]
            observed = self._deps.version_for(key)
            if observed is not None and not version.dominates(observed):
                if failover:
                    # Behind what this session already saw and the
                    # primary is unreachable: serve it, flagged. The dep
                    # table is left untouched (degraded reads must not
                    # regress known dependencies).
                    self.degraded_reads += 1
                    return GetResult(
                        key=key,
                        value=reply["value"],
                        version=version,
                        stable=reply["stable"],
                        served_by=f"{site}/geoproxy",
                        degraded=True,
                    )
                yield from self._backoff_and_refresh(attempt)
                continue
            self._merge_forward_deps(reply)
            self._note_observed(key, reply)
            return GetResult(
                key=key,
                value=reply["value"],
                version=version,
                stable=reply["stable"],
                served_by=f"{site}/geoproxy",
            )
        raise self._give_up("get", key)

    def _forward_put_gen(
        self, key: str, value: Any, is_delete: bool, owners: Tuple[str, ...]
    ) -> Iterator[Any]:
        """Write a non-locally-owned key through the primary owner's chain.

        Always the primary — funnelling every writer of a shard through
        one chain is what keeps per-shard writes totally ordered without
        cross-DC conflict resolution on the common path.
        """
        deps = self._deps.snapshot()
        payload = {"key": key, "value": value, "deps": deps, "is_delete": is_delete}
        proxy = Address(owners[0], "geoproxy")
        start = self.sim.now
        for attempt in self._op_attempts(start):
            sent_at = self.sim.now
            try:
                reply = yield self.call(
                    proxy, "forward_put", payload, timeout=self._forward_timeout
                )
            except TransientError as exc:
                yield from self._backoff_and_refresh(attempt, exc)
                continue
            self.forwarded_puts += 1
            self.forward_latency_samples.append(self.sim.now - sent_at)
            if not reply["ok"]:
                yield from self._backoff_and_refresh(attempt)
                continue
            put_reply = PutReply(
                request_id=0,
                key=key,
                version=reply["version"],
                index=reply["index"],
                chain_len=reply["chain_len"],
                hlc=reply["hlc"],
            )
            stable = put_reply.index >= put_reply.chain_len - 1
            self._record_put(key, put_reply, stable)
            return PutResult(
                key=key,
                version=put_reply.version,
                stable=stable,
                acked_by=f"{owners[0]}:{put_reply.index}",
            )
        raise self._give_up("delete" if is_delete else "put", key)

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    def _read_target_index(self, chain_len: int, key: str, force_head: bool) -> int:
        """Pick the chain position to read from.

        With prefix reads enabled, the choice is uniform over the prefix
        known to hold the session's observed version — the whole chain
        when that version is stable. The uniform choice is what spreads
        read load across all R replicas (experiment E1).
        """
        if force_head:
            return 0
        if not self.config.allow_prefix_reads:
            return chain_len - 1
        index = self._deps.index_for(key)
        bound = chain_len - 1 if index is None else min(index, chain_len - 1)
        return self._rng.randint(0, bound)

    def _get_gen(self, key: str) -> Iterator[Any]:
        owners = self._forward_owners(key)
        if owners is not None:
            result = yield from self._forward_get_gen(key, owners)
            return result
        start = self.sim.now
        force_head = False
        for attempt in self._op_attempts(start):
            chain = self.view.chain_for(key)
            # Degraded probe: after the preferred prefix (and the head
            # fallback) kept failing, any replica is fair game — the
            # answer may be stale, and is flagged as such below.
            probe_deep = (
                self.config.degraded_reads
                and attempt >= self.config.degraded_read_after
                and len(chain) > 1
            )
            if probe_deep:
                index = self._rng.randrange(len(chain))
            else:
                index = self._read_target_index(len(chain), key, force_head)
            target = self.view.address_of(chain[index])
            try:
                reply = yield self.call(
                    target, "get", key, timeout=self.config.op_timeout
                )
            except TransientError as exc:
                yield from self._backoff_and_refresh(attempt, exc)
                continue

            version = reply["version"]
            observed = self._deps.version_for(key)
            if observed is not None and not version.dominates(observed):
                if probe_deep:
                    # The replica is behind this session's observed
                    # version and nothing better is reachable: serve it
                    # degraded. The dependency table is left untouched —
                    # a degraded read must not regress what the session
                    # is known to depend on.
                    self.degraded_reads += 1
                    return GetResult(
                        key=key,
                        value=reply["value"],
                        version=version,
                        stable=reply["stable"],
                        served_by=chain[index],
                        degraded=True,
                    )
                # The server lost chain positions in a reconfiguration and
                # does not hold the version this session already observed;
                # fall back to the head, which is never behind.
                force_head = True
                yield from self._backoff_and_refresh(attempt)
                continue

            self._note_observed(key, reply)
            return GetResult(
                key=key,
                value=reply["value"],
                version=version,
                stable=reply["stable"],
                served_by=chain[index],
            )
        raise self._give_up("get", key)

    def _note_observed(self, key: str, reply: Dict[str, Any]) -> None:
        version = reply["version"]
        # Clock plane: carry the write's HLC stamp into the dep table so
        # future puts ship it; None on the notices plane (zero bytes).
        hlc = reply.get("hlc")
        if reply.get("global", reply["stable"]):
            # Globally stable (== DC-stable in a single-DC deployment):
            # every replica everywhere serves it, so it constrains nothing.
            if self.config.collapse_deps_on_put or self.config.metadata_gc:
                # metadata_gc prunes dominated entries even in the
                # accumulate-forever ablation mode: a globally stable
                # version constrains no read and no remote delivery, so
                # keeping it only inflates the table the GC is bounding.
                self._deps.pop(key, None)
            else:
                self._deps.set(key, version, reply["index"], hlc)
            return
        if reply["stable"]:
            # DC-stable but not yet globally: any *local* replica may
            # serve reads, but the entry must survive to ride along on
            # puts — remote DCs still need the dependency.
            index = len(self.view.chain_for(key)) - 1
        else:
            have = self._deps.version_for(key)
            if have is not None and have == version:
                # Same version seen again: keep the deepest known position.
                known = self._deps.index_for(key)
                index = reply["index"] if known is None else max(known, reply["index"])
            else:
                index = reply["index"]
        self._deps.set(key, version, index, hlc)

    # ------------------------------------------------------------------
    # snapshot reads (multi_get)
    # ------------------------------------------------------------------
    def multi_get(self, keys: Iterable[str]) -> Future:
        """Causally consistent snapshot of several keys.

        Built on DC-stability: every key's newest *stable* version is
        fetched, together with the dependency list of the write that
        produced it. Because a stable write's dependencies were stable
        before it became visible, the per-key latest-stable cut is
        causally closed — except for writes that stabilise *between* the
        individual reads. Those are caught by validating each result
        against the dependency floors of the others and re-reading the
        keys that fall short (stability is monotone, so a re-read always
        satisfies the floor); in practice one extra round suffices.
        """
        self._check_open()
        return spawn(self.sim, self._multi_get_gen(list(keys)), name="multi-get")

    def _multi_get_gen(self, keys: List[str]) -> Iterator[Any]:
        results: Dict[str, Dict[str, Any]] = {}
        pending = list(dict.fromkeys(keys))
        rounds = 0
        max_rounds = 8
        while pending and rounds < max_rounds:
            rounds += 1
            reads = [
                spawn(self.sim, self._get_stable_one(key), name=f"snap:{key}")
                for key in pending
            ]
            replies = yield all_of(self.sim, reads)
            results.update(zip(pending, replies))

            # Mutual-consistency floors: every returned write's deps that
            # point at other snapshot keys must be covered by what we
            # return for those keys.
            floors: Dict[str, Any] = {}
            for reply in results.values():
                for dep_key, dep_version in reply["deps"].items():
                    if dep_key in results:
                        current = floors.get(dep_key)
                        floors[dep_key] = (
                            dep_version if current is None else current.merge(dep_version)
                        )
            pending = [
                key
                for key, floor in floors.items()
                if not results[key]["version"].dominates(floor)
            ]
        if pending:
            self.failed_ops += 1
            raise RequestTimeout(
                f"snapshot over {len(keys)} keys did not stabilise in {max_rounds} rounds"
            )
        return SnapshotResult(
            values={key: results[key]["value"] for key in keys},
            versions={key: results[key]["version"] for key in keys},
            rounds=rounds,
        )

    def _get_stable_one(self, key: str) -> Iterator[Any]:
        owners = self._forward_owners(key)
        start = self.sim.now
        for attempt in self._op_attempts(start):
            if owners is not None:
                # Non-owned shard: the primary owner serves the stable
                # record with the producing write's full dependency list
                # (never pruned at the origin), keeping the snapshot's
                # mutual-consistency floors complete.
                target = Address(owners[0], "geoproxy")
                method = "forward_get_stable"
                timeout = self._forward_timeout
            else:
                chain = self.view.chain_for(key)
                # Stable versions live on every replica: load-balance freely.
                target = self.view.address_of(chain[self._rng.randrange(len(chain))])
                method = "get_stable"
                timeout = self.config.op_timeout
            try:
                reply = yield self.call(target, method, key, timeout=timeout)
                if owners is not None:
                    self.forwarded_gets += 1
                return reply
            except TransientError as exc:
                yield from self._backoff_and_refresh(attempt, exc)
        raise self._give_up("get_stable", key)

    # ------------------------------------------------------------------
    # writes
    # ------------------------------------------------------------------
    def _put_gen(self, key: str, value: Any, is_delete: bool) -> Iterator[Any]:
        owners = self._forward_owners(key)
        if owners is not None:
            result = yield from self._forward_put_gen(key, value, is_delete, owners)
            return result
        # The same-key entry rides along too: locally it is subsumed by
        # chain order, but remote DCs need it for *transitive* causality
        # — the new write dominates its predecessor, so without the
        # entry it could become visible remotely before the
        # predecessor's own dependencies have arrived.
        deps = self._deps.snapshot()
        start = self.sim.now
        for attempt in self._op_attempts(start):
            self._request_seq += 1
            request_id = self._request_seq
            fut: Future = Future(self.sim)
            self._pending_puts[request_id] = fut
            head = self.view.address_of(self.view.chain_for(key)[0])
            self.send(
                head,
                PutRequest(
                    request_id=request_id,
                    key=key,
                    value=value,
                    deps=deps,
                    reply_to=self.address,
                    is_delete=is_delete,
                ),
            )
            try:
                reply: PutReply = yield with_timeout(
                    self.sim, fut, self.config.op_timeout, f"put({key!r})"
                )
            except TransientError as exc:
                self._pending_puts.pop(request_id, None)
                yield from self._backoff_and_refresh(attempt, exc)
                continue
            if not reply.ok:
                # syncing / not-head / not-responsible: refresh and retry
                yield from self._backoff_and_refresh(attempt)
                continue

            stable = reply.index >= reply.chain_len - 1
            self._record_put(key, reply, stable)
            return PutResult(
                key=key, version=reply.version, stable=stable, acked_by=str(reply.index)
            )
        raise self._give_up("delete" if is_delete else "put", key)

    def _record_put(self, key: str, reply: PutReply, stable: bool) -> None:
        hlc = hlc_or_none(reply.hlc)
        if self.config.collapse_deps_on_put:
            # The new write causally covers everything this session did
            # before it — the table collapses to a single entry (or none,
            # if k == R made the write immediately stable in a single-DC
            # deployment; geo deployments keep the entry until a read
            # reports it globally stable, because remote DCs still need
            # the dependency).
            self._deps.clear()
            if not stable or self.config.is_geo:
                index = len(self.view.chain_for(key)) - 1 if stable else reply.index
                self._deps.set(key, reply.version, index, hlc)
        else:
            # Ablation mode: accumulate forever (measured in E8).
            self._deps.set(key, reply.version, reply.index, hlc)

    def on_put_reply(self, msg: PutReply, src: Any) -> None:
        fut = self._pending_puts.pop(msg.request_id, None)
        if fut is not None:
            fut.try_set_result(msg)
