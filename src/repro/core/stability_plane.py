"""The ``StabilityPlane`` interface: how causal visibility is decided.

ChainReaction needs three facts per record — *is it DC-stable*, *is it
globally stable*, and *when may a dependent write proceed* — and the
seed implementation answers them with explicit per-write notification
streams (``ChainStable`` cascades, ``RemoteUpdate`` fan-out,
``GlobalStableNotice``).  This module extracts that machinery behind an
interface so a rival metadata plane can answer the same three questions
differently:

- :class:`NoticesPlane` — the paper's plane, byte-identical to the
  pre-interface code (the golden trace pins this).
- :class:`~repro.core.clockplane.ClockNodePlane` — hybrid-logical-clock
  stamps plus a periodic per-DC stability vector; per-write notice
  streams disappear entirely (Okapi-style deferred stabilization).

``ChainReactionConfig.stability`` selects the plane; every
:class:`~repro.core.node.ChainNode` owns one instance (``node.plane``)
and routes each stability decision through it.  The hooks are exactly
the seams where the two planes differ — chain propagation, repair, and
reads themselves are shared.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, List, Tuple

from repro.core.messages import ChainStable, Deps, PutRequest, TailStable
from repro.net.network import Address
from repro.sim.hlc import NO_HLC
from repro.sim.process import Future, spawn
from repro.storage.version import VersionVector

if TYPE_CHECKING:
    from repro.core.node import ChainNode

__all__ = ["StabilityPlane", "NoticesPlane", "make_plane"]

_GEOPROXY = "geoproxy"


class StabilityPlane:
    """Per-node strategy object for one stabilization protocol.

    Hook contract (all called by :class:`~repro.core.node.ChainNode`):

    - ``unresolved_deps(msg)`` / ``spawn_dep_wait(key, entry)`` — which
      of a put's dependencies must be waited on at the head, and how.
    - ``stamp_put(msg)`` — plane metadata minted for a freshly admitted
      local put (an HLC stamp on the clock plane, :data:`NO_HLC` on the
      notices plane).  Called with no intervening yield before the
      write is applied.
    - ``observe(hlc)`` / ``note_applied(key, hlc)`` — clock bookkeeping
      on message receipt and local application (no-ops for notices).
    - ``record_is_stable`` / ``record_is_global`` — the visibility
      questions every read and snapshot path asks.
    - ``tail_stabilise(...)`` — what the chain tail does when a write
      completes its chain: the notices plane starts the notification
      cascade; the clock plane retires the stamp.
    - ``needs_restabilise`` / ``transfer_record`` — chain-repair hooks.
    - ``annotate_read(reply, key)`` — plane-specific read-reply fields.
    - ``hlc_entry_count`` / ``max_skew`` — metrics gauges.
    """

    __slots__ = ("node",)

    name = "abstract"

    def __init__(self, node: "ChainNode") -> None:
        self.node = node

    # -- dependency waits (head role) ----------------------------------
    def unresolved_deps(self, msg: PutRequest) -> List[Tuple[str, Any]]:
        raise NotImplementedError

    def spawn_dep_wait(self, dep_key: str, entry: Any) -> Future:
        raise NotImplementedError

    def wait_stable(self, key: str, version: VersionVector) -> Future:
        """A future resolving once ``version`` of ``key`` is DC-stable
        here — the server side of the ``wait_stable`` RPC."""
        raise NotImplementedError

    # -- write metadata ------------------------------------------------
    def stamp_put(self, msg: PutRequest) -> Any:
        return NO_HLC

    def observe(self, hlc: Any) -> None:
        return None

    def note_applied(self, key: str, hlc: Any) -> None:
        return None

    # -- visibility questions ------------------------------------------
    def record_is_stable(self, key: str, version: VersionVector) -> bool:
        raise NotImplementedError

    def record_is_global(
        self, key: str, version: VersionVector, dc_stable: bool
    ) -> bool:
        raise NotImplementedError

    # -- tail completion -----------------------------------------------
    def tail_stabilise(
        self,
        key: str,
        value: Any,
        version: VersionVector,
        deps: Deps,
        origin_site: str,
        origin_put_at: float,
        chain: List[str],
        stamp: Any,
        hlc: Any,
    ) -> None:
        raise NotImplementedError

    # -- chain repair --------------------------------------------------
    def needs_restabilise(self, key: str, version: VersionVector) -> bool:
        raise NotImplementedError

    def transfer_record(self, record: Any, stable_version: VersionVector) -> Tuple:
        return (
            record.key,
            record.value,
            record.version,
            stable_version,
            record.stamp,
        )

    def transfer_hlc(self, key: str) -> Any:
        return NO_HLC

    # -- clock-plane control traffic (no-ops on notices) ---------------
    def on_clock_tick(self, msg: Any) -> None:
        return None

    def on_tail_applied(self, msg: Any) -> None:
        return None

    # -- read replies / lifecycle / gauges -----------------------------
    def annotate_read(self, reply: dict, key: str) -> None:
        return None

    def on_recover(self) -> None:
        return None

    def hlc_entry_count(self) -> int:
        return 0

    def max_skew(self) -> int:
        return 0


class NoticesPlane(StabilityPlane):
    """The paper's explicit plane: per-write stability notifications.

    Every hook delegates to the node's :class:`StabilityTracker` pair
    and emits exactly the messages the pre-interface code emitted, in
    the same order — the golden trace holds this plane bit-identical.
    """

    __slots__ = ()

    name = "notices"

    def unresolved_deps(self, msg: PutRequest) -> List[Tuple[str, Any]]:
        node = self.node
        placement = node.placement
        return [
            (dep_key, entry)
            for dep_key, entry in msg.deps.items()
            # Same-key dependencies need no wait here: the chain orders
            # this put after them, and shipping only on DC-stability
            # means they are stable before this write leaves the DC.
            # Under partial replication, dependencies on shards this
            # site does not own are not locally checkable and are
            # skipped: reads of those keys forward to the dependency's
            # primary owner (whose chain serialised it before this put
            # existed), and forwarded reads of *this* write carry the
            # entry onward via ``fwd_deps`` for the reader's DC to check.
            if dep_key != msg.key
            and (placement is None or placement.owns(node.site, dep_key))
            and not node.stability.is_stable(dep_key, entry.version)
        ]

    def spawn_dep_wait(self, dep_key: str, entry: Any) -> Future:
        node = self.node
        return spawn(
            node.sim, node._wait_dep(dep_key, entry.version), name=f"dep:{dep_key}"
        )

    def wait_stable(self, key: str, version: VersionVector) -> Future:
        return self.node.stability.wait(self.node.sim, key, version)

    def record_is_stable(self, key: str, version: VersionVector) -> bool:
        return self.node.stability.is_stable(key, version)

    def record_is_global(
        self, key: str, version: VersionVector, dc_stable: bool
    ) -> bool:
        if self.node.config.is_geo:
            return self.node.global_stability.is_stable(key, version)
        return dc_stable

    def tail_stabilise(
        self,
        key: str,
        value: Any,
        version: VersionVector,
        deps: Deps,
        origin_site: str,
        origin_put_at: float,
        chain: List[str],
        stamp: Any,
        hlc: Any,
    ) -> None:
        node = self.node
        node.stability.record(key, version)
        node._refresh_stable_record(key)
        node.trace("stability", "dc-stable", key, version=str(version))
        if len(chain) > 1:
            upstream = node.view.address_of(chain[-2])
            if node._stable_coalescer is not None:
                node._stable_coalescer.add(upstream, key, version)
            else:
                node.send(
                    upstream,
                    ChainStable(key=key, version=version, position=len(chain) - 2),
                )
        if node.config.is_geo:
            node.send(
                Address(node.site, _GEOPROXY),
                TailStable(
                    key=key,
                    value=value,
                    version=version,
                    stamp=stamp,
                    deps=deps,
                    origin_site=origin_site,
                    origin_put_at=origin_put_at,
                ),
            )

    def needs_restabilise(self, key: str, version: VersionVector) -> bool:
        return not self.node.stability.is_stable(key, version)


def make_plane(node: "ChainNode") -> StabilityPlane:
    """Instantiate the plane selected by ``node.config.stability``."""
    if node.config.stability == "clock":
        from repro.core.clockplane import ClockNodePlane

        return ClockNodePlane(node)
    return NoticesPlane(node)
