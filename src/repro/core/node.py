"""The ChainReaction storage server.

One :class:`ChainNode` plays every chain role at once — it is the head
for some keys, an interior replica for others, the tail for others
still, as consistent hashing dictates. The node implements:

- **k-ack puts** — a put is applied at the head, propagated down the
  chain, and acknowledged to the client by the server at chain position
  ``k - 1``; propagation continues lazily to the tail.
- **dependency waits** — a put whose client metadata lists unstable
  dependencies is held at the head until those versions are DC-stable
  (confirmed by the dependency's chain tail), the mechanism that makes
  reads-anywhere safe for causality.
- **stability propagation** — the tail marks versions DC-stable and
  notifies the chain (and the geo-proxy) so reads can fan out to all
  ``R`` replicas.
- **prefix reads** — a get is served by whichever chain position the
  client chose; the reply carries the server's position and a stability
  flag so the client can maintain its metadata.
- **chain repair** — on a membership change every server streams the
  records each new chain member is responsible for, and pauses
  client-facing service until it has received its peers' transfers
  (bounded by ``sync_timeout``).
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional, Set, Tuple

from repro.cluster.membership import RingView
from repro.cluster.ring import chain_positions
from repro.cluster.server_base import RingServer
from repro.core.batching import StabilityCoalescer
from repro.core.config import ChainReactionConfig
from repro.core.messages import (
    BulkStable,
    ChainPut,
    ChainStable,
    ClockTick,
    Deps,
    GlobalStableBatch,
    GlobalStableNotice,
    PutReply,
    PutRequest,
    StableEntries,
    StateTransfer,
    TailApplied,
    TransferDone,
)
from repro.core.deptable import DepSnapshot
from repro.core.stability import StabilityTracker
from repro.core.stability_plane import make_plane
from repro.errors import NotResponsibleError, RemoteError, ReplicaUnavailable, RequestTimeout
from repro.net.message import Message
from repro.net.network import Address, Network
from repro.sim.hlc import NO_HLC
from repro.sim.kernel import Simulator
from repro.sim.process import all_of, spawn, with_timeout
from repro.storage.merge import ConflictResolver
from repro.storage.logstore import DurableStore
from repro.storage.store import TOMBSTONE
from repro.storage.version import VersionVector

__all__ = ["ChainNode"]

#: Shared read-only empty dependency map. ``_stable_records`` retains a
#: deps mapping per stable key, so handing out a fresh ``{}`` default on
#: every refresh pinned thousands of identical empty dicts.
_NO_DEPS: Deps = {}

_GEOPROXY = "geoproxy"


class ChainNode(RingServer):  # repro: lint-ok(slots) — unslotted Actor base keeps the __dict__; one instance per server, not per key
    """A ChainReaction server: head/replica/tail for its share of chains."""

    SERVICED_TYPES = frozenset(
        {"rpc-request", "put-request", "chain-put", "state-transfer"}
    )

    def service_cost(self, msg: Message) -> float:
        # Stability queries are version comparisons, not data operations;
        # charging them a full service slot would tax every dependency-
        # carrying put with capacity it doesn't consume in reality.
        if getattr(msg, "method", None) == "wait_stable":
            return 0.0
        return super().service_cost(msg)

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        site: str,
        name: str,
        initial_view: RingView,
        config: ChainReactionConfig,
        resolver: Optional[ConflictResolver] = None,
    ) -> None:
        super().__init__(
            sim, network, site, name, initial_view, resolver,
            service_time=config.service_time,
        )
        self.config = config
        #: shard→owners map under partial replication; None = full
        #: replication (every placement-aware branch gates on this)
        self.placement = config.placement()
        if config.durable_storage:
            # FAWN-KV-style log-structured datastore: survives crashes
            # that wipe memory; compaction bounds log growth.
            self.store = DurableStore(resolver)
            self.set_timer(config.compaction_interval, self._compaction_tick)
        self.stability = StabilityTracker()
        #: versions DC-stable in *every* datacenter; in a single-DC
        #: deployment this coincides with plain DC-stability
        self.global_stability = StabilityTracker()
        self.syncing = False
        #: newest record known DC-stable per key, with the dependency list
        #: of the write that produced it — the unit served to causally
        #: consistent snapshot reads (multi_get)
        self._stable_records: Dict[str, Tuple[Any, Any]] = {}
        self._record_deps: Dict[str, Deps] = {}
        self._sync_epoch = initial_view.epoch
        self._transfer_pending: Set[str] = set()
        self._done_received: Set[Tuple[int, str]] = set()
        #: coalesces upstream stability notifications into BulkStable
        #: messages (None = unbatched per-write ChainStable)
        self._stable_coalescer: Optional[StabilityCoalescer] = None
        if config.protocol_batching:
            self._stable_coalescer = StabilityCoalescer(
                self,
                config.batch_flush_interval,
                config.batch_max_entries,
                self._send_bulk_stable,
            )
        #: per-key globally-stable floor for sealed keys (geo deployments;
        #: the DC floor needs no map — the stable record itself serves it)
        self._global_floor: Dict[str, VersionVector] = {}
        if config.metadata_gc:
            self.stability.set_floor(self._stable_floor)
            self.global_stability.set_floor(self._global_stable_floor)
            self.set_timer(config.gc_interval, self._gc_tick)
        # counters surfaced by the harness
        self.puts_served = 0
        self.gets_served = 0
        self.remote_applies = 0
        self.dep_waits = 0
        self.dep_wait_timeouts = 0
        self.rejected_ops = 0
        self.forced_sync_exits = 0
        self.keys_sealed = 0
        #: the stabilization plane (config.stability): every stability
        #: decision this node makes routes through it. Constructed last —
        #: the clock plane arms its floor-report timer immediately.
        self.plane = make_plane(self)

    # ------------------------------------------------------------------
    # client puts (head role)
    # ------------------------------------------------------------------
    def on_put_request(self, msg: PutRequest, src: Address) -> None:
        error = self._put_admission_error(msg.key)
        if error is not None:
            self.rejected_ops += 1
            if msg.reply_to is not None:
                self.send(
                    msg.reply_to,
                    PutReply(request_id=msg.request_id, key=msg.key, ok=False, error=error),
                )
            return
        self.trace("put", "received", msg.key, deps=len(msg.deps))
        spawn(self.sim, self._serve_put(msg), name=f"put:{msg.key}")

    def _put_admission_error(self, key: str) -> Optional[str]:
        if self.syncing:
            return "syncing"
        if self.placement is not None and not self.placement.owns(self.site, key):
            # Partial replication: this whole site doesn't hold the
            # key's shard — the client must forward to an owner DC.
            return "not-responsible-shard"
        pos = chain_positions(self.chain_for(key), self.name)
        if pos is None:
            return "not-responsible"
        if pos != 0:
            return "not-head"
        return None

    def _serve_put(self, msg: PutRequest) -> Iterator[Any]:
        """Hold the put until its dependencies are DC-stable, then apply."""
        unresolved = self.plane.unresolved_deps(msg)
        if "skip_dep_wait" in self.config.mutations:
            # MUTATION (proving ground): admit the write as if its causal
            # dependencies were already DC-stable. A reader at the tail
            # can then observe this write before its dependency is
            # visible anywhere — a causal-cut violation.
            unresolved = []
        if unresolved:
            self.dep_waits += 1
            self.trace("put", "dep-wait", msg.key, waiting_on=len(unresolved))
            waits = [
                self.plane.spawn_dep_wait(dep_key, entry)
                for dep_key, entry in unresolved
            ]
            yield all_of(self.sim, waits)

        # Admission is re-checked at apply time, not only at arrival: a
        # view change can land between the two (the serve runs as its own
        # process), and a no-longer-head that assigned a version here
        # would mint the same number as the new head — a split-brain
        # write under a stale epoch.
        if "split_brain_mint" in self.config.mutations:
            # MUTATION (proving ground): PR 3's bug, re-injected — skip
            # the apply-time re-check, so a deposed head mints the same
            # version number as the new head under a stale epoch.
            error = None
        else:
            error = self._put_admission_error(msg.key)
        if error is not None:
            self.rejected_ops += 1
            self.trace("put", "apply-rejected", msg.key, error=error)
            if msg.reply_to is not None:
                self.send(
                    msg.reply_to,
                    PutReply(request_id=msg.request_id, key=msg.key, ok=False, error=error),
                )
            return None

        value = TOMBSTONE if msg.is_delete else msg.value
        # The version is assigned at apply time (not at arrival) so that
        # puts held by dependency waits serialise correctly with puts
        # that overtook them on the same key.
        version = self.store.version_of(msg.key).increment(self.site)
        # Plane metadata is minted with no yield between here and the
        # apply below: the stamp observes the put's dependencies, so a
        # dependent write always carries a strictly larger stamp.
        hlc = self.plane.stamp_put(msg)
        self.puts_served += 1
        self.trace("put", "apply-head", msg.key, version=str(version))
        self._apply_and_propagate(
            key=msg.key,
            value=value,
            version=version,
            origin_site=self.site,
            # Client snapshots are immutable (COW), so the chain shares
            # one object; a plain-dict deps payload is copied defensively.
            deps=msg.deps if isinstance(msg.deps, DepSnapshot) else dict(msg.deps),
            ack_index=self.config.ack_k - 1,
            request_id=msg.request_id,
            reply_to=msg.reply_to,
            origin_put_at=self.sim.now,
            hlc=hlc,
        )
        return version

    def _wait_dep(self, key: str, version: VersionVector) -> Iterator[Any]:
        """Block until ``version`` of ``key`` is DC-stable (or time out).

        The wait is answered by the dependency's chain tail; view changes
        mid-wait are handled by re-asking whoever the tail now is. After
        ``dep_wait_timeout`` the put proceeds anyway — the dependency can
        only be permanently missing if its data was lost, in which case
        no reader can observe it and waiting longer helps nobody.
        """
        deadline = self.sim.now + self.config.dep_wait_timeout
        attempt = max(self.config.dep_wait_timeout / 3.0, 0.05)
        while self.sim.now < deadline:
            remaining = deadline - self.sim.now
            chain = self.chain_for(key)
            tail_name = chain[-1]
            try:
                if tail_name == self.name:
                    yield with_timeout(
                        self.sim, self.plane.wait_stable(key, version), remaining
                    )
                else:
                    yield self.call(
                        self.view.address_of(tail_name),
                        "wait_stable",
                        (key, version.entries()),
                        timeout=min(attempt, remaining),
                    )
                return True
            except (RequestTimeout, RemoteError):
                continue
        self.dep_wait_timeouts += 1
        return False

    # ------------------------------------------------------------------
    # chain propagation
    # ------------------------------------------------------------------
    def _apply_and_propagate(
        self,
        key: str,
        value: Any,
        version: VersionVector,
        origin_site: str,
        deps: Deps,
        ack_index: int,
        request_id: int,
        reply_to: Optional[Address],
        origin_put_at: float,
        stamp: Any = None,
        hlc: Any = NO_HLC,
        size_from: Optional[ChainPut] = None,
    ) -> None:
        """Apply a write locally and play this node's chain role for it:
        acknowledge the client if we sit at the ack position, declare
        stability if we are the tail, otherwise forward downstream.

        ``stamp`` is None on the normal path, where ``version`` is the
        write's original vector; remote re-applications of merged
        records pass the surviving stamp explicitly.

        ``size_from`` is the inbound :class:`ChainPut` when this call
        propagates one; hop-to-hop copies differ only in fixed-width
        scalar fields, so the outbound message inherits its memoized
        wire size and a put is sized once per chain, not once per hop.
        """
        self._apply_local(key, value, version, stamp, deps, hlc)
        chain = self.chain_for(key)
        pos = chain_positions(chain, self.name)
        if pos is None:
            # A view change moved this chain away mid-flight; the repair
            # scan redistributes the record, nothing more to do here.
            return
        tail_pos = len(chain) - 1
        if ack_index >= 0 and pos == min(ack_index, tail_pos) and reply_to is not None:
            self.trace("put", "ack-client", key, position=pos)
            if pos != tail_pos and "ack_implies_stable" in self.config.mutations:
                # MUTATION (proving ground): conflate k-acknowledgement
                # with DC-stability. Only the tail may declare stability;
                # recording it here lets readers treat a mid-chain write
                # as stable and drop the dependency that still guards it.
                self.stability.record(key, version)
                self._refresh_stable_record(key)
            self.send(
                reply_to,
                PutReply(
                    request_id=request_id,
                    key=key,
                    version=version,
                    index=pos,
                    chain_len=len(chain),
                    hlc=hlc,
                ),
            )
        if pos == tail_pos:
            self._tail_stabilise(
                key, value, version, deps, origin_site, origin_put_at, chain,
                stamp=stamp, hlc=hlc,
            )
        else:
            downstream = ChainPut(
                key=key,
                value=value,
                version=version,
                origin_site=origin_site,
                deps=deps,
                position=pos + 1,
                ack_index=ack_index,
                request_id=request_id,
                reply_to=reply_to,
                origin_put_at=origin_put_at,
                hlc=hlc,
            )
            if size_from is not None:
                downstream.copy_size_from(size_from)
            self.send(self.view.address_of(chain[pos + 1]), downstream)

    def _apply_local(self, key: str, value: Any, version: VersionVector,
                     stamp: Any, deps: Deps, hlc: Any = NO_HLC) -> None:
        """Apply to the local store, preserving the newest *stable* record
        (snapshot reads serve it even after newer unstable writes land)
        and tracking the surviving write's dependency list."""
        existing = self.store.get_record(key)
        if existing is not None and self.plane.record_is_stable(key, existing.version):
            self._stable_records[key] = (existing, self._record_deps.get(key, _NO_DEPS))
        result = self.store.apply(key, value, version, self.sim.now, stamp)
        if result.applied:
            self.plane.note_applied(key, hlc)
            if result.was_conflict:
                merged = dict(self._record_deps.get(key, _NO_DEPS))
                for dep_key, entry in deps.items():
                    mine = merged.get(dep_key)
                    if mine is None or entry.version.dominates(mine.version):
                        merged[dep_key] = entry
                self._record_deps[key] = merged
            else:
                # An immutable snapshot is retained as-is — every replica
                # on the chain (and the remote site's chain, via the
                # geo-proxy) then pins the same column arrays rather than
                # its own dict copy. Mutable dicts are still copied.
                self._record_deps[key] = (
                    deps if isinstance(deps, DepSnapshot) else dict(deps)
                )
        else:
            # Stale/dominated write: the surviving record keeps its own
            # stamp, but the clock still merges (never moves backwards).
            self.plane.observe(hlc)
        self._refresh_stable_record(key)

    def _refresh_stable_record(self, key: str) -> None:
        """Drop the shadow entry once the live record is itself stable.

        ``_stable_records`` only materialises a (record, deps) pair while
        a newer *unstable* write shadows the stable one — the common
        steady state (live record stable, nothing in flight) is served
        lazily by :meth:`_stable_entry` from the store and dep map
        directly, so the per-key tuple is pinned only for keys actually
        in transition. Sealed keys keep their explicit pair: sealing
        drops the tracker entry this laziness relies on.
        """
        record = self.store.get_record(key)
        if record is not None and self.plane.record_is_stable(key, record.version):
            self._stable_records.pop(key, None)

    def _stable_entry(self, key: str) -> Optional[Tuple[Any, Deps]]:
        """The newest DC-stable (record, deps) pair, or None.

        Reads the shadow map first (set while an unstable write hides
        the stable record, and by sealing); otherwise the live record
        serves iff it is DC-stable — exactly the pair the eager refresh
        used to store.
        """
        entry = self._stable_records.get(key)
        if entry is not None:
            return entry
        record = self.store.get_record(key)
        if record is not None and self.plane.record_is_stable(key, record.version):
            return (record, self._record_deps.get(key, _NO_DEPS))
        return None

    def on_chain_put(self, msg: ChainPut, src: Address) -> None:
        self._apply_and_propagate(
            key=msg.key,
            value=msg.value,
            version=msg.version,
            origin_site=msg.origin_site,
            deps=msg.deps,
            ack_index=msg.ack_index,
            request_id=msg.request_id,
            reply_to=msg.reply_to,
            origin_put_at=msg.origin_put_at,
            hlc=msg.hlc,
            size_from=msg,
        )

    def _tail_stabilise(
        self,
        key: str,
        value: Any,
        version: VersionVector,
        deps: Deps,
        origin_site: str,
        origin_put_at: float,
        chain: List[str],
        stamp: Any = None,
        hlc: Any = NO_HLC,
    ) -> None:
        self.plane.tail_stabilise(
            key, value, version, deps, origin_site, origin_put_at, chain, stamp, hlc
        )

    def on_chain_stable(self, msg: ChainStable, src: Address) -> None:
        self.stability.record(msg.key, msg.version)
        self._refresh_stable_record(msg.key)
        chain = self.chain_for(msg.key)
        pos = chain_positions(chain, self.name)
        if pos is not None and pos > 0:
            if "drop_stable_cascade" in self.config.mutations:
                # MUTATION (proving ground): drop the upstream cascade
                # hop. On chains of length >= 3 the head never learns
                # DC-stability, so completed writes never converge to
                # stable at every replica.
                return
            self.send(
                self.view.address_of(chain[pos - 1]),
                ChainStable(key=msg.key, version=msg.version, position=pos - 1),
            )

    def _send_bulk_stable(self, dst: Address, entries: StableEntries) -> None:
        """Coalescer flush hook: one BulkStable per destination per window."""
        self.send(dst, BulkStable(entries=entries))

    def on_bulk_stable(self, msg: BulkStable, src: Address) -> None:
        """Record a window's worth of stability entries; re-coalesce the
        upstream forward per key (chains differ between keys)."""
        coalescer = self._stable_coalescer
        for key, version in msg.entries:
            self.stability.record(key, version)
            self._refresh_stable_record(key)
            chain = self.chain_for(key)
            pos = chain_positions(chain, self.name)
            if pos is None or pos == 0:
                continue
            upstream = self.view.address_of(chain[pos - 1])
            if coalescer is not None:
                coalescer.add(upstream, key, version)
            else:
                # Defensive: a batched peer notified an unbatched node
                # (mixed configs only happen in hand-built tests).
                self.send(
                    upstream,
                    ChainStable(key=key, version=version, position=pos - 1),
                )

    # ------------------------------------------------------------------
    # reads (any chain position)
    # ------------------------------------------------------------------
    def rpc_get(self, key: str, src: Address) -> Dict[str, Any]:
        if self.syncing:
            self.rejected_ops += 1
            raise ReplicaUnavailable("syncing")
        if self.placement is not None and not self.placement.owns(self.site, key):
            self.rejected_ops += 1
            raise NotResponsibleError(f"{self.site} does not own the shard of {key!r}")
        pos = chain_positions(self.chain_for(key), self.name)
        if pos is None:
            self.rejected_ops += 1
            raise NotResponsibleError(f"{self.name} not in chain for {key!r}")
        self.gets_served += 1
        record = self.store.get_record(key)
        if record is None:
            reply: Dict[str, Any] = {
                "value": None,
                "version": VersionVector(),
                "stable": True,
                "global": True,
                "index": pos,
            }
            self.plane.annotate_read(reply, key)
            return reply
        version = record.version
        dc_stable = self.plane.record_is_stable(key, version)
        globally = self.plane.record_is_global(key, version, dc_stable)
        reply = {
            "value": None if record.is_deleted else record.value,
            "version": version,
            "stable": dc_stable,
            "global": globally,
            "index": pos,
        }
        self.plane.annotate_read(reply, key)
        return reply

    def rpc_get_fwd(self, key: str, src: Address) -> Dict[str, Any]:
        """Serve a read forwarded from a non-owner DC (via the proxy).

        Same as :meth:`rpc_get`, plus ``fwd_deps``: the dependency list
        of the write being served. A local reader is covered by this
        site's admission gates (dependencies on owned shards were
        DC-stable *here* before the write surfaced), but a remote reader
        observes the write before those dependencies reach *its* site —
        so the entries ride along for the reader's session to dominance-
        check against its own DC. The list is the write's (already
        bounded) client dep snapshot, not a transitive closure.
        """
        reply = self.rpc_get(key, src)
        deps = self._record_deps.get(key)
        if deps:
            fwd = {k: e for k, e in deps.items() if k != key}
            if fwd:
                reply["fwd_deps"] = fwd
        return reply

    def on_global_stable_notice(self, msg: GlobalStableNotice, src: Address) -> None:
        self.trace("stability", "global-stable", msg.key, version=str(msg.version))
        self.global_stability.record(msg.key, msg.version)

    def on_global_stable_batch(self, msg: GlobalStableBatch, src: Address) -> None:
        for key, version in msg.entries:
            self.global_stability.record(key, version)

    def rpc_get_stable(self, key: str, src: Address) -> Dict[str, Any]:
        """Serve the newest DC-stable record for ``key``, with the deps of
        the write that produced it — one leg of a causally consistent
        snapshot read. Any chain position can answer: stable versions
        are on every replica by definition."""
        if self.syncing:
            self.rejected_ops += 1
            raise ReplicaUnavailable("syncing")
        if self.placement is not None and not self.placement.owns(self.site, key):
            self.rejected_ops += 1
            raise NotResponsibleError(f"{self.site} does not own the shard of {key!r}")
        if chain_positions(self.chain_for(key), self.name) is None:
            self.rejected_ops += 1
            raise NotResponsibleError(f"{self.name} not in chain for {key!r}")
        self.gets_served += 1
        entry = self._stable_entry(key)
        if entry is None:
            return {
                "found": False,
                "value": None,
                "version": VersionVector(),
                "deps": {},
            }
        record, deps = entry
        return {
            "found": True,
            "value": None if record.is_deleted else record.value,
            "version": record.version,
            "deps": {k: e.version for k, e in deps.items()},
        }

    # ------------------------------------------------------------------
    # stability queries (tail role)
    # ------------------------------------------------------------------
    def rpc_wait_stable(
        self, payload: Tuple[str, Dict[str, int]], src: Address
    ) -> Future:
        key, entries = payload
        return self.plane.wait_stable(key, VersionVector(entries))

    # ------------------------------------------------------------------
    # clock-plane control traffic (config.stability == "clock")
    # ------------------------------------------------------------------
    def on_clock_tick(self, msg: ClockTick, src: Address) -> None:
        self.plane.on_clock_tick(msg)

    def on_tail_applied(self, msg: TailApplied, src: Address) -> None:
        self.plane.on_tail_applied(msg)

    # ------------------------------------------------------------------
    # remote updates injected by the geo-proxy (head role)
    # ------------------------------------------------------------------
    def rpc_apply_remote(self, payload: Dict[str, Any], src: Address) -> bool:
        key = payload["key"]
        if self.syncing:
            raise ReplicaUnavailable("syncing")
        pos = chain_positions(self.chain_for(key), self.name)
        if pos is None or pos != 0:
            raise NotResponsibleError(f"{self.name} is not head for {key!r}")
        self.remote_applies += 1
        self._apply_and_propagate(
            key=key,
            value=payload["value"],
            version=payload["version"],
            origin_site=payload["origin_site"],
            deps=payload.get("deps", {}),
            ack_index=-1,
            request_id=0,
            reply_to=None,
            origin_put_at=payload.get("origin_put_at", self.sim.now),
            stamp=payload.get("stamp"),
            hlc=payload.get("hlc", NO_HLC),
        )
        return True

    # ------------------------------------------------------------------
    # chain repair
    # ------------------------------------------------------------------
    def handle_view_change(self, old: RingView, new: RingView) -> None:
        """Stream state to the members of every chain under the new view.

        Every server pushes each of its records to the record's other
        new-chain members (idempotent at the receiver), then signals
        completion. Client-facing service pauses until all peers'
        transfers arrive, bounded by ``sync_timeout``.
        """
        self.trace("repair", "view-change", epoch=new.epoch, members=len(new.servers))
        self._sync_epoch = new.epoch
        self.syncing = True
        self._transfer_pending = set(new.servers) - {self.name}
        self.set_timer(self.config.sync_timeout, self._sync_deadline, new.epoch)

        outgoing: Dict[str, List[Tuple]] = {}
        for record in self.store.all_records():
            chain = new.chain_for(record.key)
            if self.name not in chain:
                continue
            entry = self.plane.transfer_record(
                record, self.stability.stable_version(record.key)
            )
            for server in chain:
                if server != self.name:
                    outgoing.setdefault(server, []).append(entry)
        for server in new.servers:
            if server == self.name:
                continue
            dst = new.address_of(server)
            records = tuple(outgoing.get(server, ()))
            if records:
                self.send(dst, StateTransfer(records=records, epoch=new.epoch))
            self.send(dst, TransferDone(epoch=new.epoch, sender=self.name))
        self._maybe_finish_sync()

    def on_state_transfer(self, msg: StateTransfer, src: Address) -> None:
        for rec in msg.records:
            key, value, version, stable_version, stamp = rec[:5]
            # Clock-plane transfers append the record's HLC stamp as a
            # sixth element; notices-plane tuples stay five-wide.
            hlc = rec[5] if len(rec) > 5 else NO_HLC
            self._apply_local(key, value, version, stamp, {}, hlc)
            if not stable_version.is_zero():
                self.stability.record(key, stable_version)
                self._refresh_stable_record(key)
            chain = self.chain_for(key)
            pos = chain_positions(chain, self.name)
            if pos is not None and pos == len(chain) - 1:
                record = self.store.get_record(key)
                if record is not None and self.plane.needs_restabilise(key, record.version):
                    # Writes stranded mid-chain by the failure reach the new
                    # tail here; stabilising them re-opens reads-anywhere and
                    # (in geo mode) re-ships anything the old tail never sent.
                    self._tail_stabilise(
                        key,
                        record.value,
                        record.version,
                        {},
                        self.site,
                        self.sim.now,
                        chain,
                        stamp=record.stamp,
                        hlc=self.plane.transfer_hlc(key),
                    )

    def on_transfer_done(self, msg: TransferDone, src: Address) -> None:
        self._done_received.add((msg.epoch, msg.sender))
        self._maybe_finish_sync()

    def _maybe_finish_sync(self) -> None:
        if not self.syncing:
            return
        missing = [
            server
            for server in sorted(self._transfer_pending)
            if (self._sync_epoch, server) not in self._done_received
        ]
        if not missing:
            self.syncing = False
            self.trace("repair", "sync-complete", epoch=self._sync_epoch)
            self._done_received = {
                item
                for item in sorted(self._done_received)
                if item[0] >= self._sync_epoch
            }

    def _compaction_tick(self) -> None:
        reclaimed = self.store.maybe_compact()
        if reclaimed:
            self.trace("storage", "compaction", reclaimed=reclaimed)
        self.set_timer(self.config.compaction_interval, self._compaction_tick)

    # ------------------------------------------------------------------
    # metadata GC (sealing)
    # ------------------------------------------------------------------
    def _stable_floor(self, key: str) -> VersionVector:
        """DC-stable floor for sealed keys: the newest stable record the
        server already holds answers the query exactly — refreshing it is
        guarded by DC-stability, so everything it reports *is* stable."""
        # Reads the explicit map only — NOT the lazy ``_stable_entry``:
        # this is the tracker's floor callback, and the lazy path calls
        # ``is_stable``, which falls through to this floor (recursion).
        # Only sealed keys need the floor, and sealing always leaves an
        # explicit pair behind.
        entry = self._stable_records.get(key)
        if entry is None:
            return VersionVector()
        if "gc_floor_off_by_one" in self.config.mutations:
            # MUTATION (proving ground): off-by-one floor — claim the
            # *next* (unwritten) version of the key is already stable,
            # so a sealed key answers stability queries a write early.
            return entry[0].version.increment(self.site)
        return entry[0].version

    def _global_stable_floor(self, key: str) -> VersionVector:
        """Globally-stable floor. Unlike the DC floor this needs its own
        map: ``_stable_records`` refreshes on *DC* stability, so reusing
        it here would claim global stability a WAN round-trip early."""
        return self._global_floor.get(key, VersionVector())

    def _gc_tick(self) -> None:
        """Seal keys whose metadata the stable record already subsumes."""
        sealed = 0
        for key in self.stability.tracked_keys():
            if self._try_seal(key):
                sealed += 1
        if sealed:
            self.keys_sealed += sealed
            self.trace("gc", "sealed", sealed=str(sealed))
            if isinstance(self.store, DurableStore):
                # Sealing frees tracker entries; give the log the same
                # chance to shed its dead prefix.
                self.store.maybe_compact()
        self.set_timer(self.config.gc_interval, self._gc_tick)

    def _try_seal(self, key: str) -> bool:
        """Seal one key if every stability fact about it is recoverable
        from the stable record itself:

        - the live DC entry equals the newest record's version (nothing
          newer is in flight on the chain),
        - in geo mode the record is acknowledged globally stable,
        - no waiters are parked on the key.

        Dropping the record's dependency list is covered by the
        stability gates themselves: a write only becomes DC-stable
        after its dependencies are DC-stable in that DC (the head holds
        local puts; the proxy holds remote injections), so a globally
        stable record has globally stable dependencies — every
        replica's latest-stable version of a dep key already dominates
        the floor the list would have imposed on a snapshot cut. That
        implication needs the causal-delivery gate, so sealing is
        disabled under the E10 ablation that switches it off.
        """
        if self.config.is_geo and not self.config.geo_causal_delivery:
            return False
        entry = self.stability.raw_entry(key)
        if entry is None or self.stability.has_waiters(key):
            return False
        record = self.store.get_record(key)
        if record is None or not entry.dominates(record.version):
            return False
        stable_entry = self._stable_entry(key)
        if stable_entry is None or stable_entry[0].version != record.version:
            return False
        if self.config.is_geo:
            if self.global_stability.has_waiters(key):
                return False
            global_entry = self.global_stability.raw_entry(key)
            if global_entry is None or not global_entry.dominates(record.version):
                return False
        if not self.stability.drop_entry(key):
            return False
        if self.config.is_geo:
            self._global_floor[key] = record.version
            self.global_stability.drop_entry(key)
        # The deps of a globally stable write are globally stable too;
        # the snapshot path needs no floors from them any more.
        self._stable_records[key] = (stable_entry[0], {})
        self._record_deps.pop(key, None)
        return True

    def metadata_entries(self) -> int:
        """Live protocol metadata entries this server holds (GC metric).

        Counts what sealing can reclaim: tracker entries and record
        dependency lists. The global floor is excluded — it is the O(1)
        seal marker a sealed record keeps forever (one frozen vector,
        like the record's own version), counted separately by
        :meth:`global_floor_entries`.
        """
        return (
            self.stability.entry_count()
            + self.global_stability.entry_count()
            + sum(len(deps) for deps in self._record_deps.values())
        )

    def global_floor_entries(self) -> int:
        """Sealed-key floor vectors (one per sealed key, never reclaimed)."""
        return len(self._global_floor)

    def on_recover(self) -> None:
        if self._stable_coalescer is not None:
            # The crash cancelled the armed flush timer and the buffered
            # entries belong to the pre-crash lifetime; start clean.
            self._stable_coalescer.reset()
        if self.config.metadata_gc:
            self.set_timer(self.config.gc_interval, self._gc_tick)
        self.plane.on_recover()
        if isinstance(self.store, DurableStore) and len(self.store) == 0 and len(self.store.log):
            replayed = self.store.recover_from_log()
            self.trace("storage", "log-recovery", replayed=replayed)
            # Replayed records that were stable before the crash become
            # stable again via the repair transfer that follows re-admission.
            self.set_timer(self.config.compaction_interval, self._compaction_tick)
        super().on_recover()

    def _sync_deadline(self, epoch: int) -> None:
        if self.syncing and self._sync_epoch == epoch:
            # A peer died mid-repair and its TransferDone will never come;
            # resume service rather than staying unavailable.
            self.syncing = False
            self.forced_sync_exits += 1
