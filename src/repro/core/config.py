"""Configuration for a ChainReaction deployment.

One dataclass carries every knob the paper discusses plus the ablation
switches called out in DESIGN.md §6, with validation at construction so
misconfigured experiments fail loudly before any virtual time elapses.
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING, Optional, Tuple

from repro.errors import ConfigError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.cluster.placement import ShardCatalog

__all__ = ["PROTOCOL_MUTATIONS", "ChainReactionConfig"]

#: Seeded protocol bugs the schedule explorer's proving ground can
#: re-inject (test-only; see docs/ANALYSIS.md §4 and
#: repro.analysis.explore). Each name gates exactly one wrong branch in
#: core/node.py or core/geo.py; the default configuration enables none,
#: so production runs and the golden trace are unaffected.
PROTOCOL_MUTATIONS: Tuple[str, ...] = (
    # PR 3's split-brain bug: a deposed head skips the apply-time
    # admission re-check and mints a duplicate (key, version).
    "split_brain_mint",
    # on_chain_stable drops the upstream cascade hop: stability never
    # reaches positions above the tail's predecessor.
    "drop_stable_cascade",
    # metadata_gc sealing reports the *next* (unwritten) version as the
    # per-key stable floor — an off-by-one that over-promises stability.
    "gc_floor_off_by_one",
    # RemoteUpdateBatch entries are applied in reverse buffering order,
    # reordering causally-related writes across a flush window.
    "batch_reorder",
    # the k-th (non-tail) chain position records DC-stability at ack
    # time, before the tail has even applied the write.
    "ack_implies_stable",
    # the head treats unresolved causal dependencies as already stable
    # and admits the write without waiting.
    "skip_dep_wait",
    # clock plane: the geo-proxy trusts a peer's (stale) stability
    # vector over its own pending-injection state — the remote-update
    # admission gate ignores received-but-not-yet-applied updates, so a
    # dependent write can be injected before its dependency finishes
    # propagating down the local chain.
    "stale_stability_vector",
)


@dataclasses.dataclass(frozen=True)
class ChainReactionConfig:
    """Deployment and protocol parameters.

    Attributes:
        sites: datacenter names; one full replica set per site.
        servers_per_site: storage servers in each DC's ring.
        chain_length: R — replicas per key within a DC.
        ack_k: k — chain positions that must apply a put before the
            client is acknowledged (the paper's latency/durability knob).
        allow_prefix_reads: ChainReaction's read distribution. False
            degenerates reads to the tail, i.e. classic chain
            replication read behaviour (ablation, DESIGN.md §6.3).
        collapse_deps_on_put: reset the client's dependency metadata to
            the new write after each put (ablation §6.2 when False).
        geo_causal_delivery: apply remote updates only after their
            dependencies are DC-stable locally (ablation §6.4).
        dep_wait_timeout: how long a head waits for a dependency to
            stabilise before proceeding anyway (counts as a
            ``dep_wait_timeouts`` event; only reachable after data loss).
        op_timeout: client-side per-attempt deadline for get/put. Kept
            well below a second so a crashed server costs a client one
            short stall, not a multi-second blackout (E9).
        client_retry_backoff: base delay between client retries; grows
            by ``backoff_multiplier`` per attempt up to ``max_backoff``,
            with a deterministic ``backoff_jitter`` fraction drawn from
            the session's seeded RNG (see repro.core.retry).
        max_retries: client attempts before an operation fails.
        backoff_multiplier: exponential backoff growth factor.
        max_backoff: cap on one backoff sleep (seconds).
        backoff_jitter: symmetric jitter fraction in [0, 1).
        op_deadline: total virtual-time budget for one operation across
            all attempts; 0 disables (the attempt budget still bounds it).
        degraded_reads: when the chain prefix holding a session's
            observed version stays unreachable, serve a possibly-stale
            version from any replica flagged ``GetResult.degraded``
            instead of raising (the degraded-mode read path, E9).
        degraded_read_after: failed attempts before a read may probe
            beyond its dependency-safe prefix.
        lan_median / wan_median: link latency medians in seconds.
        heartbeat_interval / failure_timeout: failure-detector tuning.
        durable_storage: back each server's store with a FAWN-KV-style
            append-only log; a crash loses memory but not the log, and
            recovery replays it before chain repair fills the rest.
        compaction_interval: how often a durable server checks whether
            its log has outgrown the live set and compacts it.
        service_time: per-request CPU time a storage server spends on
            client operations and chain propagation; bounds each server's
            capacity at roughly 1/service_time ops/sec.
        sync_timeout: upper bound on a server's read-unavailability window
            while chain repair streams state after a view change.
        virtual_nodes: consistent-hashing virtual nodes per server.
        replication_degree: r — how many sites replicate each keyspace
            shard. 0 (default) means full replication: every site owns
            every key and nothing about the geo plane changes. Any value
            in [1, len(sites)) enables *partial* geo-replication: keys
            hash into ``num_shards`` shards, each owned by ``r`` sites
            chosen on a consistent-hash ring over the site names
            (:mod:`repro.cluster.placement`), remote updates ship only
            to owner sites, and clients forward operations on non-owned
            shards to the shard's primary owner. ``r = len(sites)``
            is accepted and equivalent to full replication.
        num_shards: keyspace shards the partial-replication catalog
            divides the key hash space into. Irrelevant (but validated)
            when ``replication_degree`` is 0.
        protocol_batching: coalesce the metadata plane — stability
            notifications travel as :class:`~repro.core.messages.BulkStable`
            per upstream hop, geo shipping as
            :class:`~repro.core.messages.RemoteUpdateBatch` per peer DC,
            and global-stability fan-out as
            :class:`~repro.core.messages.GlobalStableBatch` — flushed on
            a simulator-driven window (``batch_flush_interval``) or when
            a destination's buffer reaches ``batch_max_entries``. Off by
            default so fixed-seed traces recorded without batching stay
            bit-identical.
        batch_flush_interval: virtual-time window over which stability /
            geo metadata is coalesced before flushing (seconds). The
            knob trades metadata-plane message count against stability
            latency; keep it well under ``wan_median`` so batching never
            dominates the geo-visibility path.
        batch_max_entries: per-destination buffer size that forces an
            eager flush before the window expires (bounds both batch
            wire size and worst-case buffered-entry memory).
        metadata_gc: seal fully-stable keys — once a key's newest record
            is stable in every DC with no waiters, drop its tracker
            entries (the stable record itself becomes the per-key floor)
            and the dependency lists retained for snapshot reads. Bounds
            metadata memory on long runs; off by default (no effect on
            protocol messages, but the sweep alters timer event counts).
        gc_interval: how often a server runs the sealing sweep (seconds).
        stability: which stabilization plane drives causal visibility.
            ``"notices"`` (default) is the paper's explicit plane:
            per-write ChainStable cascades, RemoteUpdate fan-out and
            GlobalStableNotice streams (optionally coalesced by
            ``protocol_batching``). ``"clock"`` replaces all of that
            with hybrid-logical-clock stamps on writes plus one small
            stability vector per DC per ``stability_interval`` — remote
            updates become visible when the periodic cut passes their
            stamp (Okapi-style deferred stabilization). Incompatible
            with ``protocol_batching`` (nothing left to coalesce) and
            ``metadata_gc`` (the clock plane keeps no tracker entries
            to seal).
        stability_interval: period of the clock plane's control loop —
            server floor reports, site vector broadcast, ship flushes
            and visibility ticks all run on this cadence. Trades
            control-message rate against visibility latency (adds up to
            ~2 intervals on top of the WAN hop).
        mutations: test-only seeded protocol bugs (names from
            :data:`PROTOCOL_MUTATIONS`) for the schedule explorer's
            proving ground. Empty in every production configuration.
        kernel: which simulation-kernel backend to run on. ``"auto"``
            (default) prefers the opt-in mypyc-compiled build when it is
            importable and falls back to pure python; ``"pure"`` /
            ``"compiled"`` force one backend (``"compiled"`` without a
            build is a ConfigError). Both backends are bit-identical by
            contract — this knob trades nothing but speed. See
            :mod:`repro.sim.backend`.
        seed: root seed for every random stream in the deployment.
    """

    sites: Tuple[str, ...] = ("dc0",)
    servers_per_site: int = 6
    chain_length: int = 3
    ack_k: int = 2
    allow_prefix_reads: bool = True
    collapse_deps_on_put: bool = True
    geo_causal_delivery: bool = True
    dep_wait_timeout: float = 1.0
    op_timeout: float = 0.25
    client_retry_backoff: float = 0.02
    max_retries: int = 25
    backoff_multiplier: float = 2.0
    max_backoff: float = 0.5
    backoff_jitter: float = 0.1
    op_deadline: float = 0.0
    degraded_reads: bool = True
    degraded_read_after: int = 2
    lan_median: float = 0.0003
    wan_median: float = 0.040
    heartbeat_interval: float = 0.05
    failure_timeout: float = 0.25
    durable_storage: bool = False
    compaction_interval: float = 1.0
    service_time: float = 0.0001
    sync_timeout: float = 1.0
    virtual_nodes: int = 64
    replication_degree: int = 0
    num_shards: int = 16
    protocol_batching: bool = False
    batch_flush_interval: float = 0.002
    batch_max_entries: int = 128
    metadata_gc: bool = False
    gc_interval: float = 0.25
    stability: str = "notices"
    stability_interval: float = 0.005
    mutations: Tuple[str, ...] = ()
    kernel: str = "auto"
    seed: int = 42

    def __post_init__(self) -> None:
        if not self.sites:
            raise ConfigError("at least one site is required")
        if len(set(self.sites)) != len(self.sites):
            raise ConfigError(f"duplicate site names: {self.sites}")
        if self.servers_per_site < 1:
            raise ConfigError("servers_per_site must be >= 1")
        if self.chain_length < 1:
            raise ConfigError("chain_length must be >= 1")
        if self.chain_length > self.servers_per_site:
            raise ConfigError(
                f"chain_length {self.chain_length} exceeds servers_per_site "
                f"{self.servers_per_site}"
            )
        if not 1 <= self.ack_k <= self.chain_length:
            raise ConfigError(
                f"ack_k must be in [1, chain_length]; got k={self.ack_k}, "
                f"R={self.chain_length}"
            )
        if self.dep_wait_timeout <= 0 or self.op_timeout <= 0:
            raise ConfigError("timeouts must be positive")
        if self.max_retries < 1:
            raise ConfigError("max_retries must be >= 1")
        if self.backoff_multiplier < 1.0:
            raise ConfigError("backoff_multiplier must be >= 1.0")
        if self.max_backoff <= 0:
            raise ConfigError("max_backoff must be positive")
        if not 0.0 <= self.backoff_jitter < 1.0:
            raise ConfigError("backoff_jitter must be in [0, 1)")
        if self.op_deadline < 0:
            raise ConfigError("op_deadline must be >= 0 (0 = disabled)")
        if self.degraded_read_after < 1:
            raise ConfigError("degraded_read_after must be >= 1")
        if not 0 <= self.replication_degree <= len(self.sites):
            raise ConfigError(
                f"replication_degree must be in [0, len(sites)={len(self.sites)}]; "
                f"got {self.replication_degree} (0 = full replication)"
            )
        if self.num_shards < 1:
            raise ConfigError("num_shards must be >= 1")
        if self.batch_flush_interval <= 0:
            raise ConfigError("batch_flush_interval must be positive")
        if self.batch_max_entries < 1:
            raise ConfigError("batch_max_entries must be >= 1")
        if self.gc_interval <= 0:
            raise ConfigError("gc_interval must be positive")
        if self.stability not in ("notices", "clock"):
            raise ConfigError(
                f"stability must be 'notices' or 'clock'; got "
                f"{self.stability!r}"
            )
        if self.stability_interval <= 0:
            raise ConfigError("stability_interval must be positive")
        if self.stability == "clock" and self.protocol_batching:
            raise ConfigError(
                "stability='clock' is incompatible with protocol_batching: "
                "the clock plane has no notice streams to coalesce "
                "(choose one metadata plane)"
            )
        if self.stability == "clock" and self.metadata_gc:
            raise ConfigError(
                "stability='clock' is incompatible with metadata_gc: the "
                "clock plane keeps no stability-tracker entries to seal"
            )
        # Local import: config is imported by nearly everything, and the
        # kernelcore package must stay importable before repro.core.
        from repro.kernelcore import KERNEL_CHOICES

        if self.kernel not in KERNEL_CHOICES:
            raise ConfigError(
                f"kernel must be one of {KERNEL_CHOICES}; got {self.kernel!r}"
            )
        unknown = [m for m in self.mutations if m not in PROTOCOL_MUTATIONS]
        if unknown:
            raise ConfigError(
                f"unknown protocol mutation(s) {unknown}; "
                f"choose from {PROTOCOL_MUTATIONS}"
            )

    @property
    def is_geo(self) -> bool:
        return len(self.sites) > 1

    @property
    def is_partial(self) -> bool:
        """True when some site does NOT replicate some shard."""
        return 0 < self.replication_degree < len(self.sites)

    def placement(self) -> Optional["ShardCatalog"]:
        """The deployment's :class:`~repro.cluster.placement.ShardCatalog`,
        or None under full replication.

        None (rather than a degenerate catalog) is the gate every
        partial-replication branch checks, so the default configuration
        executes exactly the pre-catalog code paths — the golden-trace
        guarantee. Callers on hot paths cache the result.
        """
        if not self.is_partial:
            return None
        # Local import: config is a leaf module nearly everything imports.
        from repro.cluster.placement import shard_catalog

        return shard_catalog(self.sites, self.num_shards, self.replication_degree)

    def with_updates(self, **changes: object) -> "ChainReactionConfig":
        """A copy with the given fields replaced (re-validated)."""
        return dataclasses.replace(self, **changes)  # type: ignore[arg-type]
