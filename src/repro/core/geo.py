"""Geo-replication: one proxy per datacenter.

The proxy is the only component that talks across the WAN. The local
chain tails notify it when a write becomes DC-stable; for locally
originated writes it ships a :class:`RemoteUpdate` (value + the put's
dependency list) to every peer DC, and for remotely originated writes it
reports a :class:`GlobalAck` back to the origin.

On the receiving side, a remote update is injected into the local chain
**head** — so remote and local writes share one serialisation point per
key — but only after every dependency it carries is DC-stable locally
(when ``geo_causal_delivery`` is on). That gate is what makes a remote
reader unable to observe a write before the writes it causally depends
on; switching it off (DESIGN.md §6.4) reintroduces the anomalies that
experiment E10 counts.

A write acknowledged DC-stable by every datacenter is **globally
stable**; the proxy at the origin records the latency of both milestones
for experiment E7.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional, Set, Tuple

from repro.cluster.membership import RingView
from repro.core.batching import StabilityCoalescer, UpdateCoalescer
from repro.core.clockplane import GeoClockCore
from repro.core.config import ChainReactionConfig
from repro.core.messages import (
    ClockReport,
    ClockShip,
    Deps,
    GlobalAck,
    GlobalStableBatch,
    GlobalStableNotice,
    PutReply,
    PutRequest,
    RemoteUpdate,
    RemoteUpdateBatch,
    StabilityVector,
    StableEntries,
    TailStable,
)
from repro.errors import RemoteError, ReproError, RequestTimeout
from repro.net.actor import Actor
from repro.net.message import estimate_size
from repro.net.network import Address, Network
from repro.sim.hlc import HLCStamp
from repro.sim.kernel import Simulator
from repro.sim.process import Future, all_of, spawn, with_timeout
from repro.storage.version import VersionVector

__all__ = ["GeoProxy"]


class GeoProxy(Actor):  # repro: lint-ok(slots) — unslotted Actor base keeps the __dict__; one instance per site
    """Ships DC-stable writes across datacenters and applies inbound ones."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        site: str,
        all_sites: Tuple[str, ...],
        initial_view: RingView,
        config: ChainReactionConfig,
    ) -> None:
        super().__init__(sim, network, Address(site, "geoproxy"))
        self.site = site
        self.config = config
        self.view = initial_view
        self._peers = [Address(s, "geoproxy") for s in all_sites if s != site]
        #: shard→owners map under partial replication; None (the default,
        #: full replication) gates every placement-aware branch off
        self._catalog = config.placement()
        #: (key, version) → (sites yet to ack, origin put time)
        self._pending_global: Dict[Tuple[str, VersionVector], Tuple[Set[str], float]] = {}
        # metrics
        self.updates_shipped = 0
        self.updates_applied = 0
        self.duplicate_ships = 0
        # forwarded-operation service counters (partial replication): this
        # proxy acting as the owner-side entry point for remote clients
        self.forwarded_gets_served = 0
        self.forwarded_get_bytes = 0
        self.forwarded_puts_served = 0
        self._pending_forward_puts: Dict[int, Future] = {}
        self._forward_seq = 0
        #: (origin_put_at→applied-at-local-head) latencies, remote side
        self.visibility_samples: List[float] = []
        #: (origin_put_at→acked-by-every-DC) latencies, origin side
        self.global_stability_samples: List[float] = []
        self._shipped: Set[Tuple[str, VersionVector]] = set()
        #: per-key chain of in-flight remote applications (FIFO per key)
        self._key_apply_tail: Dict[str, Future] = {}
        #: updates handled since the last done-gate sweep of that table
        self._applies_since_sweep = 0
        #: batching-mode coalescers (None = unbatched per-write sends)
        self._update_coalescer: Optional[UpdateCoalescer] = None
        self._global_coalescer: Optional[StabilityCoalescer] = None
        if config.protocol_batching:
            self._update_coalescer = UpdateCoalescer(
                self,
                config.batch_flush_interval,
                config.batch_max_entries,
                self._send_update_batch,
            )
            self._global_coalescer = StabilityCoalescer(
                self,
                config.batch_flush_interval,
                config.batch_max_entries,
                self._send_global_batch,
            )
        #: clock-plane brain (config.stability == "clock"): hosts the
        #: site's floor aggregation, ship buffer and stability vectors;
        #: None on the notices plane
        self._clock: Optional[GeoClockCore] = None
        if config.stability == "clock":
            self._clock = GeoClockCore(self)

    def set_view(self, view: RingView) -> None:
        """Installed as a manager view listener by the datastore."""
        if view.epoch > self.view.epoch:
            self.view = view

    # ------------------------------------------------------------------
    # placement (partial replication)
    # ------------------------------------------------------------------
    def _peers_for(self, key: str) -> List[Address]:
        """Peer proxies that replicate ``key``'s shard.

        Full replication returns the shared peer list object itself, so
        the default path is bit-identical to the pre-placement code.
        """
        if self._catalog is None:
            return self._peers
        return [p for p in self._peers if self._catalog.owns(p.site, key)]

    def _prune_deps(self, deps: Deps, dst_site: str) -> Deps:
        """Dependency entries worth shipping to ``dst_site``.

        Under partial replication a destination only *checks* (and only
        can check) dependencies on shards it owns — its causal-delivery
        gate skips the rest, and reads of non-owned keys are forwarded to
        their primary owner's chain head, which is never behind. Entries
        for shards the destination doesn't replicate are therefore dead
        weight on the WAN; dropping them per destination is what bounds
        replication metadata to the shards a site holds (Xiang & Vaidya's
        share-bounded tracking). Returns the original object untouched
        when nothing prunes, so full replication keeps byte-identical
        messages (and their memoized-size sharing).
        """
        if self._catalog is None or not deps:
            return deps
        kept = {k: e for k, e in deps.items() if self._catalog.owns(dst_site, k)}
        if len(kept) == len(deps):
            return deps
        return kept

    # ------------------------------------------------------------------
    # outbound: local tail says a write is DC-stable
    # ------------------------------------------------------------------
    def on_tail_stable(self, msg: TailStable, src: Address) -> None:
        if self._clock is not None:
            self._clock.on_tail_stable(msg)
            return
        token = (msg.key, msg.version)
        if msg.origin_site != self.site:
            # Remote-origin write finished our chain: tell the origin.
            origin = Address(msg.origin_site, "geoproxy")
            self.send(origin, GlobalAck(key=msg.key, version=msg.version, site=self.site))
            return
        if token in self._shipped:
            # Repair re-stabilisation can re-announce a version.
            self.duplicate_ships += 1
            return
        self._shipped.add(token)
        self.updates_shipped += 1
        self.trace("geo", "ship", msg.key, version=str(msg.version))
        # Partial replication ships only to the shard's other owner sites
        # (full replication: every peer, as before).
        peers = self._peers_for(msg.key)
        if peers:
            self._pending_global[token] = ({p.site for p in peers}, msg.origin_put_at)
            if self._update_coalescer is not None:
                # Coalesced shipping: one shared RemoteUpdate object is
                # buffered for every peer; the flush window turns a
                # window's worth of them into one RemoteUpdateBatch per
                # peer (memoized element sizes are computed once). With a
                # catalog, per-destination dep pruning may differentiate
                # the copies, so each peer gets its own object.
                shared: Optional[RemoteUpdate] = None
                for peer in peers:
                    deps = self._prune_deps(msg.deps, peer.site)
                    if deps is msg.deps and shared is not None:
                        update = shared
                    else:
                        update = RemoteUpdate(
                            key=msg.key,
                            value=msg.value,
                            version=msg.version,
                            stamp=msg.stamp,
                            deps=deps,
                            origin_site=self.site,
                            origin_put_at=msg.origin_put_at,
                        )
                        if deps is msg.deps:
                            shared = update
                    self._update_coalescer.add(peer, update)
                return
            # Per-peer copies with identical deps are byte-identical;
            # size the first such copy on send and let the rest inherit
            # the memoized size. Pruned copies are sized individually.
            first: Optional[RemoteUpdate] = None
            for peer in peers:
                deps = self._prune_deps(msg.deps, peer.site)
                update = RemoteUpdate(
                    key=msg.key,
                    value=msg.value,
                    version=msg.version,
                    stamp=msg.stamp,
                    deps=deps,
                    origin_site=self.site,
                    origin_put_at=msg.origin_put_at,
                )
                if deps is msg.deps:
                    if first is None:
                        first = update
                    else:
                        update.copy_size_from(first)
                self.send(peer, update)
        else:
            self.global_stability_samples.append(self.sim.now - msg.origin_put_at)
            self._announce_global(msg.key, msg.version)

    def on_global_ack(self, msg: GlobalAck, src: Address) -> None:
        token = (msg.key, msg.version)
        pending = self._pending_global.get(token)
        if pending is None:
            return  # duplicate ack after completion
        waiting, origin_put_at = pending
        waiting.discard(msg.site)
        if not waiting:
            del self._pending_global[token]
            self.global_stability_samples.append(self.sim.now - origin_put_at)
            self._announce_global(msg.key, msg.version)

    def _announce_global(self, key: str, version: VersionVector) -> None:
        """Tell every owner DC (and our own chain members) the write is
        globally stable, so client dependency tables can prune it."""
        peers = self._peers_for(key)
        if self._global_coalescer is not None:
            for peer in peers:
                self._global_coalescer.add(peer, key, version)
            for server in self.view.chain_for(key):
                self._global_coalescer.add(self.view.address_of(server), key, version)
        else:
            for peer in peers:
                self.send(peer, GlobalStableNotice(key=key, version=version, fan_out=True))
            self._fan_out_global(key, version)
        # Globally stable writes need no duplicate-ship suppression any
        # more; dropping the token keeps proxy memory proportional to
        # in-flight writes rather than to history.
        self._shipped.discard((key, version))

    def _fan_out_global(self, key: str, version: VersionVector) -> None:
        first: Optional[GlobalStableNotice] = None
        for server in self.view.chain_for(key):
            notice = GlobalStableNotice(key=key, version=version)
            if first is None:
                first = notice
            else:
                notice.copy_size_from(first)
            self.send(self.view.address_of(server), notice)

    def on_global_stable_notice(self, msg: GlobalStableNotice, src: Address) -> None:
        if msg.fan_out:
            self._fan_out_global(msg.key, msg.version)

    def on_global_stable_batch(self, msg: GlobalStableBatch, src: Address) -> None:
        """Peer-proxy side of the batched fan-out: regroup per chain member.

        Entries arrive grouped by *origin* proxy; each local server only
        cares about the keys it replicates, so the batch is re-bucketed
        by chain membership and forwarded immediately (no second flush
        window — the WAN hop already paid the batching latency).
        """
        if not msg.fan_out:
            return
        buckets: Dict[Address, Dict[str, VersionVector]] = {}
        for key, version in msg.entries:
            for server in self.view.chain_for(key):
                addr = self.view.address_of(server)
                bucket = buckets.setdefault(addr, {})
                have = bucket.get(key)
                bucket[key] = version if have is None else have.merge(version)
        for addr, bucket in buckets.items():
            self.send(addr, GlobalStableBatch(entries=tuple(bucket.items())))

    # ------------------------------------------------------------------
    # batching emit hooks / lifecycle
    # ------------------------------------------------------------------
    def _send_update_batch(self, dst: Address, updates: Tuple[RemoteUpdate, ...]) -> None:
        self.send(dst, RemoteUpdateBatch(updates=updates))

    def _send_global_batch(self, dst: Address, entries: "StableEntries") -> None:
        # Peer proxies re-fan the entries to their own chains; local
        # chain members consume them directly.
        fan_out = dst.node == "geoproxy"
        self.send(dst, GlobalStableBatch(entries=entries, fan_out=fan_out))

    def on_recover(self) -> None:
        if self._update_coalescer is not None:
            self._update_coalescer.reset()
        if self._global_coalescer is not None:
            self._global_coalescer.reset()
        if self._clock is not None:
            self._clock.on_recover()
        super().on_recover()

    # ------------------------------------------------------------------
    # clock-plane traffic (config.stability == "clock")
    # ------------------------------------------------------------------
    def on_clock_report(self, msg: ClockReport, src: Address) -> None:
        if self._clock is not None:
            self._clock.on_clock_report(msg)

    def on_clock_ship(self, msg: ClockShip, src: Address) -> None:
        if self._clock is not None:
            self._clock.on_clock_ship(msg)

    def on_stability_vector(self, msg: StabilityVector, src: Address) -> None:
        if self._clock is not None:
            self._clock.on_stability_vector(msg)

    def _inject_clock(self, msg: RemoteUpdate) -> None:
        """Issue an admitted remote update into the local chain head.

        Same-key ordering reuses the notices plane's gate chain: the
        admission queue releases updates in global stamp order, but two
        same-key updates must also *arrive at the head* in that order,
        which the gate futures (plus per-link FIFO) guarantee.
        """
        gate = Future(self.sim)
        previous_gate = self._key_apply_tail.get(msg.key)
        self._key_apply_tail[msg.key] = gate
        spawn(
            self.sim,
            self._apply_remote_clock(msg, previous_gate, gate),
            name=f"remote:{msg.key}",
        )
        self._applies_since_sweep += 1
        if self._applies_since_sweep >= 256:
            self._applies_since_sweep = 0
            done = [k for k, g in self._key_apply_tail.items() if g.done()]
            for k in done:
                del self._key_apply_tail[k]

    def _apply_remote_clock(
        self, msg: RemoteUpdate, previous_gate: Optional[Future], gate: Future
    ) -> Iterator[Any]:
        # No dependency waits here — the admission gate already held the
        # update until the site's visible horizon passed its deps.
        try:
            if previous_gate is not None and not previous_gate.done():
                yield previous_gate
        finally:
            # Released: the gate-opening handle is dropped right here.
            self.sim.call_soon(gate.try_set_result, True).release()
        yield from self._inject_at_head(msg)
        self.updates_applied += 1
        self.trace("geo", "remote-apply", msg.key, origin=msg.origin_site)
        self.visibility_samples.append(self.sim.now - msg.origin_put_at)

    # ------------------------------------------------------------------
    # inbound: apply a remote update into the local chain
    # ------------------------------------------------------------------
    def on_remote_update(self, msg: RemoteUpdate, src: Address) -> None:
        # Same-key updates must be *injected* in arrival order: a
        # dependency-free write would otherwise overtake its same-key
        # predecessor and become visible before the predecessor's own
        # dependencies are satisfied here — a transitive causality leak.
        # Each update carries a gate future, resolved once its injection
        # has been issued (after its dependency waits); the next update
        # for the key waits on that gate. Dependency waits themselves run
        # concurrently, so ordering costs no pipeline stalls.
        gate = Future(self.sim)
        previous_gate = self._key_apply_tail.get(msg.key)
        self._key_apply_tail[msg.key] = gate
        spawn(
            self.sim,
            self._apply_remote(msg, previous_gate, gate),
            name=f"remote:{msg.key}",
        )
        # Periodically drop gates that have already opened: a done gate
        # is behaviourally identical to no gate, so pruning is invisible
        # to ordering but keeps the table sized to in-flight keys.
        self._applies_since_sweep += 1
        if self._applies_since_sweep >= 256:
            self._applies_since_sweep = 0
            done = [k for k, g in self._key_apply_tail.items() if g.done()]
            for k in done:
                del self._key_apply_tail[k]

    def on_remote_update_batch(self, msg: RemoteUpdateBatch, src: Address) -> None:
        """Unpack a coalesced shipment; in-batch order is arrival order."""
        updates = msg.updates
        if "batch_reorder" in self.config.mutations:
            # MUTATION (proving ground): unpack the flush window in
            # reverse. Two causally-ordered same-key writes coalesced
            # into one batch then enter the per-key gate chain
            # newer-first, making the remote DC apply (and serve) the
            # newer write while skipping its predecessor.
            updates = tuple(reversed(updates))
        for update in updates:
            self.on_remote_update(update, src)

    def _apply_remote(
        self, msg: RemoteUpdate, previous_gate: Optional[Future], gate: Future
    ) -> Iterator[Any]:
        try:
            if self.config.geo_causal_delivery and msg.deps:
                waits = [
                    spawn(
                        self.sim,
                        self._wait_dep_stable(dep_key, entry.version),
                        name=f"geo-dep:{dep_key}",
                    )
                    for dep_key, entry in msg.deps.items()
                    # Same-key order is already enforced by the gate chain
                    # below; waiting for the predecessor's DC-stability
                    # here would serialise the whole chain latency per
                    # update instead of pipelining it. Under partial
                    # replication, dependencies on shards this site does
                    # not own are not locally checkable — and need not
                    # be: local reads of those keys forward to the dep's
                    # primary owner, whose chain already serialised the
                    # dependency before this write existed.
                    if dep_key != msg.key
                    and (self._catalog is None or self._catalog.owns(self.site, dep_key))
                ]
                if waits:
                    yield all_of(self.sim, waits)
            if previous_gate is not None and not previous_gate.done():
                yield previous_gate
        finally:
            # Open the gate exactly when this update's injection is
            # issued (first attempt) — successors may then issue theirs;
            # per-link FIFO keeps the heads applying them in order.
            self.sim.call_soon(gate.try_set_result, True).release()
        yield from self._inject_at_head(msg)
        self.updates_applied += 1
        self.trace("geo", "remote-apply", msg.key, origin=msg.origin_site)
        self.visibility_samples.append(self.sim.now - msg.origin_put_at)

    # ------------------------------------------------------------------
    # forwarded client operations (partial replication, owner side)
    # ------------------------------------------------------------------
    def rpc_forward_get(self, key: str, src: Address) -> Future:
        """Serve a remote client's read of a locally-owned shard.

        Served at the local chain *head*: the head is never behind, so a
        forwarded read always observes every version this owner site has
        serialised — the property the relaxed dependency checking in
        :meth:`_apply_remote` (and the planes) relies on.
        """
        return spawn(self.sim, self._serve_forward_get(key), name=f"fwd-get:{key}")

    def _serve_forward_get(self, key: str) -> Iterator[Any]:
        head = self.view.address_of(self.view.chain_for(key)[0])
        reply = yield self.call(
            head, "get_fwd", key, timeout=self.config.op_timeout
        )
        self.forwarded_gets_served += 1
        self.forwarded_get_bytes += estimate_size(reply)
        return reply

    def rpc_forward_get_stable(self, key: str, src: Address) -> Future:
        """Snapshot-read leg for a non-owned shard: the primary's stable
        record plus the full dependency list of the write that produced
        it (the primary's record deps are never pruned — it admitted the
        write straight from the client's PutRequest)."""
        return spawn(
            self.sim, self._serve_forward_get_stable(key), name=f"fwd-snap:{key}"
        )

    def _serve_forward_get_stable(self, key: str) -> Iterator[Any]:
        head = self.view.address_of(self.view.chain_for(key)[0])
        reply = yield self.call(
            head, "get_stable", key, timeout=self.config.op_timeout
        )
        self.forwarded_gets_served += 1
        self.forwarded_get_bytes += estimate_size(reply)
        return reply

    def rpc_forward_put(self, payload: Dict[str, Any], src: Address) -> Future:
        """Apply a remote client's write through the local chain.

        All writes to a shard funnel through its primary owner's chain,
        so one head serialises the shard no matter where the writer
        lives — version assignment, dependency waits, and stability all
        run exactly the local-client path.
        """
        return spawn(
            self.sim,
            self._serve_forward_put(payload),
            name=f"fwd-put:{payload['key']}",
        )

    def _serve_forward_put(self, payload: Dict[str, Any]) -> Iterator[Any]:
        self._forward_seq += 1
        request_id = self._forward_seq
        fut = Future(self.sim)
        self._pending_forward_puts[request_id] = fut
        key = payload["key"]
        head = self.view.address_of(self.view.chain_for(key)[0])
        self.send(
            head,
            PutRequest(
                request_id=request_id,
                key=key,
                value=payload["value"],
                deps=payload["deps"],
                reply_to=self.address,
                is_delete=payload["is_delete"],
            ),
        )
        try:
            reply: PutReply = yield with_timeout(
                self.sim, fut, self.config.op_timeout, f"forward-put({key!r})"
            )
        finally:
            self._pending_forward_puts.pop(request_id, None)
        self.forwarded_puts_served += 1
        # A plain dict travels back over the RPC reply; the remote
        # session rebuilds its PutReply view from it.
        return {
            "ok": reply.ok,
            "error": reply.error,
            "version": reply.version,
            "index": reply.index,
            "chain_len": reply.chain_len,
            "hlc": reply.hlc,
        }

    def on_put_reply(self, msg: PutReply, src: Address) -> None:
        fut = self._pending_forward_puts.get(msg.request_id)
        if fut is not None:
            fut.try_set_result(msg)

    def _wait_dep_stable(self, key: str, version: VersionVector) -> Iterator[Any]:
        """Wait until the local DC has stabilised a dependency version."""
        deadline = self.sim.now + self.config.dep_wait_timeout
        attempt = max(self.config.dep_wait_timeout / 3.0, 0.05)
        while self.sim.now < deadline:
            remaining = deadline - self.sim.now
            tail = self.view.address_of(self.view.chain_for(key)[-1])
            try:
                yield self.call(
                    tail,
                    "wait_stable",
                    (key, version.entries()),
                    timeout=min(attempt, remaining),
                )
                return True
            except (RequestTimeout, RemoteError):
                continue
        return False

    def _inject_at_head(self, msg: RemoteUpdate) -> Iterator[Any]:
        payload = {
            "key": msg.key,
            "value": msg.value,
            "version": msg.version,
            "stamp": msg.stamp,
            "deps": msg.deps,
            "origin_site": msg.origin_site,
            "origin_put_at": msg.origin_put_at,
        }
        if isinstance(msg.hlc, HLCStamp):
            # Only the clock plane adds the key at all, so notices-plane
            # payload bytes (and the golden trace) are untouched.
            payload["hlc"] = msg.hlc
        for _attempt in range(self.config.max_retries):
            head = self.view.address_of(self.view.chain_for(msg.key)[0])
            try:
                yield self.call(head, "apply_remote", payload, timeout=self.config.op_timeout)
                return True
            except (RequestTimeout, RemoteError):
                yield self.config.client_retry_backoff
        return False
