"""ChainReaction — the paper's contribution.

Causal+ consistency from a chain-replication variant: k-ack writes,
prefix reads, DC-stability tracking, client-side dependency metadata
with collapse-on-put, and causally-delivered geo-replication.
"""

from repro.core.client import ChainClientSession
from repro.core.config import ChainReactionConfig
from repro.core.datastore import ChainReactionStore
from repro.core.geo import GeoProxy
from repro.core.messages import DepEntry, deps_size_bytes
from repro.core.node import ChainNode
from repro.core.stability import StabilityTracker

__all__ = [
    "ChainReactionConfig",
    "ChainReactionStore",
    "ChainClientSession",
    "ChainNode",
    "GeoProxy",
    "StabilityTracker",
    "DepEntry",
    "deps_size_bytes",
]
