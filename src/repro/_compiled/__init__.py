"""Loader for the optional mypyc-compiled kernel cores.

``python scripts/build_kernel.py`` compiles the three
:mod:`repro.kernelcore` modules — ``eventcore``, ``vvcore``,
``hlccore`` — with mypyc and drops the resulting extension modules
(plus mypyc's shared ``*__mypyc`` group library) into this directory.
The build compiles *flat* copies, so the extensions carry the top-level
names ``eventcore``/``vvcore``/``hlccore``: this package puts its own
directory on ``sys.path``, imports them, and re-exports each one under
its dotted ``repro._compiled.<name>`` alias so
:mod:`repro.sim.backend` can simply do
``from repro._compiled import eventcore``.

When no build is present the flat imports raise ``ImportError`` and the
backend selector reports the compiled kernel as unavailable — nothing
in the pure path ever depends on this package importing successfully.
Source parity is the build's contract: the extensions are compiled from
the same files the interpreter runs, and ``tests/test_kernel_backends``
pins the two byte-identical.
"""

import os
import sys

_HERE = os.path.dirname(os.path.abspath(__file__))
if _HERE not in sys.path:
    # Insert *after* the script directory so a repo checkout can never be
    # shadowed, but before site-packages so the freshly built extensions
    # win over any stale installed copies.
    sys.path.insert(1, _HERE)

import eventcore  # noqa: E402
import hlccore  # noqa: E402
import vvcore  # noqa: E402

for _mod in (eventcore, vvcore, hlccore):
    _file = getattr(_mod, "__file__", "") or ""
    if _file.endswith(".py"):
        # A plain .py masquerading as a build would silently report
        # "compiled" while running interpreted — refuse it.
        raise ImportError(
            f"repro._compiled found an interpreted module at {_file}; "
            "expected a mypyc extension. Rebuild with scripts/build_kernel.py."
        )
    sys.modules[f"{__name__}.{_mod.__name__}"] = _mod

__all__ = ["eventcore", "vvcore", "hlccore"]
