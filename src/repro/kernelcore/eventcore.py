"""Deterministic discrete-event simulation kernel (compilation-clean core).

The kernel owns virtual time. Everything in the reproduction — network
delivery, protocol timers, client think time — is expressed as callbacks
scheduled on a single :class:`Simulator` instance, so a run with a fixed
seed is exactly reproducible.

Events with equal timestamps fire in the order they were scheduled
(FIFO tie-break via a monotonically increasing sequence number), which
keeps executions deterministic even when many messages land on the same
instant.

This module is the shared source of both kernel backends: imported
as-is it is the pure-python backend; compiled by mypyc (see
``scripts/build_kernel.py``) it becomes ``repro._compiled.eventcore``.
It therefore follows the ``compiled-kernel-clean`` contract described
in :mod:`repro.kernelcore` — fully typed, no dynamic attribute access,
no module-level mutable state, and no refcount introspection.

Performance notes (this is the hottest loop in the repository — every
message hop and timer passes through it):

- The heap holds plain tuples, so sift comparisons stop at the unique
  ``seq`` element and run entirely in C — ``ScheduledEvent.__lt__`` is
  never dispatched. Two entry shapes coexist:
  ``(time, seq, event)`` for cancellable events and
  ``(time, seq, callback, args)`` for fire-and-forget events posted via
  :meth:`Simulator.post` / :meth:`Simulator.post_at`, which skip the
  handle allocation entirely (the network delivery path uses these).
- ``pending_events()`` is O(1): the simulator keeps a live counter
  updated on schedule/cancel/pop instead of scanning the heap.
- Lazily-cancelled entries are compacted away once they outnumber the
  live ones, so a workload that cancels most of its timers (RPC
  timeouts, usually) cannot grow the heap without bound.
- Fired handles are pooled and reused, but only when the scheduling
  site explicitly waived the handle via :meth:`ScheduledEvent.release`
  — see the class docstring for the ownership contract.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.errors import SimulationError

__all__ = ["DeliveryChooser", "Simulator", "ScheduledEvent"]

_heappush = heapq.heappush
_heappop = heapq.heappop

#: Below this heap size compaction is pointless churn.
_COMPACT_MIN_HEAP = 64

#: Upper bound on recycled handles kept per simulator.
_FREELIST_MAX = 1024


def _noop() -> None:
    """Callback parked on recycled handles; firing one is a kernel bug."""


class ScheduledEvent:
    """Handle for a scheduled callback; supports cancellation.

    Cancellation is lazy: the heap entry stays in place and is skipped
    when popped, which keeps ``cancel`` O(1). The owning simulator
    compacts the heap once cancelled entries dominate it.

    **Ownership.** Every handle returned by :meth:`Simulator.schedule`
    is *owned* by its caller: the kernel will never reuse it, so a
    stored handle stays valid (and ``cancel()``-able) forever. A caller
    that will not touch the handle again may waive ownership with
    :meth:`release`; once a released handle leaves the heap (fired, or
    popped after cancellation) the simulator parks it on a freelist and
    a later ``schedule`` call may hand it out again. The flag is an
    explicit contract rather than a refcount probe so both kernel
    backends — and any runtime without CPython refcount semantics —
    recycle identically.
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled", "owned", "_sim")

    time: float
    seq: int
    callback: Callable[..., Any]
    args: Tuple[Any, ...]
    cancelled: bool
    owned: bool
    _sim: Optional["Simulator"]

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[..., Any],
        args: Tuple[Any, ...],
        sim: "Optional[Simulator]" = None,
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        self.owned = True
        self._sim = sim

    def cancel(self) -> None:
        """Prevent the callback from firing. Safe to call more than once."""
        if self.cancelled:
            return
        self.cancelled = True
        if self._sim is not None:
            self._sim._note_cancel()
            self._sim = None

    def release(self) -> None:
        """Waive ownership: the kernel may pool and reuse this handle.

        Call exactly when the holder will never touch the handle again
        (no late ``cancel()`` through a stashed reference). Typical
        sites call it immediately at scheduling time
        (``sim.schedule(...).release()`` for fire-and-forget timers that
        still want a one-shot cancel window elsewhere) or right after a
        final ``cancel()``. Releasing after the event already fired is
        harmless — the handle simply isn't pooled.
        """
        self.owned = False

    def __lt__(self, other: "ScheduledEvent") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"<ScheduledEvent t={self.time:.6f} seq={self.seq} {state}>"


class DeliveryChooser:
    """Hook deciding *which* pending delivery runs next (schedule control).

    The heap fixes event order by ``(time, seq)``; a systematic explorer
    (:mod:`repro.analysis.explore`) instead wants to *choose* the next
    message delivery among all concurrently-pending ones. A chooser
    attached via :meth:`Simulator.set_delivery_chooser` is consulted by
    :meth:`Simulator.run_window` exactly when virtual time would
    otherwise advance (or the heap is empty): if the chooser has a
    pending delivery to release, it posts it at the *current* instant
    (``sim.post_at(sim.now, ...)``) and returns True, and the loop picks
    it up before any later-timestamped event fires. Timers therefore
    only fire once the chooser has drained everything it wants delivered
    at the current instant.

    ``run()``'s fast path never consults the chooser — the golden-trace
    configuration (no chooser attached) is byte-identical with this seam
    in place.
    """

    __slots__ = ()

    def release(self, sim: "Simulator") -> bool:
        """Post one chosen delivery at ``sim.now``; True if one was posted."""
        raise NotImplementedError


class Simulator:
    """A single-threaded discrete-event simulator with virtual time.

    Typical usage::

        sim = Simulator()
        sim.schedule(1.5, print, "fires at t=1.5")
        sim.run()

    Virtual time is a float in **seconds**. The simulator never sleeps on
    the wall clock; ``run`` simply drains the event heap.
    """

    __slots__ = (
        "_now",
        "_seq",
        "_heap",
        "_running",
        "_events_processed",
        "_pending",
        "_cancelled_in_heap",
        "_freelist",
        "_events_reused",
        "_chooser",
    )

    _now: float
    _seq: int
    _heap: List[Tuple[Any, ...]]
    _running: bool
    _events_processed: int
    _pending: int
    _cancelled_in_heap: int
    _freelist: List[ScheduledEvent]
    _events_reused: int
    #: duck-typed on purpose: an interpreted DeliveryChooser subclass
    #: must keep working when this class is the mypyc-compiled copy, so
    #: no native type check may be compiled into the attribute.
    _chooser: Any

    def __init__(self) -> None:
        self._now = 0.0
        self._seq = 0
        self._heap = []
        self._running = False
        self._events_processed = 0
        self._pending = 0
        self._cancelled_in_heap = 0
        self._freelist = []
        self._events_reused = 0
        self._chooser = None

    # ------------------------------------------------------------------
    # time
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Total number of callbacks executed so far (cancelled ones excluded)."""
        return self._events_processed

    def pending_events(self) -> int:
        """Number of not-yet-fired, not-cancelled events. O(1)."""
        return self._pending

    def set_delivery_chooser(self, chooser: Any) -> None:
        """Attach (or detach, with None) a :class:`DeliveryChooser`.

        Only :meth:`run_window` consults it; ``run()``'s fast path is
        untouched, so ordinary seeded runs are unaffected by the seam.
        """
        self._chooser = chooser

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule(
        self, delay: float, callback: Callable[..., Any], *args: Any
    ) -> ScheduledEvent:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule an event in the past (delay={delay})")
        return self.schedule_at(self._now + delay, callback, *args)

    def schedule_at(
        self, time: float, callback: Callable[..., Any], *args: Any
    ) -> ScheduledEvent:
        """Schedule ``callback(*args)`` at an absolute virtual time."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time} which is before now={self._now}"
            )
        seq = self._seq
        self._seq = seq + 1
        free = self._freelist
        if free:
            ev = free.pop()
            ev.time = time
            ev.seq = seq
            ev.callback = callback
            ev.args = args
            ev.cancelled = False
            ev.owned = True
            ev._sim = self
            self._events_reused += 1
        else:
            ev = ScheduledEvent(time, seq, callback, args, self)
        _heappush(self._heap, (time, seq, ev))
        self._pending += 1
        return ev

    def call_soon(self, callback: Callable[..., Any], *args: Any) -> ScheduledEvent:
        """Schedule ``callback(*args)`` at the current instant (after the
        currently-executing event and anything already queued for now)."""
        return self.schedule(0.0, callback, *args)

    def post(self, delay: float, callback: Callable[..., Any], *args: Any) -> None:
        """Fire-and-forget :meth:`schedule`: no handle, not cancellable.

        The hot paths (message delivery, process resumption) never cancel
        their events, so they use this to skip the handle allocation.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule an event in the past (delay={delay})")
        self.post_at(self._now + delay, callback, *args)

    def post_at(self, time: float, callback: Callable[..., Any], *args: Any) -> None:
        """Fire-and-forget :meth:`schedule_at`: no handle, not cancellable."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time} which is before now={self._now}"
            )
        seq = self._seq
        self._seq = seq + 1
        _heappush(self._heap, (time, seq, callback, args))
        self._pending += 1

    # ------------------------------------------------------------------
    # cancellation bookkeeping
    # ------------------------------------------------------------------
    def _note_cancel(self) -> None:
        self._pending -= 1
        self._cancelled_in_heap += 1
        heap = self._heap
        if (
            self._cancelled_in_heap * 2 > len(heap)
            and len(heap) >= _COMPACT_MIN_HEAP
        ):
            # Rebuild in place so a `run()` loop holding a reference to
            # the list keeps seeing the compacted heap.
            heap[:] = [e for e in heap if len(e) != 3 or not e[2].cancelled]
            heapq.heapify(heap)
            self._cancelled_in_heap = 0

    # ------------------------------------------------------------------
    # handle recycling
    # ------------------------------------------------------------------
    def _recycle(self, ev: ScheduledEvent) -> None:
        """Park a fired/cancelled handle on the freelist — only when its
        scheduling site waived ownership.

        A handle is reused only if :meth:`ScheduledEvent.release` was
        called on it — the holder's explicit promise that no reference
        survives through which a late ``cancel()`` could reach the
        recycled event. Unlike the refcount probe this replaces, the
        flag behaves identically under the interpreted and compiled
        backends (and any runtime whose refcounts differ from CPython's).
        """
        if not ev.owned and len(self._freelist) < _FREELIST_MAX:
            ev.callback = _noop
            ev.args = ()
            ev._sim = None
            self._freelist.append(ev)

    def event_pool_stats(self) -> Dict[str, int]:
        """Freelist gauges: handles parked, capacity, reuses served."""
        return {
            "free": len(self._freelist),
            "capacity": _FREELIST_MAX,
            "reused": self._events_reused,
        }

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def _fire(self, entry: Tuple[Any, ...]) -> None:
        """Advance the clock to ``entry`` and run its callback."""
        self._pending -= 1
        self._now = entry[0]
        self._events_processed += 1
        if len(entry) == 3:
            ev = entry[2]
            ev._sim = None
            ev.callback(*ev.args)
            self._recycle(ev)
        else:
            entry[2](*entry[3])

    def next_event_time(self) -> Optional[float]:
        """Timestamp of the next live event, or None if the heap is empty.

        Peeks past lazily-cancelled entries (popping and recycling them
        as a side effect, which only helps the next caller). This is the
        "earliest output" a shard reports to the parallel coordinator,
        so it must see through cancellation debris — a heap full of
        cancelled timers must not hold the global window back.
        """
        heap = self._heap
        while heap:
            entry = heap[0]
            if len(entry) == 3 and entry[2].cancelled:
                _heappop(heap)
                self._cancelled_in_heap -= 1
                self._recycle(entry[2])
                continue
            return entry[0]
        return None

    def run_window(self, bound: float) -> int:
        """Execute every event with timestamp **strictly below** ``bound``.

        The conservative parallel engine's inner step: a shard that has
        been promised no external input before ``bound`` may run exactly
        this far. The clock is *not* advanced to ``bound`` on return —
        it rests at the last executed event — so cross-shard envelopes
        landing at ``bound`` or later can still be injected via
        :meth:`post_at` before the next window.

        The bound is strict so that an envelope timestamped exactly at a
        window edge is never racing local events at the same instant:
        everything the shard executed is ``< bound``, everything
        injected is ``>= bound``, and the merged order is decided by the
        heap's (time, seq) key alone. Returns the number of events run.

        When a :class:`DeliveryChooser` is attached it is consulted
        whenever virtual time would advance past the current instant (or
        the heap is empty): pending chosen deliveries posted at ``now``
        run before any later-timestamped event.
        """
        if self._running:
            raise SimulationError(
                "simulator is not reentrant: run_window() called from a callback"
            )
        self._running = True
        executed = 0
        heap = self._heap
        pop = _heappop
        try:
            while True:
                entry: Optional[Tuple[Any, ...]] = None
                while heap:
                    head = heap[0]
                    if len(head) == 3 and head[2].cancelled:
                        ev = head[2]
                        pop(heap)
                        self._cancelled_in_heap -= 1
                        self._recycle(ev)
                        continue
                    entry = head
                    break
                chooser = self._chooser
                if chooser is not None and self._now < bound:
                    # Time would advance (or the heap drained): give the
                    # chooser a chance to inject a delivery at `now` first.
                    if (entry is None or entry[0] > self._now) and chooser.release(self):
                        continue
                if entry is None or entry[0] >= bound:
                    break
                pop(heap)
                self._fire(entry)
                executed += 1
            return executed
        finally:
            self._running = False

    def step(self) -> bool:
        """Execute the next event. Returns False if the heap is empty."""
        heap = self._heap
        while heap:
            entry = _heappop(heap)
            if len(entry) == 3:
                ev = entry[2]
                if ev.cancelled:
                    self._cancelled_in_heap -= 1
                    self._recycle(ev)
                    continue
            self._fire(entry)
            return True
        return False

    def run(
        self, until: Optional[float] = None, max_events: Optional[int] = None
    ) -> float:
        """Drain the event heap.

        Args:
            until: stop once virtual time would exceed this value; the
                clock is advanced to ``until`` on return.
            max_events: safety valve against runaway simulations; raises
                :class:`SimulationError` when exceeded.

        Returns:
            The virtual time at which the run stopped.
        """
        if self._running:
            raise SimulationError("simulator is not reentrant: run() called from a callback")
        self._running = True
        executed = 0
        heap = self._heap  # compaction rebuilds in place, so this stays valid
        pop = _heappop
        try:
            if until is None and max_events is None:
                # Fast path: no budget checks inside the inner loop.
                while heap:
                    entry = pop(heap)
                    if len(entry) == 3:
                        ev = entry[2]
                        if ev.cancelled:
                            self._cancelled_in_heap -= 1
                            self._recycle(ev)
                            continue
                        ev._sim = None
                        self._pending -= 1
                        self._now = entry[0]
                        self._events_processed += 1
                        ev.callback(*ev.args)
                        self._recycle(ev)
                    else:
                        self._pending -= 1
                        self._now = entry[0]
                        self._events_processed += 1
                        entry[2](*entry[3])
                return self._now
            while heap:
                entry = heap[0]
                if len(entry) == 3 and entry[2].cancelled:
                    ev = entry[2]
                    pop(heap)
                    self._cancelled_in_heap -= 1
                    self._recycle(ev)
                    continue
                if until is not None and entry[0] > until:
                    break
                pop(heap)
                self._fire(entry)
                executed += 1
                if max_events is not None and executed >= max_events:
                    raise SimulationError(
                        f"simulation exceeded max_events={max_events}; "
                        "likely a livelock (self-rescheduling event loop)"
                    )
            if until is not None and until > self._now:
                self._now = until
            return self._now
        finally:
            self._running = False
