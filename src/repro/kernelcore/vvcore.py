"""Version-vector entry math (compilation-clean core).

Pure functions over the *canonical entries tuple* — ``(dc, counter)``
pairs, sorted by datacenter id, zero counters elided — that backs
:class:`repro.storage.version.VersionVector`. The interpreted class
stays in ``storage/version.py`` (together with the intern pools, which
are module-level mutable state and therefore barred from this package);
its hot methods delegate here through rebindable module globals so the
compiled copy (``repro._compiled.vvcore``) can be swapped in at runtime.

Identity contract: :func:`merge_entries` and :func:`increment_entries`
return one of their *operand tuples* whenever the result equals it.
The shell maps "returned operand ``a``" to "return ``self``" (and ``b``
to ``other``), preserving the object-identity fast paths the memory
model depends on — merges against ZERO and already-dominating merges
allocate nothing in either backend.
"""

from __future__ import annotations

from typing import Tuple

__all__ = [
    "Entries",
    "get_entry",
    "total_entries",
    "increment_entries",
    "merge_entries",
    "dominates_entries",
    "entries_size_bytes",
]

#: canonical form: sorted by dc id, no zero counters
Entries = Tuple[Tuple[str, int], ...]


def get_entry(entries: Entries, dc: str) -> int:
    """Counter for ``dc``; missing entries are implicitly zero.

    Linear scan on purpose: real vectors have one entry per datacenter
    (single digits), where a scan over a tuple beats building any map.
    """
    for name, n in entries:
        if name == dc:
            return n
    return 0


def total_entries(entries: Entries) -> int:
    """Sum of all counters — the number of writes the version reflects."""
    total = 0
    for _, n in entries:
        total += n
    return total


def increment_entries(entries: Entries, dc: str) -> Entries:
    """Entries with ``dc``'s counter bumped by one (re-canonicalised)."""
    updated = dict(entries)
    updated[dc] = updated.get(dc, 0) + 1
    return tuple(sorted(updated.items()))


def merge_entries(a: Entries, b: Entries) -> Entries:
    """Pointwise maximum — the least upper bound under causality.

    Returns the operand tuple itself whenever it already is the least
    upper bound (``a`` when it dominates or equals, ``b`` when it does),
    so the shell can forward the corresponding *vector* without
    allocating. The comparison ladder mirrors ``VersionVector.merge``
    exactly; parity between backends depends on taking the same branch
    for the same inputs.
    """
    if not b or b == a:
        return a
    if not a:
        return b
    merged = dict(a)
    changed = False
    for dc, n in b:
        if n > merged.get(dc, 0):
            merged[dc] = n
            changed = True
    if not changed:
        return a
    if len(merged) == len(b):
        matches_b = True
        for dc, n in b:
            if merged[dc] != n:
                matches_b = False
                break
        if matches_b:
            return b
    return tuple(sorted(merged.items()))


def dominates_entries(a: Entries, b: Entries) -> bool:
    """True iff ``a`` ≥ ``b`` pointwise (reflexive)."""
    for dc, n in b:
        if get_entry(a, dc) < n:
            return False
    return True


def entries_size_bytes(entries: Entries) -> int:
    """Wire size: 4B count + one (4B dc-id + len + 8B counter) per entry."""
    size = 4
    for dc, _ in entries:
        size += 4 + len(dc) + 8
    return size
