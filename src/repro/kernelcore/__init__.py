"""Compilation-clean cores of the three hot modules.

The modules in this package hold the pure computation behind the
simulation kernel (:mod:`repro.kernelcore.eventcore`), version-vector
math (:mod:`repro.kernelcore.vvcore`), and hybrid-logical-clock
arithmetic (:mod:`repro.kernelcore.hlccore`).  They are written to a
stricter contract than the rest of the tree so one source can serve two
backends — imported directly (the pure backend, always available) or
ahead-of-time compiled by mypyc into ``repro._compiled`` (the opt-in
compiled backend built by ``scripts/build_kernel.py``):

- fully typed (``disallow_untyped_defs``-clean; enforced by mypy *and*
  the ``compiled-kernel-clean`` lint rule);
- no dynamic attribute tricks (``getattr``/``setattr``/``vars``/
  ``eval``/``exec``/``__dict__``) — native classes have fixed layouts;
- no module-level mutable containers — compiled and interpreted copies
  of a module would each own one, silently diverging (bounded caches
  like the vector intern pool therefore live in the interpreted shells,
  :mod:`repro.storage.version` / :mod:`repro.sim.hlc`, which both
  backends share);
- no ``sys.getrefcount`` or other CPython-refcount assumptions —
  refcounts differ under compiled code, so recycling eligibility is an
  explicit ownership flag on the handle instead.

Backend selection is :mod:`repro.sim.backend`; the semantics contract
("bit-identical traces from either backend") is pinned by the parity
suite in ``tests/test_kernel_backends.py``.
"""

from typing import Tuple

#: Valid values for ``ChainReactionConfig.kernel`` / ``--kernel`` /
#: ``REPRO_KERNEL``: ``auto`` prefers the compiled build when it is
#: importable, ``pure``/``compiled`` force one backend.
KERNEL_CHOICES: Tuple[str, ...] = ("auto", "pure", "compiled")

#: Module basenames this package contributes to the compiled build, in
#: dependency order — ``scripts/build_kernel.py`` compiles exactly these.
COMPILED_MODULES: Tuple[str, ...] = ("eventcore", "vvcore", "hlccore")

__all__ = ["KERNEL_CHOICES", "COMPILED_MODULES"]
