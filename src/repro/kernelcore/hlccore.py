"""Hybrid-logical-clock arithmetic (compilation-clean core).

The pure state transitions behind :class:`repro.sim.hlc.HybridClock`:
each takes the clock position ``(physical, logical)`` plus the current
wall quantum and returns the next position. The interpreted class stays
in ``sim/hlc.py`` (it owns the ``HLCStamp`` wire type, whose pickle
round-trip and ``NO_HLC`` singleton identity must hold across the
sharded engine's envelope boundary regardless of backend); its
``stamp``/``observe``/``peek`` methods delegate here through rebindable
module globals so the compiled copy (``repro._compiled.hlccore``) can
be swapped in at runtime.

All functions are integer-pure: quantization from float simulated time
happens once, in :func:`wall_quantum`, so both backends see identical
inputs — the stamp streams are bit-identical by construction.
"""

from __future__ import annotations

from typing import Tuple

__all__ = [
    "PHYSICAL_SCALE",
    "wall_quantum",
    "clock_tick",
    "clock_observe",
    "clock_peek",
]

#: physical quantum: microseconds of simulated time
PHYSICAL_SCALE = 1_000_000


def wall_quantum(now: float) -> int:
    """Quantize simulated seconds to the HLC physical component."""
    return int(now * PHYSICAL_SCALE)


def clock_tick(physical: int, logical: int, wall: int) -> Tuple[int, int]:
    """Advance for minting a stamp: catch up to the wall quantum, or tick
    the logical counter when the wall has not moved past the clock."""
    if wall > physical:
        return (wall, 0)
    return (physical, logical + 1)


def clock_observe(
    physical: int,
    logical: int,
    s_physical: int,
    s_logical: int,
    wall: int,
) -> Tuple[int, int]:
    """Merge a remote stamp ``(s_physical, s_logical)`` then catch up to
    the wall quantum. Never moves the clock backwards."""
    if s_physical > physical or (s_physical == physical and s_logical > logical):
        physical = s_physical
        logical = s_logical
    if wall > physical:
        return (wall, 0)
    return (physical, logical)


def clock_peek(physical: int, logical: int, wall: int) -> Tuple[int, int]:
    """Current position without consuming a logical tick."""
    if wall > physical:
        return (wall, 0)
    return (physical, logical)
