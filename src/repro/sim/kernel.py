"""Stable import surface of the discrete-event simulation kernel.

The implementation moved to :mod:`repro.kernelcore.eventcore` so one
compilation-clean source can serve two backends: imported directly (the
pure-python backend re-exported here, always available) or ahead-of-time
compiled by mypyc into ``repro._compiled.eventcore`` (opt-in; see
``scripts/build_kernel.py``).

This module always names the **pure** classes — it is the stable target
for annotations, subclassing (:class:`DeliveryChooser` in the schedule
explorer), and tests. Code that *constructs* a default simulator and
should honour the selected backend goes through
:func:`repro.sim.backend.new_simulator` instead of ``Simulator()``;
backend selection itself lives in :mod:`repro.sim.backend`.
"""

from __future__ import annotations

from repro.kernelcore.eventcore import DeliveryChooser, ScheduledEvent, Simulator

__all__ = ["DeliveryChooser", "Simulator", "ScheduledEvent"]
