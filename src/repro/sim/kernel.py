"""Deterministic discrete-event simulation kernel.

The kernel owns virtual time. Everything in the reproduction — network
delivery, protocol timers, client think time — is expressed as callbacks
scheduled on a single :class:`Simulator` instance, so a run with a fixed
seed is exactly reproducible.

Events with equal timestamps fire in the order they were scheduled
(FIFO tie-break via a monotonically increasing sequence number), which
keeps executions deterministic even when many messages land on the same
instant.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional

from repro.errors import SimulationError

__all__ = ["Simulator", "ScheduledEvent"]


class ScheduledEvent:
    """Handle for a scheduled callback; supports cancellation.

    Cancellation is lazy: the heap entry stays in place and is skipped
    when popped, which keeps ``cancel`` O(1).
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled")

    def __init__(self, time: float, seq: int, callback: Callable[..., Any], args: tuple):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the callback from firing. Safe to call more than once."""
        self.cancelled = True

    def __lt__(self, other: "ScheduledEvent") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"<ScheduledEvent t={self.time:.6f} seq={self.seq} {state}>"


class Simulator:
    """A single-threaded discrete-event simulator with virtual time.

    Typical usage::

        sim = Simulator()
        sim.schedule(1.5, print, "fires at t=1.5")
        sim.run()

    Virtual time is a float in **seconds**. The simulator never sleeps on
    the wall clock; ``run`` simply drains the event heap.
    """

    def __init__(self) -> None:
        self._now: float = 0.0
        self._seq: int = 0
        self._heap: List[ScheduledEvent] = []
        self._running = False
        self._events_processed: int = 0

    # ------------------------------------------------------------------
    # time
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Total number of callbacks executed so far (cancelled ones excluded)."""
        return self._events_processed

    def pending_events(self) -> int:
        """Number of not-yet-fired, not-cancelled events."""
        return sum(1 for ev in self._heap if not ev.cancelled)

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, callback: Callable[..., Any], *args: Any) -> ScheduledEvent:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule an event in the past (delay={delay})")
        return self.schedule_at(self._now + delay, callback, *args)

    def schedule_at(self, time: float, callback: Callable[..., Any], *args: Any) -> ScheduledEvent:
        """Schedule ``callback(*args)`` at an absolute virtual time."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time} which is before now={self._now}"
            )
        ev = ScheduledEvent(time, self._seq, callback, args)
        self._seq += 1
        heapq.heappush(self._heap, ev)
        return ev

    def call_soon(self, callback: Callable[..., Any], *args: Any) -> ScheduledEvent:
        """Schedule ``callback(*args)`` at the current instant (after the
        currently-executing event and anything already queued for now)."""
        return self.schedule(0.0, callback, *args)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Execute the next event. Returns False if the heap is empty."""
        while self._heap:
            ev = heapq.heappop(self._heap)
            if ev.cancelled:
                continue
            self._now = ev.time
            self._events_processed += 1
            ev.callback(*ev.args)
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Drain the event heap.

        Args:
            until: stop once virtual time would exceed this value; the
                clock is advanced to ``until`` on return.
            max_events: safety valve against runaway simulations; raises
                :class:`SimulationError` when exceeded.

        Returns:
            The virtual time at which the run stopped.
        """
        if self._running:
            raise SimulationError("simulator is not reentrant: run() called from a callback")
        self._running = True
        executed = 0
        try:
            while self._heap:
                ev = self._heap[0]
                if ev.cancelled:
                    heapq.heappop(self._heap)
                    continue
                if until is not None and ev.time > until:
                    break
                heapq.heappop(self._heap)
                self._now = ev.time
                self._events_processed += 1
                ev.callback(*ev.args)
                executed += 1
                if max_events is not None and executed >= max_events:
                    raise SimulationError(
                        f"simulation exceeded max_events={max_events}; "
                        "likely a livelock (self-rescheduling event loop)"
                    )
            if until is not None and until > self._now:
                self._now = until
        finally:
            self._running = False
        return self._now
