"""Deterministic hybrid logical clocks for the clock stability plane.

The clock plane (``ChainReactionConfig.stability == "clock"``) stamps
every write with a hybrid logical clock (HLC) value: a *physical*
component quantized from simulated time plus a *logical* counter that
breaks ties when several stamps land in the same physical quantum
(Kulkarni et al., and the Okapi datastore's stabilization scheme).
Everything here is driven off :class:`repro.sim.kernel.Simulator` time,
so stamps are bit-deterministic across runs and across the sharded
engine's worker counts.

Total order
-----------
Stamps order lexicographically by ``(physical, logical, origin)``.
``origin`` is the stamping entity (``"site:server"``) and is unique per
clock, so two stamps from *different* clocks never compare equal and a
single clock's stamps are strictly monotone — the order is total with
no ties, which the stability cut machinery relies on (``min`` over
stamp sets is unambiguous).

``NO_HLC``
----------
Messages shared between both planes carry an ``hlc`` field so the clock
plane can piggyback stamps without new message types on the hot path.
On the notices plane that field must be *invisible*: :data:`NO_HLC` is
a singleton placeholder whose :meth:`~_NoHLC.size_bytes` is ``0``, so
``net.message.estimate_size`` charges nothing for it and the golden
trace is byte-identical with the clock plane off.  It pickles back to
the module singleton so identity checks survive the sharded engine's
envelope boundary.
"""

from __future__ import annotations

from typing import Any, Iterable, Optional, Tuple

from repro.kernelcore import hlccore as _hlccore

__all__ = [
    "HLCStamp",
    "HLC_ZERO",
    "NO_HLC",
    "HybridClock",
    "just_below",
    "hlc_min",
    "hlc_or_none",
]

#: physical quantum: microseconds of simulated time (defined in hlccore
#: so both backends quantize identically)
_PHYSICAL_SCALE = _hlccore.PHYSICAL_SCALE

#: modeled wire size of a stamp: 8B physical + 2B logical + 2B origin id
_STAMP_WIRE_BYTES = 12

# Clock-arithmetic delegation: rebindable globals that repro.sim.backend
# points at the mypyc-compiled copy of the same functions
# (repro._compiled.hlccore) when the compiled backend is activated. The
# HLCStamp wire type and the NO_HLC singleton stay in this interpreted
# shell — their pickle round-trips and singleton identity must hold
# across the sharded engine's envelope boundary on either backend.
_wall_quantum = _hlccore.wall_quantum
_clock_tick = _hlccore.clock_tick
_clock_observe = _hlccore.clock_observe
_clock_peek = _hlccore.clock_peek


def _bind_kernel(core: Any) -> None:
    """Point the clock-math globals at ``core`` (pure or compiled hlccore)."""
    global _wall_quantum, _clock_tick, _clock_observe, _clock_peek
    _wall_quantum = core.wall_quantum
    _clock_tick = core.clock_tick
    _clock_observe = core.clock_observe
    _clock_peek = core.clock_peek


class HLCStamp:
    """An immutable hybrid logical clock value.

    Ordered by ``(physical, logical, origin)``; see the module docstring
    for why that order is total.  The wire-size model is a flat
    :data:`_STAMP_WIRE_BYTES` (origins are modeled as interned ids, not
    strings, matching how a real implementation would encode them).
    """

    __slots__ = ("physical", "logical", "origin")

    def __init__(self, physical: int, logical: int, origin: str) -> None:
        object.__setattr__(self, "physical", physical)
        object.__setattr__(self, "logical", logical)
        object.__setattr__(self, "origin", origin)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("HLCStamp is immutable")

    def key(self) -> Tuple[int, int, str]:
        return (self.physical, self.logical, self.origin)

    def size_bytes(self) -> int:
        return _STAMP_WIRE_BYTES

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, HLCStamp):
            return NotImplemented
        return (
            self.physical == other.physical
            and self.logical == other.logical
            and self.origin == other.origin
        )

    def __hash__(self) -> int:
        return hash((self.physical, self.logical, self.origin))

    def __lt__(self, other: "HLCStamp") -> bool:
        return self.key() < other.key()

    def __le__(self, other: "HLCStamp") -> bool:
        return self.key() <= other.key()

    def __gt__(self, other: "HLCStamp") -> bool:
        return self.key() > other.key()

    def __ge__(self, other: "HLCStamp") -> bool:
        return self.key() >= other.key()

    def __repr__(self) -> str:
        return f"HLC({self.physical},{self.logical},{self.origin})"

    def __reduce__(self) -> Tuple[type, Tuple[int, int, str]]:
        return (HLCStamp, (self.physical, self.logical, self.origin))


#: the bottom element: compares <= every real stamp
HLC_ZERO = HLCStamp(0, 0, "")


class _NoHLC:
    """Zero-size placeholder for ``hlc`` fields on the notices plane."""

    __slots__ = ()

    def size_bytes(self) -> int:
        return 0

    def __repr__(self) -> str:
        return "NO_HLC"

    def __bool__(self) -> bool:
        return False

    def __reduce__(self) -> Tuple[object, Tuple[object, ...]]:
        return (_restore_no_hlc, ())


NO_HLC = _NoHLC()


def _restore_no_hlc() -> _NoHLC:
    return NO_HLC


def hlc_or_none(value: object) -> Optional[HLCStamp]:
    """Map a message ``hlc`` field to a real stamp or ``None``."""

    return value if isinstance(value, HLCStamp) else None


def just_below(stamp: HLCStamp) -> HLCStamp:
    """A conservative predecessor of ``stamp``.

    There is no exact predecessor in HLC space, but the empty origin
    sorts below every real origin, so ``(physical, logical, "")`` is
    strictly below ``stamp`` (when ``stamp`` has a real origin) yet at
    or above every stamp with a smaller ``(physical, logical)`` prefix.
    Used to report "everything strictly before this in-flight write is
    covered" without over-advancing past concurrent same-quantum stamps
    from other origins — those compare above the empty origin only by
    their origin id, and under-advancing is always safe.
    """

    if not stamp.origin:
        return stamp
    return HLCStamp(stamp.physical, stamp.logical, "")


def hlc_min(stamps: Iterable[Optional[HLCStamp]]) -> Optional[HLCStamp]:
    """Minimum of the non-``None`` stamps, or ``None`` if there are none."""

    best: Optional[HLCStamp] = None
    for stamp in stamps:
        if stamp is None:
            continue
        if best is None or stamp < best:
            best = stamp
    return best


class HybridClock:
    """A per-entity HLC source driven by simulated time.

    ``stamp()`` mints a strictly increasing stamp; ``observe()`` merges
    a remote stamp (never moves backwards); ``peek()`` reads the current
    position without consuming a logical tick.  Every stamp minted
    after a ``peek()`` compares strictly greater than the peeked value,
    which is what lets an idle server report ``peek()`` as its
    low-stamp floor.
    """

    __slots__ = ("_sim", "origin", "_physical", "_logical", "max_skew")

    def __init__(self, sim: "SimClock", origin: str) -> None:
        self._sim = sim
        self.origin = origin
        self._physical = 0
        self._logical = 0
        #: max (clock physical - wall physical) seen, in quanta — the
        #: "HLC skew" gauge surfaced by metrics.protocol
        self.max_skew = 0

    def _wall(self) -> int:
        return _wall_quantum(self._sim.now)

    def _note_skew(self, wall: int) -> None:
        skew = self._physical - wall
        if skew > self.max_skew:
            self.max_skew = skew

    def stamp(self) -> HLCStamp:
        wall = self._wall()
        self._physical, self._logical = _clock_tick(
            self._physical, self._logical, wall
        )
        self._note_skew(wall)
        return HLCStamp(self._physical, self._logical, self.origin)

    def observe(self, stamp: object) -> None:
        if not isinstance(stamp, HLCStamp):
            return
        wall = self._wall()
        self._physical, self._logical = _clock_observe(
            self._physical,
            self._logical,
            stamp.physical,
            stamp.logical,
            wall,
        )
        self._note_skew(wall)

    def peek(self) -> HLCStamp:
        wall = self._wall()
        physical, logical = _clock_peek(self._physical, self._logical, wall)
        return HLCStamp(physical, logical, self.origin)


class SimClock:
    """Structural protocol for the ``sim`` argument: anything with ``now``."""

    __slots__ = ()

    now: float
