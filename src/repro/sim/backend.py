"""Runtime selection between the pure-python and compiled kernels.

The three hot modules live as compilation-clean sources in
:mod:`repro.kernelcore`; ``scripts/build_kernel.py`` optionally compiles
them with mypyc into :mod:`repro._compiled`. This module is the single
switch between the two:

- :func:`resolve_kernel` maps a requested choice (``auto``/``pure``/
  ``compiled``, from ``ChainReactionConfig.kernel``, ``--kernel`` or the
  ``REPRO_KERNEL`` environment variable) to a concrete backend. ``auto``
  prefers the compiled build when it is importable and falls back to
  pure; asking for ``compiled`` without a build is a hard
  :class:`~repro.errors.ConfigError` — silently falling back would make
  "I benchmarked the compiled kernel" unfalsifiable.
- :func:`activate_kernel` makes a backend *current*, process-wide: it
  rebinds the delegation globals inside the interpreted shells
  (:mod:`repro.storage.version`, :mod:`repro.sim.hlc`) and swaps the
  simulator factory used by :func:`new_simulator`.

Activation is process-global rather than per-instance because the hot
functions are reached through module globals precisely so the call sites
carry zero dispatch overhead; sharded workers re-activate from
``ExperimentSpec.kernel`` on startup, so every process in a run agrees.
Both backends are bit-identical by contract (pinned by
``tests/test_kernel_backends.py``), so switching mid-process changes
speed, never results.

Resolution order: explicit argument (when not ``auto``) → ``REPRO_KERNEL``
→ auto-detection.
"""

from __future__ import annotations

import os
from typing import Any, Optional, Tuple

from repro.errors import ConfigError
from repro.kernelcore import KERNEL_CHOICES
from repro.kernelcore import eventcore as _pure_eventcore
from repro.kernelcore import hlccore as _pure_hlccore
from repro.kernelcore import vvcore as _pure_vvcore

__all__ = [
    "ENV_VAR",
    "KERNEL_CHOICES",
    "activate_kernel",
    "active_kernel",
    "compiled_available",
    "new_simulator",
    "resolve_kernel",
]

#: environment override consulted when the explicit choice is ``auto``
ENV_VAR = "REPRO_KERNEL"

_active = "pure"
_simulator_factory: Any = _pure_eventcore.Simulator
_compiled_checked = False
_compiled_modules: Optional[Tuple[Any, Any, Any]] = None


def _load_compiled() -> Optional[Tuple[Any, Any, Any]]:
    """The compiled (eventcore, vvcore, hlccore) triple, or None.

    Memoized: import success cannot change within a process (the build
    either shipped its extension modules or it did not).
    """
    global _compiled_checked, _compiled_modules
    if _compiled_checked:
        return _compiled_modules
    _compiled_checked = True
    try:
        from repro._compiled import eventcore, hlccore, vvcore
    except ImportError:
        _compiled_modules = None
    else:
        _compiled_modules = (eventcore, vvcore, hlccore)
    return _compiled_modules


def compiled_available() -> bool:
    """True iff the mypyc build is importable in this environment."""
    return _load_compiled() is not None


def resolve_kernel(choice: Optional[str] = None) -> str:
    """Map a requested kernel choice to a concrete backend name.

    ``None`` means "no explicit choice" and behaves like ``auto``:
    consult ``REPRO_KERNEL``, then prefer the compiled build when
    importable. An explicit ``pure``/``compiled`` wins over the
    environment; ``compiled`` without a build raises
    :class:`~repro.errors.ConfigError` rather than degrading silently.
    """
    selected = choice if choice is not None else "auto"
    if selected not in KERNEL_CHOICES:
        raise ConfigError(
            f"kernel must be one of {KERNEL_CHOICES}; got {selected!r}"
        )
    if selected == "auto":
        env = os.environ.get(ENV_VAR, "").strip().lower()
        if env:
            if env not in KERNEL_CHOICES:
                raise ConfigError(
                    f"{ENV_VAR} must be one of {KERNEL_CHOICES}; got {env!r}"
                )
            selected = env
    if selected == "auto":
        return "compiled" if compiled_available() else "pure"
    if selected == "compiled" and not compiled_available():
        raise ConfigError(
            "kernel='compiled' requested but repro._compiled is not "
            "importable; build it with `python scripts/build_kernel.py` "
            "(requires the [compiled] extra: mypy/mypyc plus a C toolchain)"
        )
    return selected


def active_kernel() -> str:
    """The currently-activated backend name (``pure`` until activation)."""
    return _active


def new_simulator() -> Any:
    """A fresh :class:`Simulator` from the active backend.

    Default-construction sites (datastore, baseline deployments) route
    through this instead of naming the class so one activation switches
    every subsequently-built simulator.
    """
    return _simulator_factory()


def activate_kernel(choice: Optional[str] = None) -> str:
    """Resolve ``choice`` and make that backend current, process-wide.

    Idempotent and cheap when the resolved backend is already active.
    Returns the concrete backend name (``pure`` or ``compiled``).
    """
    global _active, _simulator_factory
    backend = resolve_kernel(choice)
    if backend == _active:
        return backend
    if backend == "compiled":
        modules = _load_compiled()
        if modules is None:  # pragma: no cover - resolve_kernel guards this
            raise ConfigError("compiled kernel vanished between resolve and activate")
        eventcore, vvcore, hlccore = modules
    else:
        eventcore, vvcore, hlccore = (
            _pure_eventcore,
            _pure_vvcore,
            _pure_hlccore,
        )
    # Local imports: version/hlc import kernelcore at module load; going
    # the other way at import time would cycle.
    from repro.sim import hlc as hlc_shell
    from repro.storage import version as version_shell

    version_shell._bind_kernel(vvcore)
    hlc_shell._bind_kernel(hlccore)
    _simulator_factory = eventcore.Simulator
    _active = backend
    return backend
