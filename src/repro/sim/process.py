"""Futures and generator-based processes on top of the simulation kernel.

Protocol *servers* in this codebase are event-driven actors (they react to
messages), but *clients* and *workload drivers* read much more naturally
as sequential code. A :class:`Process` wraps a generator and drives it on
the simulator:

- ``yield some_future``   → suspend until the future resolves; the
  future's value is sent back into the generator (exceptions are thrown
  into it, so ``try/except`` works as expected).
- ``yield 0.25``          → sleep for 0.25 virtual seconds.
- ``return value``        → resolves the process's own future.

A :class:`Future` is single-assignment: it resolves exactly once, with
either a value or an exception, and then notifies callbacks in
registration order at the *same* virtual instant.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Iterable, List, Optional

from repro.errors import RequestTimeout, SimulationError
from repro.sim.kernel import ScheduledEvent, Simulator

__all__ = ["Future", "Process", "all_of", "any_of", "n_of", "sleep_future", "with_timeout"]

_PENDING = object()


class Future:
    """Single-assignment container for a value produced later in virtual time."""

    __slots__ = ("_sim", "_value", "_exception", "_callbacks", "_resolved_at")

    def __init__(self, sim: Simulator) -> None:
        self._sim = sim
        self._value: Any = _PENDING
        self._exception: Optional[BaseException] = None
        self._callbacks: List[Callable[["Future"], None]] = []
        self._resolved_at: Optional[float] = None

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    def done(self) -> bool:
        return self._value is not _PENDING or self._exception is not None

    def succeeded(self) -> bool:
        return self._value is not _PENDING

    def failed(self) -> bool:
        return self._exception is not None

    @property
    def resolved_at(self) -> Optional[float]:
        """Virtual time at which the future resolved, or None if pending."""
        return self._resolved_at

    def result(self) -> Any:
        """Return the value, re-raising a stored exception. Must be done."""
        if self._exception is not None:
            raise self._exception
        if self._value is _PENDING:
            raise SimulationError("result() called on a pending future")
        return self._value

    def exception(self) -> Optional[BaseException]:
        return self._exception

    # ------------------------------------------------------------------
    # resolution
    # ------------------------------------------------------------------
    def set_result(self, value: Any) -> None:
        if self.done():
            raise SimulationError("future already resolved")
        self._value = value
        self._resolved_at = self._sim.now
        self._fire()

    def set_exception(self, exc: BaseException) -> None:
        if self.done():
            raise SimulationError("future already resolved")
        self._exception = exc
        self._resolved_at = self._sim.now
        self._fire()

    def try_set_result(self, value: Any) -> bool:
        """Resolve if still pending; returns whether this call resolved it."""
        if self.done():
            return False
        self.set_result(value)
        return True

    def try_set_exception(self, exc: BaseException) -> bool:
        if self.done():
            return False
        self.set_exception(exc)
        return True

    def add_callback(self, fn: Callable[["Future"], None]) -> None:
        """Run ``fn(self)`` when resolved (immediately if already done)."""
        if self.done():
            fn(self)
        else:
            self._callbacks.append(fn)

    def _fire(self) -> None:
        callbacks, self._callbacks = self._callbacks, []
        for fn in callbacks:
            fn(self)


def sleep_future(sim: Simulator, delay: float) -> Future:
    """A future that resolves (to None) after ``delay`` virtual seconds."""
    fut = Future(sim)
    sim.post(delay, fut.try_set_result, None)
    return fut


def all_of(sim: Simulator, futures: Iterable[Future]) -> Future:
    """Resolve with the list of all results once every input resolves.

    Fails fast with the first exception among the inputs.
    """
    futures = list(futures)
    out = Future(sim)
    if not futures:
        out.set_result([])
        return out
    remaining = [len(futures)]

    def on_done(_fut: Future) -> None:
        if out.done():
            return
        if _fut.failed():
            out.try_set_exception(_fut.exception())  # type: ignore[arg-type]
            return
        remaining[0] -= 1
        if remaining[0] == 0:
            out.set_result([f.result() for f in futures])

    for f in futures:
        f.add_callback(on_done)
    return out


def any_of(sim: Simulator, futures: Iterable[Future]) -> Future:
    """Resolve with the first result (or first exception) among the inputs."""
    futures = list(futures)
    if not futures:
        raise SimulationError("any_of() needs at least one future")
    out = Future(sim)

    def on_done(_fut: Future) -> None:
        if out.done():
            return
        if _fut.failed():
            out.try_set_exception(_fut.exception())  # type: ignore[arg-type]
        else:
            out.try_set_result(_fut.result())

    for f in futures:
        f.add_callback(on_done)
    return out


def n_of(sim: Simulator, futures: Iterable[Future], n: int) -> Future:
    """Resolve with the first ``n`` results, in completion order.

    Fails once enough inputs have failed that ``n`` successes are
    impossible — the quorum-gathering primitive.
    """
    futures = list(futures)
    if n < 0 or n > len(futures):
        raise SimulationError(f"cannot take {n} of {len(futures)} futures")
    out = Future(sim)
    if n == 0:
        out.set_result([])
        return out
    succeeded: List[Any] = []
    failures = [0]
    max_failures = len(futures) - n

    def on_done(_fut: Future) -> None:
        if out.done():
            return
        if _fut.failed():
            failures[0] += 1
            if failures[0] > max_failures:
                out.try_set_exception(_fut.exception())  # type: ignore[arg-type]
            return
        succeeded.append(_fut.result())
        if len(succeeded) == n:
            out.try_set_result(list(succeeded))

    for f in futures:
        f.add_callback(on_done)
    return out


def with_timeout(sim: Simulator, fut: Future, timeout: float, message: str = "") -> Future:
    """Wrap ``fut`` with a deadline; fails with :class:`RequestTimeout` if late."""
    out = Future(sim)
    timer: ScheduledEvent = sim.schedule(
        timeout,
        lambda: out.try_set_exception(
            RequestTimeout(message or f"timed out after {timeout}s")
        ),
    )

    def on_done(_fut: Future) -> None:
        timer.cancel()
        # Last touch of the handle: let the kernel pool it. (If the
        # timer fired first this is a harmless no-op — see
        # ScheduledEvent.release.)
        timer.release()
        if _fut.failed():
            out.try_set_exception(_fut.exception())  # type: ignore[arg-type]
        else:
            out.try_set_result(_fut.result())

    fut.add_callback(on_done)
    return out


class Process(Future):
    """A generator driven over virtual time; itself a future for its return value.

    The generator may yield:

    - a :class:`Future` — suspend until it resolves,
    - an ``int``/``float`` — sleep that many virtual seconds,
    - ``None`` — yield control for one zero-delay scheduling round.
    """

    __slots__ = ("_gen", "_name")

    def __init__(self, sim: Simulator, gen: Generator[Any, Any, Any], name: str = "") -> None:
        super().__init__(sim)
        self._gen = gen
        self._name = name or getattr(gen, "__name__", "process")
        sim.post(0.0, self._advance, None, None)

    @property
    def name(self) -> str:
        return self._name

    def _advance(self, value: Any, exc: Optional[BaseException]) -> None:
        if self.done():
            return  # interrupted
        try:
            if exc is not None:
                yielded = self._gen.throw(exc)
            else:
                yielded = self._gen.send(value)
        except StopIteration as stop:
            self.try_set_result(stop.value)
            return
        except BaseException as err:  # noqa: BLE001 - propagate via future
            self.try_set_exception(err)
            return
        self._wait_on(yielded)

    def _wait_on(self, yielded: Any) -> None:
        if yielded is None:
            self._sim.post(0.0, self._advance, None, None)
        elif isinstance(yielded, Future):
            yielded.add_callback(self._on_future)
        elif isinstance(yielded, (int, float)):
            self._sim.post(float(yielded), self._advance, None, None)
        else:
            self._advance(
                None,
                SimulationError(
                    f"process {self._name!r} yielded unsupported value {yielded!r}"
                ),
            )

    def _on_future(self, fut: Future) -> None:
        if fut.failed():
            self._advance(None, fut.exception())
        else:
            self._advance(fut.result(), None)

    def interrupt(self, exc: Optional[BaseException] = None) -> None:
        """Stop the process; its future fails with ``exc`` (or GeneratorExit)."""
        if self.done():
            return
        self._gen.close()
        self.try_set_exception(exc or SimulationError(f"process {self._name!r} interrupted"))


def spawn(sim: Simulator, gen: Generator[Any, Any, Any], name: str = "") -> Process:
    """Convenience wrapper: ``spawn(sim, my_generator())``."""
    return Process(sim, gen, name=name)
