"""Deterministic random-number streams for simulations.

A simulation touches randomness in many places (network latency, key
choice, think time, failure injection). If they all share one
``random.Random``, adding a draw in one component perturbs every other
component and breaks run-to-run comparability. :class:`RngRegistry`
hands each component its own stream, derived deterministically from the
root seed and a stable label.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict

__all__ = ["RngRegistry", "derive_seed"]


def derive_seed(root_seed: int, label: str) -> int:
    """Derive a 64-bit child seed from a root seed and a stable label."""
    digest = hashlib.sha256(f"{root_seed}:{label}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class RngRegistry:
    """Factory for labelled, independent, reproducible random streams.

    The same ``(root_seed, label)`` pair always yields a stream that
    produces the same sequence, regardless of creation order.
    """

    __slots__ = ("root_seed", "_streams")

    def __init__(self, root_seed: int = 0) -> None:
        self.root_seed = root_seed
        self._streams: Dict[str, random.Random] = {}

    def stream(self, label: str) -> random.Random:
        """Return the stream for ``label``, creating it on first use."""
        rng = self._streams.get(label)
        if rng is None:
            rng = random.Random(derive_seed(self.root_seed, label))
            self._streams[label] = rng
        return rng

    def fork(self, label: str) -> "RngRegistry":
        """A child registry whose streams are independent of the parent's."""
        return RngRegistry(derive_seed(self.root_seed, f"fork:{label}"))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        # Sorts distinct stream-name strings (total order, repr only).
        return f"RngRegistry(root_seed={self.root_seed}, streams={sorted(self._streams)})"  # repro: lint-ok(sort-tie-identity)
