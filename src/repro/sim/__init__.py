"""Discrete-event simulation substrate.

Public surface:

- :class:`~repro.sim.kernel.Simulator` — the virtual-time event loop.
- :class:`~repro.sim.process.Future` / :class:`~repro.sim.process.Process`
  — asynchronous results and generator-based sequential processes.
- :class:`~repro.sim.rng.RngRegistry` — labelled deterministic RNG streams.
- :mod:`~repro.sim.backend` — selection between the pure-python kernel
  and the opt-in mypyc-compiled build (``activate_kernel`` /
  ``active_kernel`` / ``compiled_available`` / ``new_simulator``).
"""

from repro.sim.backend import (
    activate_kernel,
    active_kernel,
    compiled_available,
    new_simulator,
)
from repro.sim.kernel import ScheduledEvent, Simulator
from repro.sim.process import (
    Future,
    Process,
    all_of,
    any_of,
    n_of,
    sleep_future,
    spawn,
    with_timeout,
)
from repro.sim.rng import RngRegistry, derive_seed

__all__ = [
    "Simulator",
    "ScheduledEvent",
    "Future",
    "Process",
    "spawn",
    "all_of",
    "any_of",
    "n_of",
    "sleep_future",
    "with_timeout",
    "RngRegistry",
    "derive_seed",
    "activate_kernel",
    "active_kernel",
    "compiled_available",
    "new_simulator",
]
