"""Exception hierarchy for the ChainReaction reproduction.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch one type at the API boundary. Protocol-level failures
that a real deployment would surface to clients (timeouts, unavailable
chains) get their own subclasses because benchmark harnesses and tests
need to tell them apart.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "SimulationError",
    "NetworkError",
    "AddressUnknownError",
    "RequestTimeout",
    "RemoteError",
    "ClusterError",
    "ChainUnavailableError",
    "NotResponsibleError",
    "StorageError",
    "VersionConflictError",
    "CheckerError",
    "HistoryViolation",
    "ConfigError",
]


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class SimulationError(ReproError):
    """Misuse of the discrete-event kernel (past scheduling, reentrancy, livelock)."""


class NetworkError(ReproError):
    """Message could not be delivered (partition, dropped link, dead actor)."""


class AddressUnknownError(NetworkError):
    """Destination address was never registered with the network."""


class RequestTimeout(NetworkError):
    """An RPC did not receive a response within its deadline."""


class RemoteError(NetworkError):
    """The remote side of an RPC raised an error while handling the request."""


class ClusterError(ReproError):
    """Cluster-level failures: membership, placement, reconfiguration."""


class ChainUnavailableError(ClusterError):
    """No live replica chain exists for the requested key."""


class NotResponsibleError(ClusterError):
    """A server received a request for a key outside the chains it serves."""


class StorageError(ReproError):
    """Local store failures."""


class VersionConflictError(StorageError):
    """A conditional update observed a newer version than expected."""


class CheckerError(ReproError):
    """The consistency checker was fed a malformed history."""


class HistoryViolation(CheckerError):
    """A recorded history violates the consistency model being checked.

    Raised only in ``strict`` mode; the default checker API returns the
    violations as data so tests and benchmarks can count them.
    """


class ConfigError(ReproError):
    """Invalid experiment or protocol configuration."""
