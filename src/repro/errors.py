"""Exception hierarchy for the ChainReaction reproduction.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch one type at the API boundary. Below the root the
hierarchy splits along the axis that matters to a client retry layer:

- :class:`TransientError` — the operation *may* succeed if reissued
  (timeouts, unreachable replicas, chains mid-reconfiguration). All
  transient errors carry ``retryable = True``; the client library's
  :class:`~repro.core.retry.RetryPolicy` keys off exactly this flag.
- :class:`PermanentError` — reissuing the identical request cannot
  help (misconfiguration, unsupported operation, closed session,
  malformed history). ``retryable = False``.

Orthogonally, the *category* classes (:class:`NetworkError`,
:class:`ClusterError`, :class:`StorageError`, :class:`CheckerError`)
group errors by subsystem, as before; concrete errors inherit both a
disposition and a category (e.g. ``RequestTimeout(TransientError,
NetworkError)``), so both ``except TransientError`` and ``except
NetworkError`` keep working.

:class:`RemoteError` is the one class whose disposition is decided at
runtime: the RPC layer copies the *remote* exception's ``retryable``
flag onto the wire (see ``RpcResponse.retryable``) and rebuilds it on
the client side, so a head rejecting a put because it is mid-sync
(transient) retries, while a permanent remote failure does not.
"""

from __future__ import annotations

from typing import ClassVar

__all__ = [
    "ReproError",
    "TransientError",
    "PermanentError",
    "SimulationError",
    "NetworkError",
    "AddressUnknownError",
    "RequestTimeout",
    "ReplicaUnavailable",
    "RemoteError",
    "ClusterError",
    "ChainUnavailableError",
    "NotResponsibleError",
    "StorageError",
    "VersionConflictError",
    "CheckerError",
    "HistoryViolation",
    "ConfigError",
    "UnsupportedOperationError",
    "SessionClosedError",
]


class ReproError(Exception):
    """Base class for all errors raised by this library.

    ``retryable`` is the contract with the client retry layer: True
    means reissuing the same request may succeed (the default for
    :class:`TransientError` subclasses), False means it cannot.
    """

    retryable: ClassVar[bool] = False


class TransientError(ReproError):
    """The operation failed now but may succeed if retried."""

    retryable = True


class PermanentError(ReproError):
    """Retrying the identical request cannot succeed."""

    retryable = False


# ----------------------------------------------------------------------
# subsystem categories (disposition-neutral; combined via multiple
# inheritance by the concrete errors below)
# ----------------------------------------------------------------------
class NetworkError(ReproError):
    """Message could not be delivered (partition, dropped link, dead actor)."""


class ClusterError(ReproError):
    """Cluster-level failures: membership, placement, reconfiguration."""


class StorageError(ReproError):
    """Local store failures."""


class CheckerError(PermanentError):
    """The consistency checker was fed a malformed history."""


# ----------------------------------------------------------------------
# concrete errors
# ----------------------------------------------------------------------
class SimulationError(PermanentError):
    """Misuse of the discrete-event kernel (past scheduling, reentrancy, livelock)."""


class AddressUnknownError(PermanentError, NetworkError):
    """Destination address was never registered with the network."""


class RequestTimeout(TransientError, NetworkError):
    """An RPC did not receive a response within its deadline."""


class ReplicaUnavailable(TransientError, NetworkError):
    """The replica cannot serve the request right now (crashed endpoint,
    mid-sync server, or chain position lost in a reconfiguration)."""


class RemoteError(TransientError, NetworkError):
    """The remote side of an RPC raised an error while handling the request.

    The remote exception's ``retryable`` disposition travels back over
    the wire, so ``RemoteError`` instances carry it per instance rather
    than per class.
    """

    def __init__(self, message: str = "", retryable: bool = True) -> None:
        super().__init__(message)
        self.retryable = retryable  # type: ignore[misc]


class ChainUnavailableError(TransientError, ClusterError):
    """No live replica chain exists for the requested key."""


class NotResponsibleError(TransientError, ClusterError):
    """A server received a request for a key outside the chains it serves."""


class VersionConflictError(PermanentError, StorageError):
    """A conditional update observed a newer version than expected."""


class HistoryViolation(CheckerError):
    """A recorded history violates the consistency model being checked.

    Raised only in ``strict`` mode; the default checker API returns the
    violations as data so tests and benchmarks can count them.
    """


class ConfigError(PermanentError):
    """Invalid experiment or protocol configuration."""


class UnsupportedOperationError(PermanentError):
    """The protocol does not implement this optional operation.

    Callers should consult :attr:`repro.api.Datastore.capabilities`
    instead of probing with try/except.
    """


class SessionClosedError(PermanentError):
    """An operation was issued on a session after ``close()``."""
