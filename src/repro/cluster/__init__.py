"""Cluster substrate: consistent-hash placement, membership, failure injection."""

from repro.cluster.failure import CrashEvent, FailureInjector, PartitionEvent
from repro.cluster.membership import ClusterManager, Heartbeat, RingView, ViewChange
from repro.cluster.ring import HashRing, chain_positions
from repro.cluster.server_base import RingServer

__all__ = [
    "HashRing",
    "chain_positions",
    "RingView",
    "ClusterManager",
    "Heartbeat",
    "ViewChange",
    "RingServer",
    "FailureInjector",
    "CrashEvent",
    "PartitionEvent",
]
