"""Shared behaviour for ring-placed storage servers.

Every protocol's server — ChainReaction's and the baselines' — stores
records in a :class:`~repro.storage.store.VersionedStore`, heartbeats to
the datacenter's :class:`~repro.cluster.membership.ClusterManager`, and
tracks the current :class:`~repro.cluster.membership.RingView`. This
base class owns those mechanics; protocol subclasses override
:meth:`on_view_change` for their reconfiguration/repair logic and add
their own message handlers.
"""

from __future__ import annotations

from typing import List, Optional

from repro.cluster.membership import Heartbeat, RingView, ViewChange
from repro.cluster.ring import chain_positions
from repro.errors import NotResponsibleError
from repro.net.actor import Actor
from repro.net.network import Address, Network
from repro.sim.kernel import Simulator
from repro.storage.merge import ConflictResolver
from repro.storage.store import VersionedStore

__all__ = ["RingServer"]


class RingServer(Actor):
    """A storage server placed on the consistent-hash ring."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        site: str,
        name: str,
        initial_view: RingView,
        resolver: Optional[ConflictResolver] = None,
        service_time: float = 0.0,
    ):
        super().__init__(sim, network, Address(site, name))
        self.site = site
        self.name = name
        self.service_time = service_time
        self.view = initial_view
        self.store = VersionedStore(resolver)
        self._manager = Address(site, "manager")
        self._heartbeat_interval = 0.05
        self._start_heartbeats()

    # ------------------------------------------------------------------
    # heartbeating
    # ------------------------------------------------------------------
    def _start_heartbeats(self) -> None:
        self.set_timer(self._heartbeat_interval, self._heartbeat_tick)

    def _heartbeat_tick(self) -> None:
        self.send(self._manager, Heartbeat(server=self.name, epoch=self.view.epoch))
        self.set_timer(self._heartbeat_interval, self._heartbeat_tick)

    def on_recover(self) -> None:
        self._start_heartbeats()

    # ------------------------------------------------------------------
    # placement helpers
    # ------------------------------------------------------------------
    def chain_for(self, key: str) -> List[str]:
        return self.view.chain_for(key)

    def my_position(self, key: str) -> int:
        """This server's chain index for ``key`` (0 = head).

        Raises :class:`NotResponsibleError` if the server is not in the
        key's chain under its current view — a stale-routing signal the
        client library reacts to by refreshing its view.
        """
        pos = chain_positions(self.chain_for(key), self.name)
        if pos is None:
            raise NotResponsibleError(
                f"{self.address} not in chain for {key!r} at epoch {self.view.epoch}"
            )
        return pos

    def is_head(self, key: str) -> bool:
        return self.my_position(key) == 0

    def is_tail(self, key: str) -> bool:
        return self.my_position(key) == len(self.chain_for(key)) - 1

    def successor(self, key: str) -> Optional[Address]:
        """Next server down the chain, or None at the tail."""
        chain = self.chain_for(key)
        pos = self.my_position(key)
        if pos == len(chain) - 1:
            return None
        return self.view.address_of(chain[pos + 1])

    def predecessor(self, key: str) -> Optional[Address]:
        chain = self.chain_for(key)
        pos = self.my_position(key)
        if pos == 0:
            return None
        return self.view.address_of(chain[pos - 1])

    # ------------------------------------------------------------------
    # view changes
    # ------------------------------------------------------------------
    def on_view_change(self, msg: ViewChange, src: Address) -> None:
        assert msg.view is not None
        if msg.view.epoch <= self.view.epoch:
            return  # stale publish
        old, self.view = self.view, msg.view
        self.handle_view_change(old, msg.view)

    def handle_view_change(self, old: RingView, new: RingView) -> None:
        """Protocol hook: reconcile chain state after membership changed."""
