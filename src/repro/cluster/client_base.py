"""Shared scaffolding for client sessions of ring-placed deployments.

Every protocol's client session — ChainReaction's and the baselines' —
shares the same survival kit, factored here so fault tolerance is a
property of the *harness*, not of one protocol:

- addressing and a seeded per-session RNG stream,
- a :class:`~repro.core.retry.RetryPolicy` derived from the deployment
  config (bounded attempts, per-op deadline, seeded-jitter exponential
  backoff),
- failover re-resolution: after every failed attempt the session
  refreshes its ring view from the site's cluster manager, so retries
  re-route around crashed heads/tails once the failure detector fires,
- an explicit lifecycle: ``close()`` detaches the session from the
  network (late replies are dropped, not mis-delivered) and fails any
  operations still in flight with
  :class:`~repro.errors.SessionClosedError`.

Protocol sessions subclass this and implement only their operation
generators.
"""

from __future__ import annotations

import random
from typing import Any, Iterator, Optional

from repro.api import ClientSession
from repro.cluster.membership import RingView
from repro.core.retry import RetryPolicy
from repro.errors import ReproError, RequestTimeout, SessionClosedError
from repro.net.actor import Actor
from repro.net.network import Address, Network
from repro.sim.kernel import Simulator

__all__ = ["RetryingSession"]


class RetryingSession(Actor, ClientSession):
    """Actor-based client session with retry, failover, and lifecycle."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        site: str,
        name: str,
        initial_view: RingView,
        config: Any,
        rng: random.Random,
    ) -> None:
        super().__init__(sim, network, Address(site, name))
        self.site = site
        self.session_id = f"{site}:{name}"
        self.view = initial_view
        self.config = config
        self._rng = rng
        self._manager = Address(site, "manager")
        self.retry_policy = RetryPolicy.from_config(config)
        self.closed = False
        # observability: exported into campaign outcome accounting
        self.retries = 0
        self.failed_ops = 0
        self.degraded_reads = 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Detach from the network and fail in-flight operations."""
        if self.closed:
            return
        self.closed = True
        self.network.set_down(self.address, True)
        self._fail_pending(SessionClosedError(f"session {self.session_id} closed"))

    def _fail_pending(self, exc: ReproError) -> None:
        """Hook: resolve any pending operation futures with ``exc``."""

    # ------------------------------------------------------------------
    # retry machinery
    # ------------------------------------------------------------------
    def _op_attempts(self, start: float) -> Iterator[int]:
        """Attempt counter bounded by the policy's budget and deadline."""
        policy = self.retry_policy
        for attempt in range(policy.max_attempts):
            if attempt and policy.out_of_time(start, self.sim.now):
                return
            yield attempt

    def _backoff_and_refresh(
        self, attempt: int, exc: Optional[ReproError] = None
    ) -> Iterator[Any]:
        """Back off (seeded-jitter exponential), then refresh the ring
        view from the cluster manager so the next attempt re-resolves
        chain positions against the newest membership.

        When the attempt's failure is passed in, a non-retryable error —
        e.g. a :class:`~repro.errors.RemoteError` wrapping a permanent
        server-side failure — is re-raised instead of swallowed.
        """
        if exc is not None and not getattr(exc, "retryable", True):
            raise exc
        self.retries += 1
        delay = self.retry_policy.backoff(attempt, self._rng)
        if delay > 0.0:
            yield delay
        try:
            view = yield self.call(
                self._manager, "get_view", timeout=self.config.op_timeout
            )
        except ReproError:
            return  # manager briefly unreachable; retry with the stale view
        if view.epoch > self.view.epoch:
            self.view = view

    def _give_up(self, op: str, key: str) -> "RequestTimeout":
        """Terminal failure for one operation (the caller raises it)."""
        self.failed_ops += 1
        return RequestTimeout(
            f"{op}({key!r}) exhausted its retry budget "
            f"({self.retry_policy.max_attempts} attempts"
            + (
                f", {self.retry_policy.deadline}s deadline)"
                if self.retry_policy.deadline
                else ")"
            )
        )
