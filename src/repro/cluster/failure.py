"""Failure-injection schedules for fault-tolerance experiments.

The fault experiment (E9) and the recovery tests need precisely timed
fail-stop crashes, recoveries, and partitions. A schedule is declared
up front and armed on the simulator, keeping experiment scripts free of
scheduling boilerplate.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Union

from repro.net.actor import Actor
from repro.net.network import Address, Network
from repro.sim.kernel import Simulator

__all__ = ["FailureInjector", "CrashEvent", "PartitionEvent"]


@dataclasses.dataclass
class CrashEvent:
    """Crash ``actor`` at ``at``; recover it at ``recover_at`` (None = never)."""

    actor: Actor
    at: float
    recover_at: Optional[float] = None
    wipe_storage: bool = False


@dataclasses.dataclass
class PartitionEvent:
    """Partition two endpoints from ``at`` until ``heal_at`` (None = forever)."""

    a: Union[str, Address]
    b: Union[str, Address]
    at: float
    heal_at: Optional[float] = None


class FailureInjector:
    """Arms crash and partition schedules on a simulator."""

    def __init__(self, sim: Simulator, network: Network):
        self.sim = sim
        self.network = network
        self.injected_crashes = 0
        self.injected_partitions = 0
        self._log: List[str] = []

    @property
    def log(self) -> List[str]:
        """Human-readable record of what was injected and when."""
        return list(self._log)

    def schedule_crash(
        self,
        actor: Actor,
        at: float,
        recover_at: Optional[float] = None,
        wipe_storage: bool = False,
    ) -> None:
        self.sim.schedule_at(at, self._crash, actor, wipe_storage)
        if recover_at is not None:
            if recover_at <= at:
                raise ValueError(f"recover_at {recover_at} must follow crash at {at}")
            self.sim.schedule_at(recover_at, self._recover, actor)

    def schedule_partition(
        self,
        a: Union[str, Address],
        b: Union[str, Address],
        at: float,
        heal_at: Optional[float] = None,
    ) -> None:
        self.sim.schedule_at(at, self._partition, a, b)
        if heal_at is not None:
            if heal_at <= at:
                raise ValueError(f"heal_at {heal_at} must follow partition at {at}")
            self.sim.schedule_at(heal_at, self._heal, a, b)

    def apply(self, events: List[Union[CrashEvent, PartitionEvent]]) -> None:
        """Arm a declarative schedule."""
        for ev in events:
            if isinstance(ev, CrashEvent):
                self.schedule_crash(ev.actor, ev.at, ev.recover_at, ev.wipe_storage)
            else:
                self.schedule_partition(ev.a, ev.b, ev.at, ev.heal_at)

    # ------------------------------------------------------------------
    def _crash(self, actor: Actor, wipe_storage: bool) -> None:
        actor.crash()
        if wipe_storage:
            store = getattr(actor, "store", None)
            if store is not None:
                store.clear()
        self.injected_crashes += 1
        self._log.append(f"t={self.sim.now:.3f} crash {actor.address}")

    def _recover(self, actor: Actor) -> None:
        actor.recover()
        self._log.append(f"t={self.sim.now:.3f} recover {actor.address}")

    def _partition(self, a: Union[str, Address], b: Union[str, Address]) -> None:
        self.network.block(a, b)
        self.injected_partitions += 1
        self._log.append(f"t={self.sim.now:.3f} partition {a} | {b}")

    def _heal(self, a: Union[str, Address], b: Union[str, Address]) -> None:
        self.network.unblock(a, b)
        self._log.append(f"t={self.sim.now:.3f} heal {a} | {b}")
