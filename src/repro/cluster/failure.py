"""Failure-injection schedules for fault-tolerance experiments.

The fault experiment (E9) and the recovery tests need precisely timed
fail-stop crashes, recoveries, and partitions. A schedule is declared
up front and armed on the simulator, keeping experiment scripts free of
scheduling boilerplate.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, FrozenSet, List, Optional, Union

from repro.net.actor import Actor
from repro.net.latency import LatencyModel, ScaledLatency
from repro.net.network import Address, Network
from repro.sim.kernel import Simulator

__all__ = ["FailureInjector", "CrashEvent", "PartitionEvent", "SlowLinkEvent"]


@dataclasses.dataclass
class CrashEvent:
    """Crash ``actor`` at ``at``; recover it at ``recover_at`` (None = never)."""

    actor: Actor
    at: float
    recover_at: Optional[float] = None
    wipe_storage: bool = False


@dataclasses.dataclass
class PartitionEvent:
    """Partition two endpoints from ``at`` until ``heal_at`` (None = forever)."""

    a: Union[str, Address]
    b: Union[str, Address]
    at: float
    heal_at: Optional[float] = None


@dataclasses.dataclass
class SlowLinkEvent:
    """Scale the latency between two *sites* by ``factor`` from ``at``
    until ``heal_at`` (None = forever). ``a == b`` degrades a DC's
    intra-site fabric."""

    a: str
    b: str
    at: float
    heal_at: Optional[float] = None
    factor: float = 10.0


FaultEvent = Union[CrashEvent, PartitionEvent, SlowLinkEvent]


class FailureInjector:
    """Arms crash, partition, and slow-link schedules on a simulator."""

    def __init__(self, sim: Simulator, network: Network):
        self.sim = sim
        self.network = network
        self.injected_crashes = 0
        self.injected_partitions = 0
        self.injected_slow_links = 0
        self._saved_links: Dict[FrozenSet[str], Optional[LatencyModel]] = {}
        self._log: List[str] = []

    @property
    def log(self) -> List[str]:
        """Human-readable record of what was injected and when."""
        return list(self._log)

    def schedule_crash(
        self,
        actor: Actor,
        at: float,
        recover_at: Optional[float] = None,
        wipe_storage: bool = False,
    ) -> None:
        # Fault injections are fire-and-forget: handles are dropped at
        # the call site, so release them for the kernel's handle pool.
        self.sim.schedule_at(at, self._crash, actor, wipe_storage).release()
        if recover_at is not None:
            if recover_at <= at:
                raise ValueError(f"recover_at {recover_at} must follow crash at {at}")
            self.sim.schedule_at(recover_at, self._recover, actor).release()

    def schedule_partition(
        self,
        a: Union[str, Address],
        b: Union[str, Address],
        at: float,
        heal_at: Optional[float] = None,
    ) -> None:
        self.sim.schedule_at(at, self._partition, a, b).release()
        if heal_at is not None:
            if heal_at <= at:
                raise ValueError(f"heal_at {heal_at} must follow partition at {at}")
            self.sim.schedule_at(heal_at, self._heal, a, b).release()

    def schedule_slow_link(
        self,
        a: str,
        b: str,
        at: float,
        heal_at: Optional[float] = None,
        factor: float = 10.0,
    ) -> None:
        self.sim.schedule_at(at, self._slow_link, a, b, factor).release()
        if heal_at is not None:
            if heal_at <= at:
                raise ValueError(f"heal_at {heal_at} must follow slowdown at {at}")
            self.sim.schedule_at(heal_at, self._restore_link, a, b).release()

    def apply(self, events: List[FaultEvent]) -> None:
        """Arm a declarative schedule."""
        for ev in events:
            if isinstance(ev, CrashEvent):
                self.schedule_crash(ev.actor, ev.at, ev.recover_at, ev.wipe_storage)
            elif isinstance(ev, SlowLinkEvent):
                self.schedule_slow_link(ev.a, ev.b, ev.at, ev.heal_at, ev.factor)
            else:
                self.schedule_partition(ev.a, ev.b, ev.at, ev.heal_at)

    # ------------------------------------------------------------------
    def _crash(self, actor: Actor, wipe_storage: bool) -> None:
        actor.crash()
        if wipe_storage:
            store = getattr(actor, "store", None)
            if store is not None:
                store.clear()
        self.injected_crashes += 1
        self._log.append(f"t={self.sim.now:.3f} crash {actor.address}")

    def _recover(self, actor: Actor) -> None:
        actor.recover()
        self._log.append(f"t={self.sim.now:.3f} recover {actor.address}")

    def _partition(self, a: Union[str, Address], b: Union[str, Address]) -> None:
        self.network.block(a, b)
        self.injected_partitions += 1
        self._log.append(f"t={self.sim.now:.3f} partition {a} | {b}")

    def _heal(self, a: Union[str, Address], b: Union[str, Address]) -> None:
        self.network.unblock(a, b)
        self._log.append(f"t={self.sim.now:.3f} heal {a} | {b}")

    def _slow_link(self, a: str, b: str, factor: float) -> None:
        link = frozenset((a, b))
        if link not in self._saved_links:
            # remember only the *pre-existing* override (None = default
            # lan/wan) so stacked slowdowns restore to the original model
            self._saved_links[link] = self.network._site_links.get(link)
        self.network.set_link(a, b, ScaledLatency(self.network.site_model(a, b), factor))
        self.injected_slow_links += 1
        self._log.append(f"t={self.sim.now:.3f} slow-link {a}~{b} x{factor}")

    def _restore_link(self, a: str, b: str) -> None:
        saved = self._saved_links.pop(frozenset((a, b)), None)
        if saved is None:
            self.network.clear_link(a, b)
        else:
            self.network.set_link(a, b, saved)
        self._log.append(f"t={self.sim.now:.3f} restore-link {a}~{b}")
