"""Partial geo-replication: the keyspace-shard catalog.

Full replication keeps every key at every datacenter, so geo write
bandwidth, dependency metadata, and memory all scale with ``sites x
keys``. Partial replication (following Xiang & Vaidya, *Partially
Replicated Causally Consistent Shared Memory*) instead hashes the
keyspace into a fixed number of **shards** and replicates each shard at
only ``r`` *owner* sites.

The catalog is a pure value object, exactly like
:class:`repro.cluster.ring.HashRing` one layer down: owners derive
deterministically from (site list, shard count, replication degree,
virtual-node count) by placing the *sites* on a consistent-hash ring and
walking each shard's successor chain. Every actor that knows the
deployment config computes identical placement with no coordination,
which is also what keeps the sharded simulator's traces byte-identical
across worker counts — routing decisions never depend on runtime state.

``owners_for(key)[0]`` is the key's **primary** owner: clients forward
both gets and puts for non-locally-owned shards there, so all operations
on a shard serialise through one DC's chain (the property the relaxed
dependency checking in the stability planes leans on; see DESIGN
§ placement-and-forwarding).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.cluster.ring import HashRing, _hash64
from repro.errors import ClusterError

__all__ = ["ShardCatalog", "shard_catalog"]

#: site-ring virtual nodes: sites are few, so a modest count balances
#: shard ownership without bloating catalog construction.
SITE_VIRTUAL_NODES = 16


class ShardCatalog:  # repro: lint-ok(slots) — a handful per process, cached
    """Immutable shard → owner-sites map for one deployment.

    Picklable by construction args (:meth:`__reduce__`), so it can ride
    inside specs shipped to sharded-simulator worker processes; the
    rebuilt catalog is bit-identical because placement is a pure
    function of the arguments.
    """

    def __init__(
        self,
        sites: Tuple[str, ...],
        num_shards: int,
        replication_degree: int,
        virtual_nodes: int = SITE_VIRTUAL_NODES,
    ):
        if num_shards < 1:
            raise ClusterError(f"num_shards must be >= 1, got {num_shards}")
        if not 1 <= replication_degree <= len(sites):
            raise ClusterError(
                f"replication_degree must be in [1, {len(sites)}]; "
                f"got {replication_degree}"
            )
        self.sites: Tuple[str, ...] = tuple(sites)
        self.num_shards = num_shards
        self.replication_degree = replication_degree
        self.virtual_nodes = virtual_nodes
        ring = HashRing(self.sites, virtual_nodes=virtual_nodes)
        self.owners: Tuple[Tuple[str, ...], ...] = tuple(
            tuple(ring.chain_for(f"shard:{shard:04d}", replication_degree))
            for shard in range(num_shards)
        )
        self._owner_sets: Tuple[frozenset, ...] = tuple(
            frozenset(owners) for owners in self.owners
        )
        # Key lookups are hot (every client op routes through one);
        # keys are interned, so a per-catalog memo pays for itself.
        self._shard_cache: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------
    def shard_of(self, key: str) -> int:
        shard = self._shard_cache.get(key)
        if shard is None:
            shard = _hash64(key) % self.num_shards
            self._shard_cache[key] = shard
        return shard

    def owners_for(self, key: str) -> Tuple[str, ...]:
        """Owner sites of ``key``'s shard; index 0 is the primary."""
        return self.owners[self.shard_of(key)]

    def primary_for(self, key: str) -> str:
        return self.owners[self.shard_of(key)][0]

    def owns(self, site: str, key: str) -> bool:
        return site in self._owner_sets[self.shard_of(key)]

    def owns_shard(self, site: str, shard: int) -> bool:
        return site in self._owner_sets[shard]

    def owned_shards(self, site: str) -> Tuple[int, ...]:
        return tuple(
            shard
            for shard in range(self.num_shards)
            if site in self._owner_sets[shard]
        )

    @property
    def is_full(self) -> bool:
        return self.replication_degree == len(self.sites)

    # ------------------------------------------------------------------
    # value semantics
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ShardCatalog):
            return NotImplemented
        return (
            self.sites == other.sites
            and self.num_shards == other.num_shards
            and self.replication_degree == other.replication_degree
            and self.virtual_nodes == other.virtual_nodes
        )

    def __hash__(self) -> int:
        return hash(
            (self.sites, self.num_shards, self.replication_degree, self.virtual_nodes)
        )

    def __reduce__(self) -> Tuple[type, Tuple[Tuple[str, ...], int, int, int]]:
        return (
            ShardCatalog,
            (self.sites, self.num_shards, self.replication_degree, self.virtual_nodes),
        )

    def __repr__(self) -> str:
        return (
            f"ShardCatalog(sites={self.sites!r}, num_shards={self.num_shards}, "
            f"replication_degree={self.replication_degree})"
        )

    def describe(self) -> List[Tuple[int, Tuple[str, ...]]]:
        """(shard, owners) rows — diagnostics and doc tables."""
        return list(enumerate(self.owners))


#: Catalogs are pure values; share one instance per deployment shape
#: (same memo pattern as membership's ring cache).
_CATALOG_CACHE: Dict[Tuple[Tuple[str, ...], int, int, int], ShardCatalog] = {}  # repro: lint-ok(module-mutable-state) — per-process memo of pure values, rebuilt identically


def shard_catalog(
    sites: Tuple[str, ...],
    num_shards: int,
    replication_degree: int,
    virtual_nodes: int = SITE_VIRTUAL_NODES,
) -> ShardCatalog:
    """The (cached) catalog for a deployment shape."""
    cache_key = (tuple(sites), num_shards, replication_degree, virtual_nodes)
    catalog = _CATALOG_CACHE.get(cache_key)
    if catalog is None:
        catalog = ShardCatalog(*cache_key)
        _CATALOG_CACHE[cache_key] = catalog
    return catalog
