"""Consistent hashing and chain placement.

ChainReaction inherits FAWN-KV's data placement: servers sit on a
consistent-hash ring (with virtual nodes for balance), and the replica
*chain* for a key is the key's successor on the ring followed by the
next ``R - 1`` distinct physical servers. Chain order is what gives the
protocol its write serialisation — position 0 is the head, position
``R - 1`` the tail.

The ring is a pure value object: membership changes produce placements
deterministically from (server set, virtual-node count), so every actor
that knows the member list computes identical chains with no extra
coordination.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ClusterError

__all__ = ["HashRing", "chain_positions"]

_HASH_SPACE = 2**64


def _hash64(data: str) -> int:
    return int.from_bytes(hashlib.sha256(data.encode("utf-8")).digest()[:8], "big")


class HashRing:
    """Immutable consistent-hash ring over a set of server names."""

    def __init__(self, servers: Sequence[str], virtual_nodes: int = 64):
        if virtual_nodes < 1:
            raise ClusterError(f"virtual_nodes must be >= 1, got {virtual_nodes}")
        unique = list(dict.fromkeys(servers))
        if len(unique) != len(servers):
            raise ClusterError("duplicate server names in ring")
        self._servers: Tuple[str, ...] = tuple(unique)
        self._virtual_nodes = virtual_nodes
        points: List[Tuple[int, str]] = []
        for server in unique:
            for v in range(virtual_nodes):
                points.append((_hash64(f"{server}#{v}"), server))
        points.sort()
        self._points = points
        self._hashes = [h for h, _ in points]
        # Rings are immutable, and workloads ask for the same keys'
        # chains millions of times — memoise placement per (key, length).
        self._chain_cache: Dict[Tuple[str, int], List[str]] = {}

    # ------------------------------------------------------------------
    # membership
    # ------------------------------------------------------------------
    @property
    def servers(self) -> Tuple[str, ...]:
        return self._servers

    @property
    def virtual_nodes(self) -> int:
        return self._virtual_nodes

    def __len__(self) -> int:
        return len(self._servers)

    def without(self, server: str) -> "HashRing":
        """A new ring with ``server`` removed."""
        if server not in self._servers:
            raise ClusterError(f"server {server!r} not in ring")
        return HashRing(
            [s for s in self._servers if s != server], self._virtual_nodes
        )

    def with_server(self, server: str) -> "HashRing":
        """A new ring with ``server`` added."""
        if server in self._servers:
            raise ClusterError(f"server {server!r} already in ring")
        return HashRing(list(self._servers) + [server], self._virtual_nodes)

    # ------------------------------------------------------------------
    # placement
    # ------------------------------------------------------------------
    def chain_for(self, key: str, length: int) -> List[str]:
        """The replica chain for ``key``: ``length`` distinct servers in
        ring-successor order. Head first, tail last."""
        if not self._servers:
            raise ClusterError("ring is empty")
        if length < 1:
            raise ClusterError(f"chain length must be >= 1, got {length}")
        cached = self._chain_cache.get((key, length))
        if cached is not None:
            return cached
        length = min(length, len(self._servers))
        start = bisect.bisect_right(self._hashes, _hash64(key)) % len(self._points)
        chain: List[str] = []
        seen = set()
        idx = start
        while len(chain) < length:
            server = self._points[idx][1]
            if server not in seen:
                seen.add(server)
                chain.append(server)
            idx = (idx + 1) % len(self._points)
        # Callers treat chains as read-only; the cache hands out the
        # same list instance to avoid re-hashing hot keys.
        self._chain_cache[(key, length)] = chain
        return chain

    def head_for(self, key: str) -> str:
        return self.chain_for(key, 1)[0]

    def load_map(self, keys: Sequence[str], length: int) -> Dict[str, int]:
        """How many of ``keys`` each server replicates — balance diagnostics."""
        counts: Dict[str, int] = {s: 0 for s in self._servers}
        for key in keys:
            for server in self.chain_for(key, length):
                counts[server] += 1
        return counts


def chain_positions(chain: Sequence[str], server: str) -> Optional[int]:
    """Index of ``server`` in ``chain`` (0 = head), or None if absent."""
    try:
        return chain.index(server)  # type: ignore[arg-type]
    except ValueError:
        return None
