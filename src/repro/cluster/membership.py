"""Cluster membership: versioned ring views and the per-DC manager.

Each datacenter runs one :class:`ClusterManager` (the FAWN-KV
"front-end/management" role): servers heartbeat to it, it detects
failures by timeout, publishes a new epoch of the :class:`RingView`,
and pushes the view to the surviving servers. Client libraries pull
views on demand (and re-pull when a request hits a server that no
longer owns the key).

Views are immutable values; every component derives chain placement
locally from the view, so a view change is the *only* coordination a
reconfiguration needs.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, ClassVar, Dict, List, Optional, Tuple

from repro.cluster.placement import ShardCatalog, shard_catalog
from repro.cluster.ring import HashRing
from repro.errors import ClusterError
from repro.net.actor import Actor
from repro.net.message import Message
from repro.net.network import Address, Network
from repro.sim.kernel import Simulator

__all__ = [
    "RingView",
    "ClusterManager",
    "Heartbeat",
    "ShardCatalog",
    "ViewChange",
    "shard_catalog",
]

_RING_CACHE: Dict[Tuple[Tuple[str, ...], int], HashRing] = {}


def _ring(servers: Tuple[str, ...], virtual_nodes: int) -> HashRing:
    key = (servers, virtual_nodes)
    ring = _RING_CACHE.get(key)
    if ring is None:
        ring = HashRing(servers, virtual_nodes)
        _RING_CACHE[key] = ring
    return ring


@dataclasses.dataclass(frozen=True)
class RingView:
    """One epoch of cluster membership for a datacenter."""

    epoch: int
    site: str
    servers: Tuple[str, ...]
    chain_length: int
    virtual_nodes: int = 64

    def ring(self) -> HashRing:
        return _ring(self.servers, self.virtual_nodes)

    def chain_for(self, key: str) -> List[str]:
        return self.ring().chain_for(key, self.chain_length)

    def addresses(self) -> List[Address]:
        return [Address(self.site, s) for s in self.servers]

    def address_of(self, server: str) -> Address:
        return Address(self.site, server)

    def size_bytes(self) -> int:
        return 8 + 4 + len(self.site) + sum(4 + len(s) for s in self.servers) + 8


@dataclasses.dataclass(frozen=True)
class Heartbeat(Message):
    type_name: ClassVar[str] = "heartbeat"
    server: str = ""
    epoch: int = 0


@dataclasses.dataclass(frozen=True)
class ViewChange(Message):
    type_name: ClassVar[str] = "view-change"
    view: Optional[RingView] = None


class ClusterManager(Actor):
    """Failure detector and view publisher for one datacenter.

    Not replicated (the paper's management plane isn't the contribution);
    its failure-detection timeout and publish path are what the fault-
    tolerance experiment (E9) exercises.
    """

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        site: str,
        servers: List[str],
        chain_length: int,
        heartbeat_interval: float = 0.05,
        failure_timeout: float = 0.25,
        virtual_nodes: int = 64,
    ):
        super().__init__(sim, network, Address(site, "manager"))
        if chain_length < 1:
            raise ClusterError(f"chain_length must be >= 1, got {chain_length}")
        if failure_timeout <= heartbeat_interval:
            raise ClusterError("failure_timeout must exceed heartbeat_interval")
        self.site = site
        self.heartbeat_interval = heartbeat_interval
        self.failure_timeout = failure_timeout
        self.view = RingView(
            epoch=1,
            site=site,
            servers=tuple(servers),
            chain_length=chain_length,
            virtual_nodes=virtual_nodes,
        )
        self._last_seen: Dict[str, float] = {s: sim.now for s in servers}
        self._view_listeners: List[Callable[[RingView], None]] = []
        self.view_changes = 0
        self.set_timer(self.failure_timeout, self._check_failures)

    # ------------------------------------------------------------------
    # observation hooks (for tests / harness)
    # ------------------------------------------------------------------
    def add_view_listener(self, fn: Callable[[RingView], None]) -> None:
        self._view_listeners.append(fn)

    # ------------------------------------------------------------------
    # heartbeats & failure detection
    # ------------------------------------------------------------------
    def on_heartbeat(self, msg: Heartbeat, src: Address) -> None:
        if msg.server in self.view.servers:
            self._last_seen[msg.server] = self.sim.now
        elif src.site == self.site and src.node == msg.server:
            # A previously-removed server is heartbeating again: it
            # recovered. Re-admit it; the view change triggers the same
            # repair path as any other membership change.
            self.add_server(msg.server)

    def _check_failures(self) -> None:
        deadline = self.sim.now - self.failure_timeout
        dead = [s for s in self.view.servers if self._last_seen.get(s, 0.0) < deadline]
        for server in dead:
            self._remove_server(server)
        self.set_timer(self.failure_timeout / 2, self._check_failures)

    def _remove_server(self, server: str) -> None:
        remaining = tuple(s for s in self.view.servers if s != server)
        if not remaining:
            raise ClusterError(f"last server {server!r} in {self.site} failed")
        self._last_seen.pop(server, None)
        self._publish(remaining)

    def add_server(self, server: str) -> None:
        """Admin operation: grow the cluster by one (already-running) server."""
        if server in self.view.servers:
            raise ClusterError(f"server {server!r} already a member")
        self._last_seen[server] = self.sim.now
        self._publish(self.view.servers + (server,))

    def _publish(self, servers: Tuple[str, ...]) -> None:
        self.view = dataclasses.replace(
            self.view, epoch=self.view.epoch + 1, servers=servers
        )
        self.view_changes += 1
        for server in servers:
            self.send(self.view.address_of(server), ViewChange(view=self.view))
        for fn in self._view_listeners:
            fn(self.view)

    # ------------------------------------------------------------------
    # RPC surface
    # ------------------------------------------------------------------
    def rpc_get_view(self, payload: object, src: Address) -> RingView:
        """Client libraries pull the current view on startup and on miss-routes."""
        return self.view
