"""Unit tests for the causal-consistency checker."""

import pytest

from repro.checker import GET, PUT, History, check_causal
from repro.errors import CheckerError
from repro.storage import VersionVector


def vv(**entries):
    return VersionVector(entries)


def history(*ops):
    h = History()
    for i, (session, op, key, version) in enumerate(ops):
        h.add(session, op, key, f"value{i}", version, float(i), float(i) + 0.5)
    return h


class TestCleanHistories:
    def test_empty(self):
        assert check_causal(History()) == []

    def test_single_session_read_own_writes(self):
        h = history(
            ("s1", PUT, "a", vv(dc0=1)),
            ("s1", PUT, "b", vv(dc0=1)),
            ("s1", GET, "a", vv(dc0=1)),
            ("s1", GET, "b", vv(dc0=1)),
        )
        assert check_causal(h) == []

    def test_cross_session_fresh_reads(self):
        h = history(
            ("w", PUT, "a", vv(dc0=1)),
            ("w", PUT, "b", vv(dc0=1)),
            ("r", GET, "b", vv(dc0=1)),
            ("r", GET, "a", vv(dc0=1)),
        )
        assert check_causal(h) == []

    def test_reader_missing_both_is_causal(self):
        """Seeing neither write violates nothing — causality permits
        staleness, it forbids seeing effects without causes."""
        h = history(
            ("w", PUT, "a", vv(dc0=1)),
            ("w", PUT, "b", vv(dc0=1)),
            ("r", GET, "b", vv()),
            ("r", GET, "a", vv()),
        )
        assert check_causal(h) == []

    def test_seeing_cause_without_effect_is_causal(self):
        h = history(
            ("w", PUT, "a", vv(dc0=1)),
            ("w", PUT, "b", vv(dc0=1)),
            ("r", GET, "a", vv(dc0=1)),
            ("r", GET, "b", vv()),
        )
        assert check_causal(h) == []


class TestAnomalies:
    def test_photo_album_anomaly(self):
        """The classic anomaly: b (written after a by the same session) is
        observed, but a subsequent read of a misses a."""
        h = history(
            ("w", PUT, "a", vv(dc0=1)),
            ("w", PUT, "b", vv(dc0=1)),
            ("r", GET, "b", vv(dc0=1)),  # saw the effect...
            ("r", GET, "a", vv()),       # ...but not the cause
        )
        violations = check_causal(h)
        assert len(violations) == 1
        assert violations[0].key == "a"

    def test_transitive_cross_session_anomaly(self):
        """w writes a; m reads a then writes b; r sees b but not a."""
        h = history(
            ("w", PUT, "a", vv(dc0=1)),
            ("m", GET, "a", vv(dc0=1)),
            ("m", PUT, "b", vv(dc1=1)),
            ("r", GET, "b", vv(dc1=1)),
            ("r", GET, "a", vv()),
        )
        violations = check_causal(h)
        assert len(violations) == 1
        assert violations[0].key == "a"

    def test_chain_of_three_sessions(self):
        h = history(
            ("s1", PUT, "x", vv(dc0=1)),
            ("s2", GET, "x", vv(dc0=1)),
            ("s2", PUT, "y", vv(dc1=1)),
            ("s3", GET, "y", vv(dc1=1)),
            ("s3", PUT, "z", vv(dc2=1)),
            ("s4", GET, "z", vv(dc2=1)),
            ("s4", GET, "x", vv()),  # three hops back — still required
        )
        assert len(check_causal(h)) == 1

    def test_session_read_regression_detected(self):
        """Monotonic-read violations are causal violations too."""
        h = history(
            ("w", PUT, "k", vv(dc0=1)),
            ("w", PUT, "k", vv(dc0=2)),
            ("r", GET, "k", vv(dc0=2)),
            ("r", GET, "k", vv(dc0=1)),
        )
        assert len(check_causal(h)) == 1

    def test_violation_count_per_offending_read(self):
        h = history(
            ("w", PUT, "a", vv(dc0=1)),
            ("w", PUT, "b", vv(dc0=1)),
            ("r", GET, "b", vv(dc0=1)),
            ("r", GET, "a", vv()),
            ("r", GET, "a", vv()),
        )
        assert len(check_causal(h)) == 2


class TestMergedVersions:
    def test_read_of_merged_version_imports_both_closures(self):
        """A convergent merge covers both concurrent writes, so observing
        it requires both writes' causal pasts."""
        h = history(
            ("w0", PUT, "dep0", vv(dc0=1)),
            ("w0", PUT, "k", vv(dc0=1)),     # depends on dep0
            ("w1", PUT, "dep1", vv(dc1=1)),
            ("w1", PUT, "k", vv(dc1=1)),     # depends on dep1; concurrent
            ("r", GET, "k", vv(dc0=1, dc1=1)),  # merged observation
            ("r", GET, "dep0", vv()),        # must see dep0 → violation
        )
        violations = check_causal(h)
        assert len(violations) == 1
        assert violations[0].key == "dep0"


class TestValidation:
    def test_invalid_history_rejected(self):
        h = History()
        h.add("s1", PUT, "k", "v1", vv(dc0=1), 0.0, 1.0)
        h.add("s1", PUT, "k", "v2", vv(dc0=1), 2.0, 3.0)
        with pytest.raises(CheckerError):
            check_causal(h)

    def test_validation_can_be_skipped(self):
        h = History()
        h.add("s1", PUT, "k", "v1", vv(dc0=1), 0.0, 1.0)
        h.add("s2", PUT, "k", "v2", vv(dc0=1), 2.0, 3.0)
        # With validation off, the checker processes what it is given.
        check_causal(h, validate=False)


class TestPreloadVersions:
    def test_reads_of_preloaded_state_are_clean(self):
        """Reads returning versions with no matching put in the history
        (warm-up preloads) create no spurious requirements."""
        preload = vv(preload=1)
        h = history(
            ("r", GET, "k", preload),
            ("r", GET, "k", preload),
            ("w", PUT, "k", VersionVector({"preload": 1, "dc0": 1})),
            ("r", GET, "k", VersionVector({"preload": 1, "dc0": 1})),
        )
        assert check_causal(h) == []
