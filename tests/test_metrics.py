"""Unit tests for metrics: reservoirs, timelines, rendering."""

import pytest

from repro.metrics import (
    LatencyReservoir,
    ThroughputTimeline,
    format_number,
    render_series,
    render_table,
)


class TestLatencyReservoir:
    def test_exact_statistics_below_capacity(self):
        res = LatencyReservoir(seed=1)
        for v in [0.001, 0.002, 0.003, 0.004, 0.005]:
            res.add(v)
        assert res.count == 5
        assert res.mean() == pytest.approx(0.003)
        assert res.percentile(0) == 0.001
        assert res.percentile(100) == 0.005
        assert res.median() == 0.003
        assert res.min == 0.001 and res.max == 0.005

    def test_percentile_interpolates(self):
        res = LatencyReservoir(seed=1)
        res.extend([0.0, 1.0])
        assert res.percentile(50) == pytest.approx(0.5)

    def test_empty_reservoir(self):
        res = LatencyReservoir(seed=1)
        assert res.percentile(99) == 0.0
        assert res.mean() == 0.0
        assert res.cdf() == []

    def test_capacity_bounds_memory(self):
        res = LatencyReservoir(capacity=100, seed=1)
        for i in range(10000):
            res.add(float(i))
        assert res.count == 10000
        assert len(res._samples) == 100

    def test_sampling_stays_representative(self):
        res = LatencyReservoir(capacity=500, seed=1)
        for i in range(20000):
            res.add(i / 20000)
        # uniform input → median near 0.5 even after sampling
        assert 0.4 < res.percentile(50) < 0.6

    def test_cdf_is_monotone(self):
        res = LatencyReservoir(seed=1)
        res.extend([0.003, 0.001, 0.002, 0.010, 0.004])
        cdf = res.cdf(points=10)
        values = [v for v, _ in cdf]
        fracs = [f for _, f in cdf]
        assert values == sorted(values)
        assert fracs == sorted(fracs)
        assert fracs[-1] == 1.0

    def test_summary_in_milliseconds(self):
        res = LatencyReservoir(seed=1)
        res.add(0.002)
        s = res.summary()
        assert s["p50_ms"] == pytest.approx(2.0)
        assert s["count"] == 1

    def test_invalid_percentile_rejected(self):
        with pytest.raises(ValueError):
            LatencyReservoir(seed=1).percentile(101)

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            LatencyReservoir(capacity=0, seed=1)

    def test_seed_is_required_and_explicit(self):
        with pytest.raises(TypeError):
            LatencyReservoir()  # no implicit OS-seeded RNG
        with pytest.raises(ValueError):
            LatencyReservoir(seed=None)


class TestThroughputTimeline:
    def test_bucketing(self):
        tl = ThroughputTimeline(bucket_width=1.0)
        for t in [0.1, 0.5, 1.2, 2.9]:
            tl.record(t)
        series = dict(tl.series())
        assert series[0.0] == 2.0
        assert series[1.0] == 1.0
        assert series[2.0] == 1.0

    def test_gaps_filled_with_zero(self):
        tl = ThroughputTimeline(bucket_width=1.0)
        tl.record(0.5)
        tl.record(3.5)
        series = dict(tl.series())
        assert series[1.0] == 0.0 and series[2.0] == 0.0

    def test_rate_is_per_second(self):
        tl = ThroughputTimeline(bucket_width=0.5)
        tl.record(0.1)
        tl.record(0.2)
        assert tl.series()[0][1] == 4.0  # 2 events / 0.5s

    def test_rate_between(self):
        tl = ThroughputTimeline(bucket_width=1.0)
        for t in [0.5, 1.5, 2.5, 3.5]:
            tl.record(t)
        assert tl.rate_between(1.0, 3.0) == pytest.approx(1.0)

    def test_rate_between_validates(self):
        with pytest.raises(ValueError):
            ThroughputTimeline().rate_between(2.0, 1.0)

    def test_min_rate_finds_dip(self):
        tl = ThroughputTimeline(bucket_width=1.0)
        for t in [0.5, 0.6, 2.5, 2.6]:
            tl.record(t)
        assert tl.min_rate() == 0.0

    def test_total(self):
        tl = ThroughputTimeline()
        tl.record(1.0, n=3)
        assert tl.total() == 3

    def test_invalid_width_rejected(self):
        with pytest.raises(ValueError):
            ThroughputTimeline(bucket_width=0)


class TestRendering:
    def test_format_number(self):
        assert format_number(1234.5) == "1,234"
        assert format_number(3.14159) == "3.14"
        assert format_number(0.0) == "0"
        assert format_number("text") == "text"
        assert format_number(7) == "7"

    def test_render_table_aligns_columns(self):
        out = render_table(["name", "n"], [("a", 1), ("long-name", 22)], title="T")
        lines = out.split("\n")
        assert lines[0] == "T"
        assert len({len(line) for line in lines[1:]}) == 1  # equal widths

    def test_render_series(self):
        out = render_series([(0.0, 1.0), (1.0, 2.0)], "t", "rate")
        assert "t" in out and "rate" in out
        assert "2.00" in out


class TestLinkFloorProfile:
    def test_default_network_floors(self):
        from repro.metrics import link_floor_profile
        from repro.net import WAN_LATENCY_FLOOR, Network
        from repro.sim import Simulator

        net = Network(Simulator())
        profile = link_floor_profile(net)
        assert profile["cross_site_lookahead_s"] == pytest.approx(WAN_LATENCY_FLOOR)
        assert profile["wan_floor_s"] == pytest.approx(WAN_LATENCY_FLOOR)
        assert 0 < profile["lan_floor_s"] < profile["wan_floor_s"]

    def test_link_override_tightens_lookahead(self):
        from repro.metrics import link_floor_profile
        from repro.net import FixedLatency, Network
        from repro.sim import Simulator

        net = Network(Simulator())
        net.set_link("dc0", "dc1", FixedLatency(0.002))
        profile = link_floor_profile(net)
        assert profile["cross_site_lookahead_s"] == pytest.approx(0.002)
