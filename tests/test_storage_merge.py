"""Unit tests for convergent conflict resolvers."""

from hypothesis import assume, given, strategies as st

from repro.storage import LWWResolver, MergingResolver, VersionVector, stamp_of


def vv(**entries):
    return VersionVector(entries)


class TestStampOf:
    def test_stamp_orders_causally_related_writes(self):
        earlier = stamp_of(vv(dc0=1))
        later = stamp_of(vv(dc0=2))
        assert earlier < later

    def test_stamp_totally_orders_concurrent_writes(self):
        a = stamp_of(vv(dc0=1))
        b = stamp_of(vv(dc1=1))
        assert a != b
        assert (a < b) != (b < a)


class TestLWWResolver:
    def test_picks_stamp_winner(self):
        resolver = LWWResolver()
        value, stamp = resolver.resolve("a", stamp_of(vv(dc0=1)), "b", stamp_of(vv(dc1=2)))
        # total 2 beats total 1
        assert value == "b"
        assert stamp == stamp_of(vv(dc1=2))

    def test_symmetric(self):
        resolver = LWWResolver()
        v1, _ = resolver.resolve("a", stamp_of(vv(dc0=1)), "b", stamp_of(vv(dc1=1)))
        v2, _ = resolver.resolve("b", stamp_of(vv(dc1=1)), "a", stamp_of(vv(dc0=1)))
        assert v1 == v2

    @given(
        st.dictionaries(st.sampled_from(["dc0", "dc1"]), st.integers(1, 9)),
        st.dictionaries(st.sampled_from(["dc0", "dc1"]), st.integers(1, 9)),
    )
    def test_symmetry_property(self, ea, eb):
        assume(VersionVector(ea) != VersionVector(eb))
        resolver = LWWResolver()
        sa, sb = stamp_of(VersionVector(ea)), stamp_of(VersionVector(eb))
        assert resolver.resolve("x", sa, "y", sb) == resolver.resolve("y", sb, "x", sa)


class TestMergingResolver:
    def test_merges_values(self):
        resolver = MergingResolver(lambda a, b: sorted(set(a) | set(b)))
        value, _ = resolver.resolve([1, 2], stamp_of(vv(dc0=1)), [2, 3], stamp_of(vv(dc1=1)))
        assert value == [1, 2, 3]

    def test_canonical_argument_order(self):
        # A deliberately non-commutative merge still converges because
        # the resolver feeds arguments in stamp order.
        resolver = MergingResolver(lambda a, b: f"{a}|{b}")
        sa, sb = stamp_of(vv(dc0=1)), stamp_of(vv(dc1=2))
        v1, _ = resolver.resolve("x", sa, "y", sb)
        v2, _ = resolver.resolve("y", sb, "x", sa)
        assert v1 == v2

    def test_surviving_stamp_is_max(self):
        resolver = MergingResolver(lambda a, b: a + b)
        sa, sb = stamp_of(vv(dc0=1)), stamp_of(vv(dc1=2))
        _, stamp = resolver.resolve([1], sa, [2], sb)
        assert stamp == max(sa, sb)
