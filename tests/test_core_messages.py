"""Unit tests for ChainReaction wire messages and dependency accounting."""

from repro.core.messages import (
    ChainPut,
    ChainStable,
    DepEntry,
    GlobalAck,
    PutReply,
    PutRequest,
    RemoteUpdate,
    deps_size_bytes,
)
from repro.net.message import WIRE_HEADER_BYTES
from repro.storage import VersionVector


def vv(**entries):
    return VersionVector(entries)


class TestDepEntry:
    def test_size_counts_version_and_index(self):
        entry = DepEntry(vv(dc0=1), 2)
        assert entry.size_bytes() == vv(dc0=1).size_bytes() + 4

    def test_entries_are_immutable_values(self):
        assert DepEntry(vv(dc0=1), 2) == DepEntry(vv(dc0=1), 2)
        assert DepEntry(vv(dc0=1), 2) != DepEntry(vv(dc0=1), 1)


class TestDepsSize:
    def test_empty_deps_cost_only_prefix(self):
        assert deps_size_bytes({}) == 4

    def test_grows_per_entry(self):
        one = deps_size_bytes({"k": DepEntry(vv(dc0=1), 0)})
        two = deps_size_bytes(
            {"k": DepEntry(vv(dc0=1), 0), "m": DepEntry(vv(dc0=2), 1)}
        )
        assert two > one > 4

    def test_multi_dc_versions_cost_more(self):
        narrow = deps_size_bytes({"k": DepEntry(vv(dc0=1), 0)})
        wide = deps_size_bytes({"k": DepEntry(vv(dc0=1, dc1=1, dc2=1), 0)})
        assert wide > narrow


class TestMessageSizes:
    def test_every_message_includes_header(self):
        for msg in (
            PutRequest(key="k", value="v"),
            PutReply(key="k", version=vv(dc0=1)),
            ChainPut(key="k", value="v", version=vv(dc0=1)),
            ChainStable(key="k", version=vv(dc0=1)),
            RemoteUpdate(key="k", value="v", version=vv(dc0=1)),
            GlobalAck(key="k", version=vv(dc0=1), site="dc0"),
        ):
            assert msg.size_bytes() > WIRE_HEADER_BYTES, type(msg).__name__

    def test_put_request_grows_with_deps(self):
        bare = PutRequest(key="k", value="v")
        laden = PutRequest(
            key="k",
            value="v",
            deps={f"dep{i}": DepEntry(vv(dc0=i + 1), 0) for i in range(5)},
        )
        assert laden.size_bytes() > bare.size_bytes() + 50

    def test_chain_put_grows_with_value(self):
        small = ChainPut(key="k", value="x", version=vv(dc0=1))
        big = ChainPut(key="k", value="x" * 1000, version=vv(dc0=1))
        assert big.size_bytes() - small.size_bytes() == 999

    def test_type_names_unique(self):
        types = [
            PutRequest,
            PutReply,
            ChainPut,
            ChainStable,
            RemoteUpdate,
            GlobalAck,
        ]
        names = [t.type_name for t in types]
        assert len(set(names)) == len(names)
