"""Tests for the clock stabilization plane (PR 8): HLC semantics, the
``StabilityPlane`` config/capability surface, determinism of the clock
plane under the single- and multi-process engines, causal parity with
the notices plane, the dep-table HLC column, and the CLI's unified
``--stability`` flag."""

import io
import pickle

import pytest

from repro.api import CAP_CLOCK_STABILITY
from repro.cli import main
from repro.core.config import ChainReactionConfig
from repro.core.deptable import DepEntry, DepTable
from repro.errors import ConfigError
from repro.sim.hlc import NO_HLC, HLCStamp, HybridClock, hlc_or_none, just_below


class _FakeSim:
    """Minimal ``SimClock`` protocol: just a ``now`` attribute."""

    def __init__(self, now: float = 0.0) -> None:
        self.now = now

GEO = dict(
    sites=("dc0", "dc1"),
    servers_per_site=3,
    chain_length=2,
    records=10,
    clients=2,
    duration=0.3,
    warmup=0.05,
)

CLOCK = {"stability": "clock"}


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestHLC:
    def test_total_order_physical_then_logical_then_origin(self):
        a = HLCStamp(10, 0, "dc0")
        b = HLCStamp(10, 1, "dc0")
        c = HLCStamp(11, 0, "dc0")
        d = HLCStamp(10, 0, "dc1")
        assert a < b < c
        assert a < d < b  # origin breaks exact ties only
        assert sorted([c, d, b, a]) == [a, d, b, c]

    def test_just_below_is_a_conservative_predecessor(self):
        stamp = HLCStamp(10, 1, "dc0")
        below = just_below(stamp)
        assert below < stamp
        # at or above every stamp with a smaller (physical, logical)
        assert below > HLCStamp(10, 0, "dc9")
        assert just_below(below) == below  # already empty-origin: fixpoint

    def test_stamp_monotone_and_observe_merges(self):
        clock = HybridClock(_FakeSim(), "dc0")
        first = clock.stamp()
        second = clock.stamp()
        assert first < second
        remote = HLCStamp(second.physical + 500, 3, "dc1")
        clock.observe(remote)
        assert clock.stamp() > remote

    def test_peek_does_not_advance(self):
        clock = HybridClock(_FakeSim(), "dc0")
        probe = clock.peek()
        assert clock.stamp() > probe
        assert clock.peek() >= probe

    def test_no_hlc_is_falsy_zero_bytes_and_pickles_to_itself(self):
        assert not NO_HLC
        assert NO_HLC.size_bytes() == 0
        assert pickle.loads(pickle.dumps(NO_HLC)) is NO_HLC
        assert hlc_or_none(NO_HLC) is None
        stamp = HLCStamp(7, 2, "dc1")
        assert hlc_or_none(stamp) is stamp
        assert pickle.loads(pickle.dumps(stamp)) == stamp


class TestConfigAndCapabilities:
    def test_clock_plane_is_a_capability(self):
        from repro.baselines.registry import build_store

        clock = build_store(
            "chainreaction", sites=("dc0",), servers_per_site=3,
            chain_length=2, overrides=dict(CLOCK),
        )
        notices = build_store(
            "chainreaction", sites=("dc0",), servers_per_site=3, chain_length=2,
        )
        assert CAP_CLOCK_STABILITY in clock.capabilities
        assert CAP_CLOCK_STABILITY not in notices.capabilities

    def test_stability_value_validated(self):
        with pytest.raises(ConfigError, match="stability"):
            ChainReactionConfig(sites=("dc0",), stability="vector")

    def test_clock_rejects_protocol_batching(self):
        with pytest.raises(ConfigError, match="protocol_batching"):
            ChainReactionConfig(
                sites=("dc0",), stability="clock", protocol_batching=True
            )

    def test_clock_rejects_metadata_gc(self):
        with pytest.raises(ConfigError, match="metadata_gc"):
            ChainReactionConfig(sites=("dc0",), stability="clock", metadata_gc=True)

    def test_interval_must_be_positive(self):
        with pytest.raises(ConfigError, match="stability_interval"):
            ChainReactionConfig(sites=("dc0",), stability_interval=0.0)


class TestDepTableHLCColumn:
    def test_round_trip_and_default_none(self):
        table = DepTable()
        table.set("a", _vv(1), 0)
        stamp = HLCStamp(42, 1, "dc0")
        table.set("b", _vv(2), 1, hlc=stamp)
        assert table["a"].hlc is None
        assert table["b"].hlc == stamp
        # updating an existing key replaces the stamp
        table.set("b", _vv(3), 2, hlc=None)
        assert table["b"].hlc is None

    def test_snapshot_carries_stamps(self):
        table = DepTable()
        stamp = HLCStamp(9, 0, "dc1")
        table.set("k", _vv(1), 0, hlc=stamp)
        snap = table.snapshot()
        assert snap["k"].hlc == stamp

    def test_stamped_entries_cost_wire_bytes(self):
        bare, stamped = DepTable(), DepTable()
        bare.set("k", _vv(1), 0)
        stamped.set("k", _vv(1), 0, hlc=HLCStamp(1, 1, "dc0"))
        assert stamped.size_bytes() == bare.size_bytes() + HLCStamp(1, 1, "dc0").size_bytes()

    def test_setitem_preserves_entry_stamp(self):
        table = DepTable()
        stamp = HLCStamp(5, 5, "dc0")
        table["k"] = DepEntry(_vv(1), 3, stamp)
        assert table["k"].hlc == stamp


class TestClockPlaneDeterminism:
    def test_twice_run_sanitize_is_clean(self):
        from repro.analysis import sanitize_run

        report = sanitize_run(
            "chainreaction", seed=42, overrides=dict(CLOCK), **GEO
        )
        assert report.clean
        assert report.trace_length > 0

    def test_sharded_workers_match_serial(self):
        from repro.analysis import sanitize_sharded

        report = sanitize_sharded(
            "chainreaction",
            seed=42,
            workers=2,
            overrides=dict(CLOCK),
            **GEO,
        )
        assert report.clean


class TestCausalParity:
    """The clock plane must never admit a causally-unstable read: the
    same checker that gates the notices plane gates it."""

    @pytest.mark.parametrize("overrides", [None, CLOCK])
    def test_geo_history_is_causal(self, overrides):
        from repro.baselines.registry import build_store
        from repro.checker.causal import check_causal
        from repro.workload.driver import WorkloadRunner
        from repro.workload.ycsb import WorkloadSpec

        store = build_store(
            "chainreaction",
            sites=("dc0", "dc1"),
            servers_per_site=3,
            chain_length=2,
            seed=99,
            overrides=dict(overrides) if overrides else None,
        )
        spec = WorkloadSpec(
            "parity", read_proportion=0.5, update_proportion=0.5,
            record_count=10, value_size=16,
        )
        runner = WorkloadRunner(
            store, spec, n_clients=4, duration=0.4, warmup=0.05,
            record_history=True,
        )
        result = runner.run()
        assert result.ops_completed > 0
        assert check_causal(result.history) == []


class TestStabilityFlagCLI:
    def test_run_accepts_clock(self):
        code, output = run_cli(
            "run", "--stability", "clock", "--duration", "0.2",
            "--clients", "2", "--records", "10", "--sites", "dc0", "dc1",
        )
        assert code == 0

    def test_clock_requires_chain_protocols(self):
        code, output = run_cli(
            "run", "--protocol", "eventual", "--stability", "clock",
            "--duration", "0.1",
        )
        assert code == 2
        assert "stability" in output

    def test_batch_is_a_deprecated_alias(self):
        import repro.cli as cli

        cli._batch_alias_warned = False
        code, output = run_cli(
            "run", "--batch", "--duration", "0.2", "--clients", "2",
            "--records", "10", "--sites", "dc0", "dc1",
        )
        assert code == 0
        assert "deprecated" in output
        assert "--stability notices+batch" in output

    def test_explicit_stability_wins_over_batch(self):
        import repro.cli as cli

        cli._batch_alias_warned = False
        code, output = run_cli(
            "run", "--batch", "--stability", "clock", "--duration", "0.2",
            "--clients", "2", "--records", "10", "--sites", "dc0", "dc1",
        )
        assert code == 0

    def test_sanitize_accepts_clock(self):
        code, output = run_cli(
            "sanitize", "--duration", "0.2", "--clients", "2",
            "--records", "10", "--stability", "clock",
        )
        assert code == 0
        assert "no divergence" in output


def _vv(counter: int):
    from repro.storage.version import VersionVector

    return VersionVector((("dc0", counter),))
