"""End-to-end tests for partial geo-replication (PR 10): remote
operations forward to owner DCs on both stability planes and stay
causal, non-owner sites hold no replicas, twice-run and sharded-engine
determinism hold at partial degrees, the sole-owner crash campaign
resolves every operation, the placement gauges surface in
``protocol_stats``, and the hot-shard workload distribution validates
and skews as declared."""

import pytest

from repro.baselines.registry import build_store
from repro.checker.causal import check_causal
from repro.checker.history import GET
from repro.errors import ConfigError
from repro.faults.campaign import campaign
from repro.faults.engine import run_campaign
from repro.sim.rng import RngRegistry
from repro.workload.distributions import HotShardKeys
from repro.workload.driver import WorkloadRunner
from repro.workload.ycsb import WorkloadSpec

SITES = ("dc0", "dc1", "dc2")
PARTIAL = {"replication_degree": 2, "num_shards": 8}
GEO = dict(
    sites=SITES,
    servers_per_site=3,
    chain_length=2,
    seed=99,
)

NOTICES = dict(PARTIAL)
CLOCK = dict(PARTIAL, stability="clock")


def _partial_store(overrides, **kwargs):
    params = dict(GEO)
    params.update(kwargs)
    return build_store("chainreaction", overrides=dict(overrides), **params)


def _run_workload(store, *, n_clients=6, duration=0.5, record_count=12):
    spec = WorkloadSpec(
        "partial", read_proportion=0.5, update_proportion=0.5,
        record_count=record_count, value_size=16,
    )
    runner = WorkloadRunner(
        store, spec, n_clients=n_clients, duration=duration, warmup=0.05,
        record_history=True,
    )
    return runner.run()


class TestForwardedOperations:
    @pytest.mark.parametrize("overrides", [NOTICES, CLOCK], ids=["notices", "clock"])
    def test_remote_ops_forward_and_history_stays_causal(self, overrides):
        store = _partial_store(overrides)
        result = _run_workload(store)
        assert result.ops_completed > 0
        forwarded_gets = sum(s.forwarded_gets for s in store._sessions)
        forwarded_puts = sum(s.forwarded_puts for s in store._sessions)
        # clients sit at all three sites and each site owns only part of
        # the keyspace, so both kinds of remote traffic must occur
        assert forwarded_gets > 0
        assert forwarded_puts > 0
        # E10-style audit: the recorded history — forwarded reads
        # included — admits a causal+ explanation
        assert check_causal(result.history) == []
        reads = [op for op in result.history if op.op == GET]
        assert reads, "audit needs reads to constrain"

    @pytest.mark.parametrize("overrides", [NOTICES, CLOCK], ids=["notices", "clock"])
    def test_owner_replicas_converge_after_quiesce(self, overrides):
        store = _partial_store(overrides)
        spec = WorkloadSpec(
            "partial", read_proportion=0.5, update_proportion=0.5,
            record_count=12, value_size=16,
        )
        _run_workload(store)
        store.run(until=store.sim.now + 1.0)
        catalog = store.config.placement()
        multi_owner = [
            spec.key(i)
            for i in range(spec.record_count)
            if len(catalog.owners_for(spec.key(i))) > 1
        ]
        assert multi_owner, "r=2 must give some shard two owners"
        for key in multi_owner:
            assert store.converged(key), f"{key} diverged across owner DCs"

    def test_forward_latency_is_sampled(self):
        store = _partial_store(NOTICES)
        _run_workload(store)
        samples = [t for s in store._sessions for t in s.forward_latency_samples]
        assert samples
        # forwards pay a WAN round-trip; local ops stay sub-millisecond
        assert min(samples) > 0.001


class TestMemoryCensus:
    def test_preload_skips_non_owner_sites(self):
        store = _partial_store(NOTICES)
        catalog = store.config.placement()
        data = {f"user{i:08d}": b"x" * 8 for i in range(24)}
        store.preload(data)
        for key in data:
            owners = set(catalog.owners_for(key))
            for site in SITES:
                held = any(
                    node.store.get_record(key) is not None
                    for node in store.servers(site)
                )
                assert held == (site in owners), (key, site)


class TestDeterminism:
    @pytest.mark.parametrize("overrides", [NOTICES, CLOCK], ids=["notices", "clock"])
    def test_twice_run_sanitize_is_clean(self, overrides):
        from repro.analysis import sanitize_run

        report = sanitize_run(
            "chainreaction", seed=42, sites=SITES, servers_per_site=3,
            chain_length=2, records=10, clients=3, duration=0.3,
            warmup=0.05, overrides=dict(overrides),
        )
        assert report.clean
        assert report.trace_length > 0

    @pytest.mark.parametrize("overrides", [NOTICES, CLOCK], ids=["notices", "clock"])
    def test_sharded_workers_match_serial(self, overrides):
        from repro.analysis import sanitize_sharded

        report = sanitize_sharded(
            "chainreaction", seed=42, workers=2, sites=SITES,
            servers_per_site=3, chain_length=2, records=10, clients=3,
            duration=0.3, warmup=0.05, overrides=dict(overrides),
        )
        assert report.clean


class TestSoleOwnerCrashCampaign:
    def test_campaign_is_clean_with_zero_unresolved(self):
        result = run_campaign(campaign("partial-owner-crash"), seed=7)
        assert result.clean
        assert result.outcomes.unresolved == 0
        assert result.outcomes.ok > 0
        # the crash forces failover on forwarded traffic: the taxonomy
        # must show retries and/or degraded reads, not silent loss
        assert result.outcomes.retries + result.outcomes.degraded > 0


class TestPlacementGauges:
    def test_protocol_stats_expose_partial_census(self):
        store = _partial_store(NOTICES)
        _run_workload(store, duration=0.3)
        stats = store.protocol_stats()
        placement = stats["placement"]
        assert placement["partial"] is True
        assert placement["replication_degree"] == 2
        assert placement["num_shards"] == 8
        per_site = placement["sites"]
        assert set(per_site) == set(SITES)
        for gauges in per_site.values():
            assert 0 < gauges["owned_shards"] < 8
            assert gauges["records_held"] >= 0
        assert any(g["forwarded_gets_served"] > 0 for g in per_site.values())
        meta = stats["metadata"]
        assert meta["forwarded_gets"] > 0
        assert meta["forwarded_puts"] > 0

    def test_full_replication_reports_degenerate_summary(self):
        store = build_store("chainreaction", **GEO)
        stats = store.protocol_stats()
        assert stats["placement"] == {
            "partial": False,
            "replication_degree": 3,
            "num_shards": 16,
        }
        assert stats["metadata"]["forwarded_gets"] == 0


class TestHotShardWorkload:
    def test_spec_requires_hot_indexes(self):
        with pytest.raises(ConfigError, match="hot_indexes"):
            WorkloadSpec(
                "hs", read_proportion=1.0, update_proportion=0.0,
                record_count=10, distribution="hotshard",
            )

    def test_spec_validates_hot_fraction(self):
        with pytest.raises(ConfigError, match="hot_fraction"):
            WorkloadSpec(
                "hs", read_proportion=1.0, update_proportion=0.0,
                record_count=10, distribution="hotshard",
                hot_indexes=(1, 2), hot_fraction=1.5,
            )

    def test_make_chooser_returns_hot_shard_keys(self):
        spec = WorkloadSpec(
            "hs", read_proportion=1.0, update_proportion=0.0,
            record_count=10, distribution="hotshard",
            hot_indexes=(3, 7), hot_fraction=0.9,
        )
        chooser = spec.make_chooser(spec.record_count)
        assert isinstance(chooser, HotShardKeys)
        assert chooser.hot_indexes == (3, 7)

    def test_chooser_skews_towards_hot_set(self):
        chooser = HotShardKeys(100, hot_indexes=(1, 2, 3), hot_fraction=0.8)
        rng = RngRegistry(1234).stream("hotshard-test")
        draws = [chooser.choose(rng) for _ in range(4000)]
        assert all(0 <= d < 100 for d in draws)
        hot = sum(d in (1, 2, 3) for d in draws)
        # 80% directed + ~3% of the uniform tail landing there
        assert 0.75 < hot / len(draws) < 0.9

    def test_chooser_validates_inputs(self):
        with pytest.raises(ValueError, match="non-empty"):
            HotShardKeys(10, hot_indexes=())
        with pytest.raises(ValueError, match="outside"):
            HotShardKeys(10, hot_indexes=(10,))
        with pytest.raises(ValueError, match="hot_fraction"):
            HotShardKeys(10, hot_indexes=(1,), hot_fraction=0.0)
